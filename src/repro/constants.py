"""Paper constants shared across layers.

This module sits below everything else in the package — it imports
nothing — so that low layers (``repro.obs``) and high layers
(``repro.experiments``) can agree on the paper's magic numbers without
the low layer growing a dependency on the experiment stack.
"""

from __future__ import annotations

#: The paper's short/long boundary: "functions shorter than 400 ms"
#: (Table I bins 1-5 vs 6-8).  In integer microseconds, keyed on CPU
#: demand — the property SFS's FILTER actually discriminates on.
SHORT_CPU_BOUND_US = 400_000

#: Process context-switch cost modelled by the discrete engine
#: (Li et al., "Quantifying the cost of context switch", ExpCS 2007:
#: ~3.8 us direct cost; we use 0.5 ms to include indirect cache/TLB
#: pollution at the paper's working-set sizes).
CTX_SWITCH_COST_US = 500
