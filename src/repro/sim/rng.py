"""Seeded randomness.

Every stochastic component takes an explicit ``numpy.random.Generator``
(or a seed), never the global NumPy state, so that experiments are
reproducible and components can be reseeded independently (the classic
"independent streams" discipline from parallel Monte-Carlo codes).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a Generator; pass through if one is given already."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child streams."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def exponential_us(rng: np.random.Generator, mean_us: float, size: Optional[int] = None):
    """Exponential inter-arrival times in integer microseconds (>= 1)."""
    draw = rng.exponential(mean_us, size=size)
    out = np.maximum(np.rint(draw), 1).astype(np.int64)
    return out if size is not None else int(out)


def uniform_us(rng: np.random.Generator, low_us: float, high_us: float, size: Optional[int] = None):
    """Uniform durations in integer microseconds (>= 1)."""
    draw = rng.uniform(low_us, high_us, size=size)
    out = np.maximum(np.rint(draw), 1).astype(np.int64)
    return out if size is not None else int(out)


def lognormal_us(
    rng: np.random.Generator, median_us: float, sigma: float, size: Optional[int] = None
):
    """Log-normal durations parameterised by *median* (us) and shape sigma."""
    mu = np.log(median_us)
    draw = rng.lognormal(mu, sigma, size=size)
    out = np.maximum(np.rint(draw), 1).astype(np.int64)
    return out if size is not None else int(out)


def categorical(rng: np.random.Generator, probs: Sequence[float], size: Optional[int] = None):
    """Sample category indices from ``probs`` (normalised defensively)."""
    p = np.asarray(probs, dtype=float)
    if (p < 0).any():
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if total <= 0:
        raise ValueError("probabilities must sum to a positive value")
    p = p / total
    return rng.choice(len(p), size=size, p=p)
