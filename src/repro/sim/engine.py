"""Cancellable event-heap simulator.

The simulator is a classic discrete-event loop: a binary heap of
``(time, seq, handle)`` entries.  ``seq`` is a monotonically increasing
tie-breaker so that events scheduled earlier fire earlier at equal
timestamps, which makes every run fully deterministic.

Cancellation is *lazy*: :meth:`EventHandle.cancel` marks the handle and
the main loop discards dead entries when they surface, which keeps both
``schedule`` and ``cancel`` O(log n) / O(1).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.invariants.checker import NULL_CHECKER
from repro.obs.profiler import perf_counter
from repro.obs.registry import NULL_REGISTRY
from repro.trace.recorder import NULL_RECORDER
from repro.why.audit import NULL_AUDIT


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled callback; hold on to it if you may need to cancel.

    ``daemon`` marks housekeeping timers (gauge samplers, health
    pollers) that observe the run rather than drive it: they execute
    normally but are excluded from :attr:`Simulator.pending_work`, so
    two self-rearming daemons cannot keep each other — and the run —
    alive forever.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "daemon")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any],
                 args: tuple, daemon: bool = False):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True
        # Drop references eagerly: a long-lived heap entry must not pin
        # tasks/closures for the rest of the run.
        self.callback = _noop
        self.args = ()

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


def _describe(handle: EventHandle) -> str:
    """One-line event description for runaway-guard diagnostics."""
    cb = handle.callback
    name = getattr(cb, "__qualname__", None) or repr(cb)
    args = ", ".join(_short(a) for a in handle.args)
    return f"t={handle.time} {name}({args})"


def _short(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 40 else text[:37] + "..."


class Simulator:
    """Virtual-time discrete-event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1000, fn, arg1)      # fire fn(arg1) in 1 ms
        sim.run()                          # run until the heap drains

    Time never flows backwards; callbacks run at exactly their scheduled
    virtual time and may schedule further events (including at ``now``).

    ``trace`` is the structured-event recorder every instrumented layer
    (machines, schedulers, SFS) caches at construction time; it defaults
    to the shared no-op :data:`repro.trace.recorder.NULL_RECORDER`, so
    install a real :class:`repro.trace.TraceRecorder` *before* building
    the machine when a run should be traced.

    ``invariants`` follows the same contract for the runtime invariant
    checker (:mod:`repro.invariants`): it defaults to the shared no-op
    :data:`repro.invariants.checker.NULL_CHECKER` and must be installed
    before the machine is built, because every instrumented layer caches
    it (and its ``enabled`` flag) at construction time.

    ``metrics`` follows the same contract again for the metric registry
    (:mod:`repro.obs`): default is the shared no-op
    :data:`repro.obs.registry.NULL_REGISTRY`; install a real
    :class:`repro.obs.MetricsRegistry` before building the machine.
    Metric hooks are read-only with respect to virtual time, so an
    enabled run is bit-identical to a disabled one.

    ``audit`` follows the same contract for the scheduler-decision
    audit stream (:mod:`repro.why.audit`): default is the shared no-op
    :data:`repro.why.audit.NULL_AUDIT`; install a real
    :class:`repro.why.AuditLog` before building the machine.

    ``label`` names the run in diagnostics (e.g. the scheduler/engine
    pair); it is only ever read when an error message is built.
    """

    def __init__(self, trace: Optional[Any] = None,
                 invariants: Optional[Any] = None,
                 metrics: Optional[Any] = None,
                 label: str = "",
                 audit: Optional[Any] = None) -> None:
        self.now: int = 0
        self.label = label
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._seq: int = 0
        self._running = False
        self.events_executed: int = 0
        self.trace = trace if trace is not None else NULL_RECORDER
        self.invariants = invariants if invariants is not None else NULL_CHECKER
        self._inv_on = self.invariants.enabled
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.audit = audit if audit is not None else NULL_AUDIT
        # host self-profiler (wall clock around dispatch); None when off
        self._prof = self.metrics.profiler

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any,
                    daemon: bool = False) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        ``daemon=True`` marks a housekeeping timer excluded from
        :attr:`pending_work` (see :class:`EventHandle`)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        self._seq += 1
        handle = EventHandle(int(time), self._seq, callback, args, daemon)
        heapq.heappush(self._heap, (handle.time, handle.seq, handle))
        return handle

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any,
                 daemon: bool = False) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + int(delay), callback, *args,
                                daemon=daemon)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Virtual time of the next live event, or None if drained."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Execute the next live event.  Returns False when drained."""
        self._drop_dead()
        if not self._heap:
            return False
        time, _seq, handle = heapq.heappop(self._heap)
        if self._inv_on:
            self.invariants.on_event(time, self.now)
        self.now = time
        callback, args = handle.callback, handle.args
        handle.cancel()  # consumed; release references
        self.events_executed += 1
        if self._prof is None:
            callback(*args)
        else:
            t0 = perf_counter()
            callback(*args)
            self._prof.add("sim.dispatch", perf_counter() - t0)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or the event
        budget ``max_events`` is spent.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fired earlier.

        ``max_events`` is a runaway guard, not a pause button: if the
        budget is exhausted while live events are still pending, the run
        did *not* complete and a :class:`SimulationError` is raised so
        truncated results can never be mistaken for finished ones.  The
        error names the virtual clock, the run label and the last few
        executed events, so a fuzz-found livelock is diagnosable from
        the exception alone.  The event descriptions are only recorded
        when a budget is armed — a guard-free run stays on the exact
        nominal path.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        recent: Optional[deque] = (
            deque(maxlen=5) if max_events is not None else None
        )
        t0 = perf_counter() if self._prof is not None else 0.0
        try:
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                if max_events is not None and executed >= max_events:
                    tail = "; ".join(recent) if recent else "(none)"
                    label = f" [{self.label}]" if self.label else ""
                    raise SimulationError(
                        f"event budget exhausted: {max_events} events executed "
                        f"with {self.pending} still pending at t={self.now}"
                        f"{label}; last events: {tail}"
                    )
                if recent is not None:
                    recent.append(_describe(self._heap[0][2]))
                self.step()
                executed += 1
        finally:
            self._running = False
            if self._prof is not None:
                self._prof.note_run(perf_counter() - t0, executed)
        if until is not None and self.now < until:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    @property
    def pending_work(self) -> int:
        """Live events that *drive* the run — daemon housekeeping
        timers excluded.  Self-rearming daemons must gate on this, not
        on :attr:`pending`, or any two of them would keep each other
        alive after the real work has drained."""
        return sum(
            1 for _, _, h in self._heap if not h.cancelled and not h.daemon
        )

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
