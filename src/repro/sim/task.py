"""Task model: an OS process executing a serverless function.

A task is a sequence of alternating **bursts**.  A CPU burst consumes
processor time under whatever scheduling class the task currently has;
an I/O burst blocks the task for a fixed virtual duration regardless of
scheduling (the device, not the CPU, is the bottleneck).

The machine models (:mod:`repro.machine`) own the task state transitions;
the task itself is a passive record with accounting that every engine
fills in identically, so metrics code never needs to know which engine
produced a run.
"""

from __future__ import annotations

import enum
import itertools
import numbers
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class BurstKind(enum.Enum):
    """What a burst consumes: processor time or device time."""

    CPU = "cpu"
    IO = "io"


@dataclass(frozen=True)
class Burst:
    """One burst of work; ``duration`` is integer microseconds."""

    kind: BurstKind
    duration: int

    def __post_init__(self) -> None:
        if not isinstance(self.kind, BurstKind):
            raise ValueError(f"burst kind must be a BurstKind, got {self.kind!r}")
        # Reject float durations (incl. NaN, which passes every comparison
        # guard) before they corrupt the integer event arithmetic.  Any
        # integral type is fine (numpy ints included); bool is not.
        if isinstance(self.duration, bool) or not isinstance(
            self.duration, numbers.Integral
        ):
            raise ValueError(
                f"burst duration must be an integer number of us, "
                f"got {self.duration!r}"
            )
        if self.duration <= 0:
            raise ValueError(f"burst duration must be positive, got {self.duration}")


class TaskState(enum.Enum):
    """Kernel-visible process state (what ``gopsutil`` polling sees)."""

    CREATED = "created"    # not yet dispatched to the OS
    READY = "ready"        # runnable, waiting in a runqueue
    RUNNING = "running"    # on a core
    BLOCKED = "blocked"    # sleeping on I/O
    FINISHED = "finished"  # exited


class SchedPolicy(enum.IntEnum):
    """Linux scheduling classes used by the paper.

    Real-time classes (FIFO, RR) have strictly higher static priority
    than the fair class (CFS / ``SCHED_NORMAL``); see ``sched(7)``.
    """

    CFS = 0    # SCHED_NORMAL
    RR = 1     # SCHED_RR
    FIFO = 2   # SCHED_FIFO


#: Classes that preempt CFS unconditionally.
RT_POLICIES = (SchedPolicy.FIFO, SchedPolicy.RR)

_task_ids = itertools.count()


@dataclass
class Task:
    """A schedulable process.

    Durations and timestamps are integer microseconds.  ``bursts`` is the
    ground-truth demand; engines must never mutate it — per-burst progress
    lives in ``burst_index`` / ``burst_remaining``.
    """

    bursts: Sequence[Burst]
    name: str = ""
    app: str = ""  # the function application this invocation belongs to
    policy: SchedPolicy = SchedPolicy.CFS
    rt_priority: int = 0
    weight: int = 1024  # nice-0 CFS weight

    tid: int = field(default_factory=lambda: next(_task_ids))

    # --- dynamic state (owned by the machine) -------------------------
    state: TaskState = TaskState.CREATED
    burst_index: int = 0
    burst_remaining: int = 0
    vruntime: int = 0

    # --- accounting ----------------------------------------------------
    dispatch_time: Optional[int] = None      # spawned into the OS
    first_run_time: Optional[int] = None     # first time on a core
    finish_time: Optional[int] = None
    cpu_time: int = 0                        # CPU service received
    io_time: int = 0                         # device time received
    wait_time: int = 0                       # runnable-but-not-running
    ctx_involuntary: int = 0                 # preemptions / slice expiry
    ctx_voluntary: int = 0                   # blocks / yields
    migrations: int = 0
    policy_changes: List[Tuple[int, SchedPolicy]] = field(default_factory=list)

    # --- SFS accounting (written by repro.core, read by metrics) -------
    sfs_bypassed: bool = False               # overload detector left it in CFS
    sfs_demoted: bool = False                # FILTER slice budget exhausted
    sfs_slice_granted: Optional[int] = None  # S at first FILTER promotion
    sfs_slice_left: Optional[int] = None     # remaining FILTER slice budget

    # --- fault accounting (written by repro.faults, read by metrics) ---
    killed: bool = False                     # terminated by machine.kill
    kill_reason: Optional[str] = None        # "crash" | "timeout" | "host"

    def __post_init__(self) -> None:
        if not self.bursts:
            raise ValueError("a task needs at least one burst")
        self.bursts = tuple(self.bursts)
        self.burst_remaining = self.bursts[0].duration
        # sched(7): RT priorities live in [1, 99]
        if self.policy in RT_POLICIES and self.rt_priority <= 0:
            self.rt_priority = 1

    # ------------------------------------------------------------------
    # demand (static) properties
    # ------------------------------------------------------------------
    @property
    def cpu_demand(self) -> int:
        """Total CPU time the task needs (the IDEAL aggregate CPU time)."""
        return sum(b.duration for b in self.bursts if b.kind is BurstKind.CPU)

    @property
    def io_demand(self) -> int:
        """Total device time the task needs."""
        return sum(b.duration for b in self.bursts if b.kind is BurstKind.IO)

    @property
    def ideal_duration(self) -> int:
        """Turnaround on an idle machine: all bursts back to back."""
        return self.cpu_demand + self.io_demand

    @property
    def total_remaining(self) -> int:
        """Remaining work (CPU + I/O) across current and future bursts."""
        rem = self.burst_remaining if self.burst_index < len(self.bursts) else 0
        rem += sum(b.duration for b in self.bursts[self.burst_index + 1 :])
        return rem

    @property
    def cpu_remaining(self) -> int:
        """Remaining CPU demand (the SRTF oracle's sort key)."""
        rem = 0
        if self.burst_index < len(self.bursts):
            cur = self.bursts[self.burst_index]
            if cur.kind is BurstKind.CPU:
                rem += self.burst_remaining
        rem += sum(
            b.duration
            for b in self.bursts[self.burst_index + 1 :]
            if b.kind is BurstKind.CPU
        )
        return rem

    @property
    def current_burst(self) -> Optional[Burst]:
        if self.burst_index >= len(self.bursts):
            return None
        return self.bursts[self.burst_index]

    @property
    def is_rt(self) -> bool:
        return self.policy in RT_POLICIES

    @property
    def finished(self) -> bool:
        return self.state is TaskState.FINISHED

    @property
    def turnaround(self) -> Optional[int]:
        """Dispatch-to-finish time (the paper's *execution duration*)."""
        if self.finish_time is None or self.dispatch_time is None:
            return None
        return self.finish_time - self.dispatch_time

    @property
    def context_switches(self) -> int:
        return self.ctx_involuntary + self.ctx_voluntary

    # ------------------------------------------------------------------
    # mutation helpers used by engines (kept here so every engine
    # accounts identically)
    # ------------------------------------------------------------------
    def consume_cpu(self, amount: int) -> None:
        """Charge ``amount`` us of CPU service to the current CPU burst."""
        if amount < 0:
            raise ValueError(f"negative CPU amount {amount}")
        burst = self.current_burst
        if burst is None or burst.kind is not BurstKind.CPU:
            raise RuntimeError(f"task {self.tid} is not in a CPU burst")
        if amount > self.burst_remaining:
            raise RuntimeError(
                f"task {self.tid} overran burst: {amount} > {self.burst_remaining}"
            )
        self.burst_remaining -= amount
        self.cpu_time += amount
        self.vruntime += amount * 1024 // self.weight

    def complete_io(self) -> Optional[Burst]:
        """Finish the current I/O burst (device time fully served) and
        advance; returns the next burst (None when the task is done)."""
        burst = self.current_burst
        if burst is None or burst.kind is not BurstKind.IO:
            raise RuntimeError(f"task {self.tid} is not in an I/O burst")
        self.io_time += burst.duration
        self.burst_remaining = 0
        return self.advance_burst()

    def advance_burst(self) -> Optional[Burst]:
        """Move to the next burst; returns it (None when the task is done)."""
        if self.burst_remaining != 0:
            raise RuntimeError(
                f"task {self.tid} advancing with {self.burst_remaining}us left"
            )
        self.burst_index += 1
        nxt = self.current_burst
        self.burst_remaining = nxt.duration if nxt is not None else 0
        return nxt

    def record_policy_change(self, now: int, policy: SchedPolicy) -> None:
        self.policy = policy
        self.policy_changes.append((now, policy))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task {self.tid} {self.name!r} {self.state.value} "
            f"{self.policy.name} burst={self.burst_index}/{len(self.bursts)}>"
        )


def cpu_task(duration: int, name: str = "", **kw) -> Task:
    """Convenience constructor for a single-CPU-burst task."""
    return Task(bursts=[Burst(BurstKind.CPU, duration)], name=name, **kw)


def io_cpu_task(io: int, cpu: int, name: str = "", **kw) -> Task:
    """Task with a leading I/O burst then a CPU burst (Fig 11 shape)."""
    return Task(bursts=[Burst(BurstKind.IO, io), Burst(BurstKind.CPU, cpu)], name=name, **kw)
