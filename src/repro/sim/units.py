"""Time units.

All simulator timestamps and durations are **integer microseconds**.
These helpers convert to and from the units the paper reports in
(milliseconds and seconds) and keep rounding policy in one place.
"""

from __future__ import annotations

#: One microsecond (the base unit).
US: int = 1
#: Microseconds per millisecond.
MS: int = 1_000
#: Microseconds per second.
SEC: int = 1_000_000


def from_ms(ms: float) -> int:
    """Convert milliseconds to integer microseconds (round to nearest)."""
    return int(round(ms * MS))


def from_sec(sec: float) -> int:
    """Convert seconds to integer microseconds (round to nearest)."""
    return int(round(sec * SEC))


def to_ms(us: float) -> float:
    """Convert microseconds to (float) milliseconds."""
    return us / MS


def to_sec(us: float) -> float:
    """Convert microseconds to (float) seconds."""
    return us / SEC
