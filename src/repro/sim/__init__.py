"""Discrete-event simulation kernel.

Everything in :mod:`repro` runs on virtual time measured in **integer
microseconds** so that event ordering is exact (no floating-point ties)
and runs are bit-reproducible.

The kernel is deliberately small:

* :class:`repro.sim.engine.Simulator` — a cancellable event heap with a
  monotonic virtual clock.
* :class:`repro.sim.task.Task` — the unit of scheduling: a process with
  an alternating list of CPU and I/O bursts plus accounting state.
* :mod:`repro.sim.rng` — seeded :class:`numpy.random.Generator` helpers.
* :mod:`repro.sim.units` — millisecond/second/microsecond conversions.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.task import Burst, BurstKind, SchedPolicy, Task, TaskState
from repro.sim.units import MS, SEC, US, from_ms, from_sec, to_ms, to_sec

__all__ = [
    "Simulator",
    "EventHandle",
    "Task",
    "TaskState",
    "SchedPolicy",
    "Burst",
    "BurstKind",
    "US",
    "MS",
    "SEC",
    "from_ms",
    "from_sec",
    "to_ms",
    "to_sec",
]
