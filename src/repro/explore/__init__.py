"""repro.explore: the unified interactive run explorer.

Fuses a run's trace, metrics, fault windows, and manifest provenance
into one compact :class:`RunBundle` document, then renders one or two
of them (A/B diff) into a single self-contained offline HTML page —
inline CSS/JS, no server, no external references, byte-identical for
identical seeds.
"""

from repro.explore.bundle import SCHEMA, RunBundle, build_data
from repro.explore.page import render_diff, render_explorer, write_explorer

__all__ = [
    "SCHEMA",
    "RunBundle",
    "build_data",
    "render_diff",
    "render_explorer",
    "write_explorer",
]
