"""Run bundles: everything the explorer needs from one run, compacted.

A :class:`RunBundle` fuses the four observability artifacts a run can
produce — the structured trace (:mod:`repro.trace`), the metrics
registry (:mod:`repro.obs`), the :class:`~repro.trace.manifest.RunManifest`
provenance, and the per-request records — into one *compact document*
(schema ``repro.explore/1``) sized for embedding in a self-contained
HTML page:

* per-core / per-FILTER-worker / packed-pool **timeline lanes** built
  from the ``task.run`` / ``task.deschedule`` span pairing, coloured by
  function app, with deterministic coalescing under a segment budget;
* **gauge time series** (queue depths, pool occupancy, watch list)
  decimated to a bounded point count;
* time-binned **latency percentile curves** (p50/p90/p99 of turnaround
  by finish time) using the repo-wide percentile definition;
* **fault windows** (host fail/recover, stragglers) and fault instants;
* a provenance block with the wall-clock manifest fields stripped, so
  the same seed and config produce a byte-identical document.

Bundles round-trip through JSON (``save`` / ``load``) so a sweep can
capture one per point and ``repro explore A/ B/`` can diff them later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.metrics.stats import PERCENTILE_METHOD
from repro.trace import events as tev

SCHEMA = "repro.explore/1"

#: compaction budgets — the knobs that keep the embedded document small
MAX_SEGMENTS = 40_000       # timeline segments across all lanes
MAX_SERIES_POINTS = 512     # points per gauge series
MAX_FAULT_MARKS = 2_000     # fault/retry/shed instant markers
MAX_SLOWEST = 40            # rows in the slowest-requests table
MAX_APPS = 7                # distinct app colours; the rest fold to "other"
PCT_BINS = 80               # time bins for the percentile curves

#: manifest fields that are wall-clock provenance, not run physics —
#: stripped from the embedded document so same seed => same bytes
_NONDETERMINISTIC_MANIFEST_FIELDS = (
    "created_at", "wall_time_s", "python", "platform",
)

#: fault-track kinds rendered as instant markers on the timeline
_FAULT_MARK_KINDS = (
    tev.FAULT_CRASH, tev.FAULT_COLDSTART, tev.FAULT_TIMEOUT,
    tev.FAULT_HOST_DOWN, tev.FAULT_HOST_UP, tev.RETRY_BACKOFF,
    tev.RETRY_EXHAUSTED, tev.RETRY_THROTTLED, tev.SHED_REQUEST,
    tev.HEALTH_DOWN, tev.HEALTH_UP, tev.FAILOVER_REDISPATCH,
    tev.HEDGE_LAUNCH, tev.HEDGE_WIN, tev.HEDGE_CANCEL,
)

#: (gauge kind, display label) in preference order for the queue chart
_QUEUE_SERIES = (
    (tev.GAUGE_GLOBAL_QUEUE, "SFS global queue"),
    (tev.GAUGE_RUNNABLE, "runnable"),
    (tev.GAUGE_RUNQUEUE, "runqueue (total)"),
    (tev.GAUGE_POOL, "CFS pool"),
    (tev.GAUGE_RT_QUEUE, "RT queue"),
    (tev.GAUGE_BUSY_WORKERS, "busy workers"),
    (tev.GAUGE_WATCH_LIST, "watch list"),
    (tev.GAUGE_OUTSTANDING, "outstanding"),
)
_MAX_QUEUE_SERIES = 4


def _decimate(series: List[Tuple[int, float]],
              budget: int = MAX_SERIES_POINTS) -> List[Tuple[int, float]]:
    """Uniform-stride decimation that always keeps the last point."""
    n = len(series)
    if n <= budget:
        return series
    stride = -(-n // budget)  # ceil
    kept = series[::stride]
    if kept[-1] != series[-1]:
        kept.append(series[-1])
    return kept


def _num(v: float) -> Union[int, float]:
    """JSON-stable scalar: ints stay ints, floats round to 3 decimals."""
    f = float(v)
    if f.is_integer():
        return int(f)
    return round(f, 3)


class _LanePacker:
    """Greedy first-fit packing of possibly-overlapping spans into a
    bounded number of display lanes (used for the fluid CFS pool, where
    processor sharing has no real core assignment).  Deterministic:
    spans are packed in (start, end, tid) order."""

    def __init__(self, max_lanes: int):
        self.max_lanes = max_lanes
        self.lane_end: List[int] = []
        self.lanes: List[List[Tuple[int, int, int]]] = []
        self.overflow = 0

    def pack(self, spans: Sequence[Tuple[int, int, int]]) -> None:
        for start, end, tid in sorted(spans):
            placed = False
            for i, busy_until in enumerate(self.lane_end):
                if busy_until <= start:
                    self.lane_end[i] = end
                    self.lanes[i].append((start, end, tid))
                    placed = True
                    break
            if not placed:
                if len(self.lane_end) < self.max_lanes:
                    self.lane_end.append(end)
                    self.lanes.append([(start, end, tid)])
                else:
                    self.overflow += 1


def _coalesce(segs: List[List[int]], threshold: int) -> List[List[int]]:
    """Merge runs of consecutive short segments into aggregate blocks.

    A segment is ``[start, dur, tid, app, reason]``; an aggregate block
    is ``[start, dur, -1, -1, -1, count]``.  Only segments shorter than
    ``threshold`` separated by gaps shorter than ``threshold`` merge, so
    long slices stay individually hoverable at any zoom.
    """
    out: List[List[int]] = []
    for seg in segs:
        if out and seg[1] < threshold:
            prev = out[-1]
            gap_ok = seg[0] - (prev[0] + prev[1]) < threshold
            prev_mergeable = len(prev) == 6 or prev[1] < threshold
            if gap_ok and prev_mergeable:
                new_dur = seg[0] + seg[1] - prev[0]
                if len(prev) == 6:
                    prev[1] = new_dur
                    prev[5] += 1
                else:
                    out[-1] = [prev[0], new_dur, -1, -1, -1, 2]
                continue
        out.append(seg)
    return out


def _apply_segment_budget(lanes: List[Dict[str, object]], sim_time: int,
                          budget: int = MAX_SEGMENTS) -> int:
    """Coalesce dense lanes until the total segment count fits the
    budget.  The threshold doubles each round, so termination is
    guaranteed and two identical runs coalesce identically.  Returns
    the number of merge rounds applied (0 = untouched)."""
    rounds = 0
    threshold = max(1, sim_time // 4000)
    while sum(len(l["segs"]) for l in lanes) > budget and rounds < 20:
        for lane in lanes:
            lane["segs"] = _coalesce(lane["segs"], threshold)  # type: ignore[arg-type]
        threshold *= 2
        rounds += 1
    return rounds


def build_data(result, trace, metrics=None,
               title: Optional[str] = None, audit=None,
               why_top: int = 10) -> Dict[str, object]:
    """Compact one run into the ``repro.explore/1`` document.

    ``result`` is a :class:`repro.metrics.collector.RunResult`,
    ``trace`` a :class:`repro.trace.TraceRecorder` captured from the
    same run, ``metrics`` an optional
    :class:`repro.obs.MetricsRegistry` whose counter snapshot rides
    along for the accounting panel, ``audit`` an optional
    :class:`repro.why.AuditLog` that tags the embedded ``why`` section's
    wait segments with their decision-makers.  The ``why`` section
    (schema ``repro.why/1``) is *optional* in stored bundles — older
    bundles load fine without it — and byte-deterministic: it is keyed
    by ``req_id`` only, never raw tids.
    """
    import numpy as np

    records = result.records
    sim_time = max(1, int(result.sim_time))
    label = f"{result.scheduler}/{result.engine}"

    # --- app colour classes (top apps by request count, rest "other") -
    app_counts: Dict[str, int] = {}
    for r in records:
        app_counts[r.app or "?"] = app_counts.get(r.app or "?", 0) + 1
    ranked = sorted(app_counts, key=lambda a: (-app_counts[a], a))
    apps = ranked[:MAX_APPS]
    app_idx = {a: i for i, a in enumerate(apps)}
    other_idx = len(apps)
    app_names = apps + (["other"] if len(ranked) > len(apps) else [])

    app_of_req: Dict[int, int] = {
        r.req_id: app_idx.get(r.app or "?", other_idx) for r in records
    }

    # --- walk the event stream once: lanes, names, gauges, fault marks
    reasons: List[str] = []
    reason_idx: Dict[str, int] = {}

    def rid(reason: str) -> int:
        i = reason_idx.get(reason)
        if i is None:
            i = reason_idx[reason] = len(reasons)
            reasons.append(reason)
        return i

    # raw tids come from a process-global counter, so two identical
    # runs in one process disagree on them; remap to dense ids in
    # stream-first-appearance order (deterministic) before embedding
    tid_map: Dict[int, int] = {}

    def tid_of(raw: int) -> int:
        if raw < 0:
            return raw
        mapped = tid_map.get(raw)
        if mapped is None:
            mapped = tid_map[raw] = len(tid_map)
        return mapped

    names: Dict[int, str] = {}
    app_of_tid: Dict[int, int] = {}
    core_segs: Dict[int, List[List[int]]] = {}
    worker_segs: Dict[int, List[List[int]]] = {}
    open_core: Dict[int, Tuple[int, int]] = {}
    open_worker: Dict[int, Tuple[int, int]] = {}
    open_pool: Dict[int, int] = {}
    pool_spans: List[Tuple[int, int, int]] = []
    gauge_raw: Dict[str, List[Tuple[int, float]]] = {}
    runqueue_at: Dict[int, float] = {}
    fault_marks: List[Tuple[int, int, int]] = []
    fault_kind_idx: Dict[str, int] = {}
    fault_kinds: List[str] = []

    for e in trace.events:
        k = e.kind
        if k == tev.TASK_RUN:
            if e.core >= 0:
                open_core[e.core] = (tid_of(e.tid), e.ts)
            else:
                open_pool[tid_of(e.tid)] = e.ts
        elif k == tev.TASK_DESCHEDULE:
            reason = e.args[0] if e.args else ""
            if e.core >= 0:
                opened = open_core.pop(e.core, None)
                if opened is not None:
                    tid, start = opened
                    core_segs.setdefault(e.core, []).append(
                        [start, e.ts - start, tid,
                         app_of_tid.get(tid, other_idx), rid(reason)])
            else:
                start = open_pool.pop(tid_of(e.tid), None)
                if start is not None:
                    pool_spans.append((start, e.ts, tid_of(e.tid)))
        elif k == tev.TASK_SPAWN:
            name = e.args[0] if e.args else ""
            req_id = e.args[1] if len(e.args) > 1 else -1
            names[tid_of(e.tid)] = str(name) or f"req {req_id}"
            app_of_tid[tid_of(e.tid)] = app_of_req.get(req_id, other_idx)
        elif k == tev.SFS_PROMOTE:
            open_worker[e.core] = (tid_of(e.tid), e.ts)
        elif k in tev.WORKER_SPAN_CLOSERS:
            opened = open_worker.pop(e.core, None)
            if opened is not None:
                tid, start = opened
                worker_segs.setdefault(e.core, []).append(
                    [start, e.ts - start, tid,
                     app_of_tid.get(tid, other_idx),
                     rid(k.split(".", 1)[1])])
        elif k == tev.GAUGE_RUNQUEUE:
            # per-core samples share one tick timestamp; sum them
            runqueue_at[e.ts] = runqueue_at.get(e.ts, 0.0) + (
                e.args[0] if e.args else 0)
        elif k.startswith("gauge."):
            gauge_raw.setdefault(k, []).append(
                (e.ts, float(e.args[0]) if e.args else 0.0))
        elif k in _FAULT_MARK_KINDS:
            ki = fault_kind_idx.get(k)
            if ki is None:
                ki = fault_kind_idx[k] = len(fault_kinds)
                fault_kinds.append(k)
            fault_marks.append((e.ts, ki, tid_of(e.tid)))
    if runqueue_at:
        gauge_raw[tev.GAUGE_RUNQUEUE] = sorted(runqueue_at.items())

    # defensively close anything still open at end of stream
    for core, (tid, start) in sorted(open_core.items()):
        core_segs.setdefault(core, []).append(
            [start, sim_time - start, tid,
             app_of_tid.get(tid, other_idx), rid("truncated")])
    for worker, (tid, start) in sorted(open_worker.items()):
        worker_segs.setdefault(worker, []).append(
            [start, sim_time - start, tid,
             app_of_tid.get(tid, other_idx), rid("truncated")])
    for tid, start in sorted(open_pool.items()):
        pool_spans.append((start, sim_time, tid))

    lanes: List[Dict[str, object]] = []
    for core in sorted(core_segs):
        lanes.append({"id": f"core {core}", "kind": "core",
                      "segs": core_segs[core]})
    for worker in sorted(worker_segs):
        lanes.append({"id": f"filter {worker}", "kind": "worker",
                      "segs": worker_segs[worker]})
    packer = _LanePacker(max_lanes=result.n_cores)
    packer.pack(pool_spans)
    pool_reason = rid("pool") if pool_spans else -1
    for i, spans in enumerate(packer.lanes):
        lanes.append({
            "id": f"pool {i}", "kind": "pool",
            "segs": [[s, e - s, tid, app_of_tid.get(tid, other_idx),
                      pool_reason] for s, e, tid in spans],
        })
    merge_rounds = _apply_segment_budget(lanes, sim_time)

    # tooltip names only for tids that survived into a lane
    lane_tids = {
        seg[2]
        for lane in lanes for seg in lane["segs"]  # type: ignore[union-attr]
        if seg[2] >= 0
    }
    task_names = {str(t): names.get(t, f"task {t}") for t in sorted(lane_tids)}

    # --- latency percentile curves over virtual time ------------------
    finishes = np.asarray([r.finish for r in records], dtype=float)
    turn_ms = np.asarray([r.turnaround for r in records], dtype=float) / 1e3
    edges = np.linspace(0.0, float(sim_time), PCT_BINS + 1)
    centers = [int(x) for x in ((edges[:-1] + edges[1:]) / 2)]
    which = np.clip(np.digitize(finishes, edges) - 1, 0, PCT_BINS - 1)
    pct_rows: Dict[str, List[Optional[float]]] = {
        "p50": [], "p90": [], "p99": []}
    counts: List[int] = []
    for b in range(PCT_BINS):
        sel = turn_ms[which == b]
        counts.append(int(sel.size))
        if sel.size == 0:
            for key in pct_rows:
                pct_rows[key].append(None)
        else:
            for key, q in (("p50", 50), ("p90", 90), ("p99", 99)):
                pct_rows[key].append(_num(np.percentile(
                    sel, q, method=PERCENTILE_METHOD)))

    # --- gauge series for the queue chart -----------------------------
    queue_series = []
    for kind, series_label in _QUEUE_SERIES:
        raw = gauge_raw.get(kind)
        if not raw:
            continue
        pts = [[ts, _num(v)] for ts, v in _decimate(raw)]
        queue_series.append({"label": series_label, "pts": pts})
        if len(queue_series) >= _MAX_QUEUE_SERIES:
            break

    # --- faults -------------------------------------------------------
    manifest = result.manifest.to_dict() if result.manifest else {}
    cfg = manifest.get("config") or {}
    plan = cfg.get("faults") or {}
    windows = [[int(h), int(d), int(u)]
               for h, d, u in (plan.get("host_failures") or [])]
    stragglers = [[int(h), _num(s)]
                  for h, s in (plan.get("stragglers") or [])]
    marks = _decimate(fault_marks, MAX_FAULT_MARKS)

    # --- headline stats + tables --------------------------------------
    stats: Dict[str, object] = {
        "requests": len(records),
        "utilization": _num(result.utilization),
        "p50_ms": _num(np.percentile(turn_ms, 50,
                                     method=PERCENTILE_METHOD)) if records else 0,
        "p99_ms": _num(np.percentile(turn_ms, 99,
                                     method=PERCENTILE_METHOD)) if records else 0,
        "sim_time_ms": _num(sim_time / 1e3),
    }
    fault_stats = result.meta.get("fault_stats") if result.meta else None
    if fault_stats:
        ok = sum(1 for r in records if r.status == "ok")
        stats["goodput_fraction"] = _num(ok / max(1, len(records)))
    if result.sfs_stats is not None:
        s = result.sfs_stats
        stats["sfs"] = {
            "promoted": s.promoted,
            "finished_in_slice": s.completed_in_filter,
            "demoted_slice": s.demoted_slice,
            "demoted_io": s.demoted_io,
            "bypassed_overload": s.bypassed_overload,
        }

    slowest = sorted(records, key=lambda r: (-r.turnaround, r.req_id))
    slow_rows = [[r.req_id, r.name, r.app, r.arrival, r.dispatch, r.finish,
                  r.status, r.attempts] for r in slowest[:MAX_SLOWEST]]

    counters: Dict[str, int] = {}
    if metrics is not None and getattr(metrics, "enabled", False):
        for inst in metrics:
            if inst.kind == "counter":
                from repro.obs.instruments import _label_suffix

                counters[inst.name + _label_suffix(inst.labels)] = inst.value

    provenance = {k: v for k, v in manifest.items()
                  if k not in _NONDETERMINISTIC_MANIFEST_FIELDS}

    from repro.why import build_timelines, build_why_doc

    why = build_why_doc(build_timelines(records, trace, audit=audit),
                        top_blamed=why_top)

    return {
        "schema": SCHEMA,
        "label": label,
        "title": title or label,
        "scheduler": result.scheduler,
        "engine": result.engine,
        "n_cores": result.n_cores,
        "sim_time_us": sim_time,
        "stats": stats,
        "apps": app_names,
        "reasons": reasons,
        "lanes": lanes,
        "pool_overflow": packer.overflow,
        "merge_rounds": merge_rounds,
        "tasks": task_names,
        "pcts": {"t": centers, "n": counts, **pct_rows},
        "queue_series": queue_series,
        "faults": {"windows": windows, "stragglers": stragglers,
                   "kinds": fault_kinds,
                   "marks": [[ts, ki, tid] for ts, ki, tid in marks]},
        "slowest": slow_rows,
        "counters": counters,
        "provenance": provenance,
        "why": why,
    }


class RunBundle:
    """One run's compact explorer document (see module docstring)."""

    __slots__ = ("data",)

    def __init__(self, data: Dict[str, object]):
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} document "
                f"(schema={data.get('schema')!r})")
        for key in ("lanes", "stats", "pcts", "faults", "provenance"):
            if key not in data:
                raise ValueError(f"bundle document missing {key!r}")
        self.data = data

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, result, trace, metrics=None,
                title: Optional[str] = None, audit=None) -> "RunBundle":
        """Compact a finished run (result + trace [+ metrics][+ audit])."""
        return cls(build_data(result, trace, metrics=metrics, title=title,
                              audit=audit))

    @property
    def why(self) -> Optional[Dict[str, object]]:
        """The embedded ``repro.why/1`` section (None in older bundles)."""
        return self.data.get("why")  # type: ignore[return-value]

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return str(self.data.get("label", "run"))

    @property
    def sim_time_us(self) -> int:
        return int(self.data["sim_time_us"])  # type: ignore[arg-type]

    def to_json(self) -> str:
        """Canonical byte-stable serialisation."""
        return json.dumps(self.data, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        """Write the bundle; a directory path gets ``bundle.json``."""
        p = Path(path)
        if p.is_dir() or str(path).endswith(("/", ".")):
            p = p / "bundle.json"
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json())
        return p

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunBundle":
        """Load a bundle file, or ``bundle.json`` inside a directory."""
        p = Path(path)
        if p.is_dir():
            p = p / "bundle.json"
        try:
            data = json.loads(p.read_text())
        except OSError as exc:
            raise ValueError(f"{path}: cannot read bundle: {exc}") from None
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
        try:
            return cls(data)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lanes = len(self.data.get("lanes", ()))  # type: ignore[arg-type]
        return f"<RunBundle {self.label} lanes={lanes}>"
