"""Explorer page assembly: RunBundle documents -> one offline HTML.

The page is a static skeleton (header, stat tiles, fault notes, slowest
tables, provenance) rendered server-side, plus placeholder panels the
inline script hydrates into canvases: per-lane timeline swimlanes,
queue-depth and latency-percentile charts sharing one zoomable virtual
time domain.  The bundle documents ride along in a single
``<script type="application/json">`` block; everything else (CSS, JS)
comes from :mod:`repro.explore.assets`, so the output contains no
external references of any kind and is byte-identical for identical
bundles.

``render_diff`` takes two bundles (e.g. cfs vs sfs on the same seed)
and stacks their timelines over shared charts — run A solid, run B
dashed, colour following the series so the A/B comparison reads at a
glance.
"""

from __future__ import annotations

import html as _html
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.explore.assets import CSS, JS
from repro.explore.bundle import RunBundle
from repro.obs.export import sparkline

#: fixed palette slots per percentile curve (colour follows the entity)
_PCT_SLOTS = (("p50", 0), ("p90", 2), ("p99", 7))
_MAX_DIFF_QUEUE_LABELS = 4


def _esc(v: object) -> str:
    return _html.escape(str(v), quote=True)


def _tile(value: str, key: str, sub: str = "") -> str:
    sub_html = f'<div class="sub">{_esc(sub)}</div>' if sub else ""
    return (f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(key)}</div>{sub_html}</div>')


def _tiles(doc: Dict[str, object], prefix: str = "") -> str:
    stats = doc["stats"]
    out = [
        _tile(f"{stats['requests']:,}", prefix + "requests"),
        _tile(f"{float(stats['utilization']):.1%}", prefix + "utilization"),
        _tile(f"{stats['p50_ms']}", prefix + "p50 (ms)"),
        _tile(f"{stats['p99_ms']}", prefix + "p99 (ms)"),
    ]
    if "goodput_fraction" in stats:
        out.append(_tile(f"{float(stats['goodput_fraction']):.1%}",
                         prefix + "goodput"))
    sfs = stats.get("sfs")
    if isinstance(sfs, dict):
        out.append(_tile(f"{sfs['promoted']:,}", prefix + "SFS promoted",
                         f"{sfs['finished_in_slice']:,} done in slice"))
    return '<div class="tiles">' + "".join(out) + "</div>"


def _fault_note(doc: Dict[str, object]) -> str:
    faults = doc["faults"]
    windows = faults.get("windows") or []
    stragglers = faults.get("stragglers") or []
    marks = faults.get("marks") or []
    if not (windows or stragglers or marks):
        return ""
    bits: List[str] = []
    if windows:
        spans = ", ".join(
            f"host {h} down {d / 1e3:,.0f}-{u / 1e3:,.0f} ms"
            for h, d, u in windows[:6])
        more = f" (+{len(windows) - 6} more)" if len(windows) > 6 else ""
        bits.append(f'<span class="fault-note">{_esc(spans + more)}</span>')
    if stragglers:
        slow = ", ".join(f"host {h} at {s}x" for h, s in stragglers[:6])
        bits.append(_esc(f"stragglers: {slow}"))
    if marks:
        bits.append(_esc(f"{len(marks):,} fault/retry/shed events "
                         f"(markers above the lanes)"))
    return f'<p class="muted">{" · ".join(bits)}</p>'


def _timeline_section(doc: Dict[str, object], idx: int,
                      heading: str) -> str:
    notes: List[str] = []
    if doc.get("pool_overflow"):
        notes.append(f"{doc['pool_overflow']:,} pool slices beyond the "
                     f"packed lanes (see the pool gauge)")
    if doc.get("merge_rounds"):
        notes.append(f"dense regions coalesced "
                     f"({doc['merge_rounds']} rounds) — zoom for detail")
    note_html = (f'<p class="hint">{_esc("; ".join(notes))}</p>'
                 if notes else "")
    return (
        f"<section><h2>{_esc(heading)}</h2>"
        f'<div class="panel"><div data-timeline="{idx}"></div>'
        f"{note_html}</div>"
        f"{_fault_note(doc)}</section>"
    )


def _legend(entries: Sequence[Dict[str, object]]) -> str:
    items = []
    for e in entries:
        style = f"background:var(--s{int(e['slot']) + 1})"
        cls = "sw"
        if e.get("dash"):
            cls = "sw dash"
            style = f"border-color:var(--s{int(e['slot']) + 1})"
        items.append(f'<span><span class="{cls}" style="{style}"></span>'
                     f"{_esc(e['label'])}</span>")
    return '<div class="legend">' + "".join(items) + "</div>"


def _chart_panel(heading: str, spec: Dict[str, object],
                 legend: Sequence[Dict[str, object]]) -> str:
    attr = _esc(json.dumps(spec, sort_keys=True, separators=(",", ":")))
    return (f'<div class="panel"><h2>{_esc(heading)}</h2>'
            f'<div data-chart="{attr}"></div>'
            f"{_legend(legend)}</div>")


def _queue_chart(docs: Sequence[Dict[str, object]]) -> str:
    # colour follows the series *label*, run B only changes the dash
    labels: List[str] = []
    for doc in docs:
        for qs in doc["queue_series"]:
            if qs["label"] not in labels:
                labels.append(str(qs["label"]))
    labels = labels[:_MAX_DIFF_QUEUE_LABELS]
    series: List[Dict[str, object]] = []
    legend: List[Dict[str, object]] = []
    diff = len(docs) > 1
    for run_i, doc in enumerate(docs):
        tag = f"{'AB'[run_i]} · " if diff else ""
        for key, qs in enumerate(doc["queue_series"]):
            if qs["label"] not in labels:
                continue
            slot = labels.index(str(qs["label"]))
            entry = {"label": tag + str(qs["label"]), "slot": slot,
                     "run": run_i, "src": "queue", "key": key,
                     "dash": run_i > 0}
            series.append(entry)
            legend.append(entry)
    if not series:
        return ""
    return _chart_panel("Queue depth over virtual time",
                        {"series": series, "log": False, "unit": ""},
                        legend)


def _pct_chart(docs: Sequence[Dict[str, object]]) -> str:
    series: List[Dict[str, object]] = []
    diff = len(docs) > 1
    for run_i in range(len(docs)):
        tag = f"{'AB'[run_i]} · " if diff else ""
        for key, slot in _PCT_SLOTS:
            entry = {"label": tag + key, "slot": slot, "run": run_i,
                     "src": "pcts", "key": key, "dash": run_i > 0}
            series.append(entry)
    return _chart_panel(
        "Turnaround percentiles by finish time (ms, log scale)",
        {"series": series, "log": True, "unit": "ms"}, series)


def _slowest_table(doc: Dict[str, object], heading: str) -> str:
    rows = doc.get("slowest") or []
    if not rows:
        return ""
    body = "".join(
        "<tr>"
        f"<td>{req_id}</td><td class=l>{_esc(name)}</td>"
        f"<td class=l>{_esc(app)}</td>"
        f"<td>{arrival / 1e3:,.1f}</td><td>{dispatch / 1e3:,.1f}</td>"
        f"<td>{finish / 1e3:,.1f}</td>"
        f"<td>{(finish - dispatch) / 1e3:,.1f}</td>"
        f"<td class=l>{_esc(status)}</td><td>{attempts}</td></tr>"
        for req_id, name, app, arrival, dispatch, finish, status, attempts
        in rows)
    return (
        f"<details><summary>{_esc(heading)} ({len(rows)} requests)"
        f"</summary><table><tr><th>req</th><th class=l>function</th>"
        f"<th class=l>app</th><th>arrival (ms)</th><th>dispatch (ms)</th>"
        f"<th>finish (ms)</th><th>turnaround (ms)</th>"
        f"<th class=l>status</th><th>tries</th></tr>"
        f"{body}</table></details>")


def _counters_panel(doc: Dict[str, object], heading: str) -> str:
    counters = doc.get("counters") or {}
    if not counters:
        return ""
    body = "".join(
        f"<tr><td class=l>{_esc(k)}</td><td>{counters[k]:,}</td></tr>"
        for k in sorted(counters))
    return (f"<details><summary>{_esc(heading)}</summary>"
            f"<table><tr><th class=l>counter</th><th>total</th></tr>"
            f"{body}</table></details>")


def _fmt_ms(us: int) -> str:
    return f"{us / 1e3:,.3f}"


def _why_flame_html(flame: Dict[str, object]) -> str:
    """Server-rendered pure-CSS icicle (no script needed to read it)."""
    from repro.why.blame import FLAME_COLORS, FLAME_DEFAULT_COLOR, flame_rows

    parts = ['<div class="fg">']
    for row in flame_rows(flame):
        parts.append('<div class="fg-row">')
        cursor = 0.0
        for left, width, name, value, key in sorted(row):
            pad = left - cursor
            if pad > 1e-9:
                parts.append(f'<div class="fg-frame fg-pad" '
                             f'style="width:{pad:.4f}%">&nbsp;</div>')
            color = FLAME_COLORS.get(key, FLAME_DEFAULT_COLOR)
            parts.append(
                f'<div class="fg-frame" style="width:{width:.4f}%;'
                f'background:{color}" title="{_esc(name)}: {value}us">'
                f"{_esc(name)} <span>{_fmt_ms(value)} ms</span></div>")
            cursor = left + width
        parts.append("</div>")
    parts.append("</div>")
    return "".join(parts)


def _why_request_details(why: Dict[str, object]) -> str:
    reqs = why.get("requests") or {}
    parts: List[str] = []
    for rid in why.get("top_blamed", []):
        r = reqs.get(str(rid))
        if r is None:
            continue
        body = "".join(
            "<tr>"
            f"<td>{seg['t0'] / 1e3:,.3f}</td><td>{seg['dur'] / 1e3:,.3f}</td>"
            f"<td class=l>{_esc(seg['kind'])}</td>"
            f"<td class=l>{_esc(seg.get('reason', ''))}</td>"
            f"<td>{seg.get('core', '')}</td>"
            f"<td class=l>{_esc(seg.get('actor', ''))}</td></tr>"
            for seg in r.get("segments", ()))
        share = r["blamed_us"] / max(1, r["end_to_end_us"])
        parts.append(
            f"<details><summary>req {rid} · {_esc(r['name'])} "
            f"({_esc(r['status'])}) — blamed {_fmt_ms(r['blamed_us'])} of "
            f"{_fmt_ms(r['end_to_end_us'])} ms ({share:.0%})</summary>"
            f"<table><tr><th>t0 (ms)</th><th>dur (ms)</th>"
            f"<th class=l>kind</th><th class=l>reason</th><th>core</th>"
            f"<th class=l>decision-maker</th></tr>{body}</table>"
            f"</details>")
    return "".join(parts)


def _why_section(doc: Dict[str, object], heading: str) -> str:
    """Blame attribution panel: flamegraph + per-request drill-down."""
    why = doc.get("why")
    if not why:
        return ""
    totals = why["totals"]
    e2e = max(1, int(totals["end_to_end_us"]))
    blamed = int(totals["blamed_us"])
    kinds = " · ".join(f"{k} {_fmt_ms(v)} ms"
                       for k, v in sorted(totals["by_kind"].items(),
                                          key=lambda kv: -kv[1]))
    actor_rows = sorted(totals.get("by_actor", {}).items(),
                        key=lambda kv: (-kv[1], kv[0]))
    actors = ""
    if actor_rows:
        body = "".join(
            f"<tr><td class=l>{_esc(a)}</td><td>{_fmt_ms(v)}</td></tr>"
            for a, v in actor_rows)
        actors = (f"<details><summary>blame by audited decision-maker"
                  f"</summary><table><tr><th class=l>decision-maker</th>"
                  f"<th>blamed (ms)</th></tr>{body}</table></details>")
    return (
        f"<section><h2>{_esc(heading)}</h2>"
        f'<div class="panel">'
        f'<p class="muted">blamed {blamed / 1e6:,.3f}s of '
        f"{e2e / 1e6:,.3f}s total end-to-end ({blamed / e2e:.1%}) — "
        f"root &rarr; kind &rarr; reason &rarr; app</p>"
        f"{_why_flame_html(why['flame'])}"
        f'<p class="hint">{_esc(kinds) if kinds else "no blamed time"}</p>'
        f"{actors}{_why_request_details(why)}"
        f"</div></section>")


def _why_diff_table(docs: Sequence[Dict[str, object]]) -> str:
    """Aligned per-request blame comparison (same request, both runs)."""
    if len(docs) != 2:
        return ""
    why_a, why_b = docs[0].get("why"), docs[1].get("why")
    if not why_a or not why_b:
        return ""
    from repro.why.blame import blame_diff

    rows = blame_diff(why_a, why_b)
    if not rows:
        return ""
    body_parts = []
    for r in rows[:40]:
        a = "—" if r["a_blamed_us"] is None else _fmt_ms(r["a_blamed_us"])
        b = "—" if r["b_blamed_us"] is None else _fmt_ms(r["b_blamed_us"])
        if r["delta_us"] is None:
            delta = "—"
        else:
            cls = ("why-delta-up" if r["delta_us"] > 0 else
                   "why-delta-down" if r["delta_us"] < 0 else "")
            sign = "+" if r["delta_us"] > 0 else ""
            delta = (f'<span class="{cls}">{sign}'
                     f"{_fmt_ms(r['delta_us'])}</span>")
        body_parts.append(
            f"<tr><td>{r['req_id']}</td><td class=l>{_esc(r['name'])}</td>"
            f"<td>{a}</td><td>{b}</td><td>{delta}</td></tr>")
    return (
        f"<details open><summary>same request, both runs — blame diff "
        f"(A = {_esc(docs[0]['label'])}, B = {_esc(docs[1]['label'])})"
        f"</summary><table><tr><th>req</th><th class=l>function</th>"
        f"<th>A blamed (ms)</th><th>B blamed (ms)</th>"
        f"<th>&Delta; (ms)</th></tr>{''.join(body_parts)}</table>"
        f"</details>")


def _provenance_panel(doc: Dict[str, object], heading: str) -> str:
    pretty = json.dumps(doc["provenance"], sort_keys=True, indent=1)
    return (f"<details><summary>{_esc(heading)}</summary>"
            f"<pre>{_esc(pretty)}</pre></details>")


def _noscript(docs: Sequence[Dict[str, object]]) -> str:
    parts = ["<noscript>"]
    for doc in docs:
        for qs in doc["queue_series"][:1]:
            parts.append(
                f'<div class="panel"><p class="muted">'
                f"{_esc(doc['label'])} · {_esc(qs['label'])} "
                f"(static fallback — the timeline needs scripting)</p>"
                f"{sparkline([(p[0], p[1]) for p in qs['pts']])}</div>")
    parts.append("</noscript>")
    return "".join(parts)


def _embed_json(docs: Sequence[Dict[str, object]]) -> str:
    payload = json.dumps({"runs": list(docs)}, sort_keys=True,
                         separators=(",", ":"))
    # a task name containing "</script>" must not terminate the block
    return ('<script type="application/json" id="explore-data">'
            + payload.replace("</", "<\\/") + "</script>")


def _render(docs: Sequence[Dict[str, object]], title: str) -> str:
    diff = len(docs) > 1
    meta_bits = []
    for i, doc in enumerate(docs):
        tag = f"{'AB'[i]} = " if diff else ""
        meta_bits.append(f"{tag}{doc['label']} · {doc['n_cores']} cores · "
                         f"{float(doc['stats']['sim_time_ms']):,.0f} ms "
                         f"virtual")
    parts = [
        "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">",
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
        f"<title>{_esc(title)}</title>",
        f"<style>{CSS}</style></head><body><main>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">{_esc(" · ".join(meta_bits))}</p>',
        '<p class="hint">drag to pan · wheel to zoom · double-click to '
        "reset · hover for details</p>",
    ]
    for i, doc in enumerate(docs):
        prefix = f"{'AB'[i]} · " if diff else ""
        parts.append(_tiles(doc, prefix))
    for i, doc in enumerate(docs):
        heading = (f"Timeline {'AB'[i]} — {doc['label']}" if diff
                   else f"Timeline — {doc['label']}")
        parts.append(_timeline_section(doc, i, heading))
    charts = _queue_chart(docs) + _pct_chart(docs)
    parts.append(f'<div class="charts">{charts}</div>')
    for i, doc in enumerate(docs):
        heading = (f"Why {'AB'[i]} — blame attribution ({doc['label']})"
                   if diff else "Why — blame attribution")
        parts.append(_why_section(doc, heading))
    parts.append(_why_diff_table(docs))
    for i, doc in enumerate(docs):
        prefix = f"{'AB'[i]} {doc['label']}: " if diff else ""
        parts.append(_slowest_table(doc, f"{prefix}slowest requests"))
        parts.append(_counters_panel(doc, f"{prefix}metric counters"))
        parts.append(_provenance_panel(doc, f"{prefix}provenance"))
    parts.append(_noscript(docs))
    parts.append(_embed_json(docs))
    parts.append(f"<script>{JS}</script>")
    parts.append("</main></body></html>")
    return "".join(parts)


def render_explorer(bundle: RunBundle, title: Optional[str] = None) -> str:
    """One run -> one self-contained interactive HTML page."""
    return _render([bundle.data],
                   title or f"run explorer — {bundle.data.get('title')}")


def render_diff(bundle_a: RunBundle, bundle_b: RunBundle,
                title: Optional[str] = None) -> str:
    """Two runs -> one page with aligned timelines and overlaid curves."""
    return _render(
        [bundle_a.data, bundle_b.data],
        title or f"run diff — {bundle_a.label} vs {bundle_b.label}")


def write_explorer(path: Union[str, Path],
                   bundles: Sequence[RunBundle],
                   title: Optional[str] = None,
                   metrics=None) -> int:
    """Render one or two bundles to ``path``; returns bytes written.

    When a live metrics registry is passed, the build shows up in the
    self-profiler (``explore.build`` site) and in the
    ``repro_explorer_builds_total`` / ``repro_explorer_bytes``
    instruments — build time is wall clock and never enters the page.
    """
    if not 1 <= len(bundles) <= 2:
        raise ValueError(f"explorer takes 1 or 2 bundles, got {len(bundles)}")
    t0 = time.perf_counter()
    if len(bundles) == 1:
        text = render_explorer(bundles[0], title=title)
    else:
        text = render_diff(bundles[0], bundles[1], title=title)
    data = text.encode("utf-8")
    Path(path).write_bytes(data)
    if metrics is not None and getattr(metrics, "enabled", False):
        metrics.counter("repro_explorer_builds_total",
                        help="explorer pages generated").inc()
        metrics.gauge("repro_explorer_bytes", unit="bytes",
                      help="size of the last explorer page").set(len(data))
        profiler = getattr(metrics, "profiler", None)
        if profiler is not None:
            profiler.add("explore.build", time.perf_counter() - t0)
    return len(data)
