"""Static CSS/JS for the run explorer page.

Everything here is a constant string inlined into the generated HTML —
no CDN, no external fonts, no network references — so the artifact is
fully offline and byte-identical across builds.  The palette is the
validated categorical/status set from the dataviz reference (light and
dark steps selected per surface, CVD-checked in adjacent order); lane
and series colours are assigned by *slot*, never cycled.
"""

from __future__ import annotations

#: categorical palette slots (fixed order — the CVD-safety mechanism)
CATEGORICAL_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                     "#e87ba4", "#008300", "#4a3aa7")
CATEGORICAL_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                    "#d55181", "#008300", "#9085e9")

CSS = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --plane: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --critical: #d03b3b; --serious: #ec835a;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --plane: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
* { box-sizing: border-box; }
body { font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 0; background: var(--plane); color: var(--ink); }
main { max-width: 76em; margin: 0 auto; padding: 1.2em 1.4em 3em; }
h1 { font-size: 1.3em; margin: 0.4em 0 0.1em; }
h2 { font-size: 1.05em; margin: 1.6em 0 0.5em; }
.meta { color: var(--ink-2); font-size: 0.9em; }
.muted { color: var(--muted); font-size: 0.85em; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.7em; margin: 1em 0; }
.tile { background: var(--surface); border: 1px solid var(--border);
        border-radius: 8px; padding: 0.55em 0.95em; min-width: 7.5em; }
.tile .v { font-size: 1.35em; }
.tile .k { color: var(--ink-2); font-size: 0.78em; }
.tile .sub { color: var(--muted); font-size: 0.75em; }
.panel { background: var(--surface); border: 1px solid var(--border);
         border-radius: 8px; padding: 0.7em 0.9em; margin: 0.6em 0; }
canvas { display: block; width: 100%; }
.legend { display: flex; flex-wrap: wrap; gap: 1em; margin-top: 0.35em;
          font-size: 0.82em; color: var(--ink-2); }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 0.35em;
              vertical-align: -1px; }
.legend .dash { height: 0; width: 14px; border-top: 2px dashed;
                border-radius: 0; vertical-align: 2px; }
.charts { display: grid; grid-template-columns: 1fr 1fr; gap: 0.8em; }
@media (max-width: 900px) { .charts { grid-template-columns: 1fr; } }
#tip { position: fixed; pointer-events: none; display: none; z-index: 9;
       background: var(--surface); border: 1px solid var(--border);
       border-radius: 6px; box-shadow: 0 2px 10px rgba(0,0,0,0.18);
       padding: 0.45em 0.6em; font-size: 0.82em; max-width: 24em; }
#tip .t { color: var(--muted); }
table { border-collapse: collapse; font-size: 0.86em; margin: 0.4em 0;
        font-variant-numeric: tabular-nums; }
th, td { border-bottom: 1px solid var(--grid); padding: 0.25em 0.7em;
         text-align: right; }
th { color: var(--ink-2); font-weight: 600; }
td:first-child, th:first-child, td.l, th.l { text-align: left; }
details { margin: 0.7em 0; }
summary { cursor: pointer; color: var(--ink-2); }
pre { background: var(--surface); border: 1px solid var(--border);
      border-radius: 6px; padding: 0.7em; overflow-x: auto;
      font-size: 0.8em; }
.hint { color: var(--muted); font-size: 0.78em; margin: 0.25em 0 0; }
.fault-note { color: var(--critical); font-size: 0.85em; }
noscript .panel svg { border: none; background: transparent; }
.fg { border: 1px solid var(--border); border-radius: 6px;
      overflow: hidden; margin: 0.4em 0; }
.fg-row { overflow: hidden; clear: both; }
.fg-frame { box-sizing: border-box; float: left; overflow: hidden;
            white-space: nowrap; text-overflow: ellipsis;
            padding: 2px 5px; font-size: 0.78em; font-weight: 600;
            color: #14161b; border-right: 1px solid var(--plane);
            border-top: 1px solid var(--plane); }
.fg-frame span { font-weight: 400; opacity: 0.75; }
.fg-pad { background: transparent !important; border: none !important; }
.why-delta-up { color: var(--critical, #e66767); }
.why-delta-down { color: var(--s3, #199e70); }
"""

JS = r"""
'use strict';
(function () {
  var DOC = JSON.parse(document.getElementById('explore-data').textContent);
  var RUNS = DOC.runs;
  var T_MAX = 1;
  RUNS.forEach(function (r) { T_MAX = Math.max(T_MAX, r.sim_time_us); });

  // ---- theme -------------------------------------------------------
  function cssVar(name) {
    return getComputedStyle(document.documentElement)
      .getPropertyValue(name).trim();
  }
  var THEME = {};
  function loadTheme() {
    THEME.surface = cssVar('--surface');
    THEME.grid = cssVar('--grid');
    THEME.axis = cssVar('--axis');
    THEME.ink = cssVar('--ink');
    THEME.ink2 = cssVar('--ink-2');
    THEME.muted = cssVar('--muted');
    THEME.critical = cssVar('--critical');
    THEME.serious = cssVar('--serious');
    THEME.slots = [1, 2, 3, 4, 5, 6, 7, 8].map(function (i) {
      return cssVar('--s' + i);
    });
  }
  loadTheme();

  // ---- shared view state (zoom domain + cursor) --------------------
  var view = { t0: 0, t1: T_MAX };
  var cursorT = null;
  var components = [];
  function renderAll() {
    components.forEach(function (c) { c.render(); });
  }
  function setDomain(t0, t1) {
    var span = Math.max(1000, t1 - t0);
    t0 = Math.max(0, Math.min(t0, T_MAX - span));
    view.t0 = t0; view.t1 = Math.min(T_MAX, t0 + span);
    renderAll();
  }
  function setCursor(t) { cursorT = t; renderAll(); }

  var tip = document.createElement('div');
  tip.id = 'tip';
  document.body.appendChild(tip);
  function showTip(evt, html) {
    tip.style.display = 'block';
    tip.innerHTML = html;
    var x = Math.min(evt.clientX + 14, window.innerWidth - tip.offsetWidth - 8);
    var y = Math.min(evt.clientY + 14, window.innerHeight - tip.offsetHeight - 8);
    tip.style.left = x + 'px'; tip.style.top = y + 'px';
  }
  function hideTip() { tip.style.display = 'none'; }

  function fmtT(us) {
    if (us >= 1e6) { return (us / 1e6).toFixed(2) + ' s'; }
    if (us >= 1e3) { return (us / 1e3).toFixed(1) + ' ms'; }
    return us.toFixed(0) + ' µs';
  }
  function fmtV(v) {
    if (v >= 1000) { return v.toFixed(0); }
    if (v >= 10) { return v.toFixed(1); }
    return v.toFixed(2);
  }
  function esc(s) {
    return String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;');
  }

  function setupCanvas(cv, height) {
    var dpr = window.devicePixelRatio || 1;
    var w = cv.clientWidth || cv.parentNode.clientWidth || 800;
    cv.width = Math.round(w * dpr);
    cv.height = Math.round(height * dpr);
    cv.style.height = height + 'px';
    var ctx = cv.getContext('2d');
    ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
    return { ctx: ctx, w: w, h: height };
  }

  function timeTicks(t0, t1, n) {
    var span = t1 - t0, raw = span / n;
    var mag = Math.pow(10, Math.floor(Math.log10(raw)));
    var step = mag;
    [1, 2, 5, 10].some(function (m) {
      if (m * mag >= raw) { step = m * mag; return true; }
      return false;
    });
    var out = [], t = Math.ceil(t0 / step) * step;
    for (; t <= t1; t += step) { out.push(t); }
    return out;
  }

  // ---- pan/zoom + cursor wiring ------------------------------------
  function wireTimeAxis(cv, gutter, onHover) {
    function toT(evt) {
      var r = cv.getBoundingClientRect();
      var x = evt.clientX - r.left - gutter;
      var w = r.width - gutter;
      return view.t0 + Math.max(0, Math.min(1, x / w)) * (view.t1 - view.t0);
    }
    cv.addEventListener('wheel', function (evt) {
      evt.preventDefault();
      var t = toT(evt);
      var f = evt.deltaY > 0 ? 1.25 : 0.8;
      var span = (view.t1 - view.t0) * f;
      setDomain(t - (t - view.t0) * f, t - (t - view.t0) * f + span);
    }, { passive: false });
    var drag = null;
    cv.addEventListener('mousedown', function (evt) {
      drag = { x: evt.clientX, t0: view.t0, t1: view.t1, moved: false };
    });
    window.addEventListener('mousemove', function (evt) {
      if (!drag) { return; }
      var r = cv.getBoundingClientRect();
      var dt = (drag.x - evt.clientX) / (r.width - gutter) * (drag.t1 - drag.t0);
      if (Math.abs(drag.x - evt.clientX) > 2) { drag.moved = true; }
      setDomain(drag.t0 + dt, drag.t1 + dt);
    });
    window.addEventListener('mouseup', function () { drag = null; });
    cv.addEventListener('dblclick', function () { setDomain(0, T_MAX); });
    cv.addEventListener('mousemove', function (evt) {
      if (drag) { hideTip(); return; }
      setCursor(toT(evt));
      onHover(evt, toT(evt));
    });
    cv.addEventListener('mouseleave', function () {
      setCursor(null); hideTip();
    });
  }

  // ---- timeline swimlanes ------------------------------------------
  var GUTTER = 74, LANE_H = 16, LANE_GAP = 3, AXIS_H = 22, MARK_H = 12;

  function appColor(run, appIdx) {
    if (appIdx < 0) { return THEME.muted; }
    if (appIdx >= run.apps.length - (run.apps.length > 7 ? 1 : 0) &&
        run.apps[appIdx] === 'other') { return THEME.muted; }
    return THEME.slots[appIdx % 7];
  }

  function makeTimeline(el, run) {
    var lanes = run.lanes;
    var marks = run.faults.marks || [];
    var markRow = marks.length ? MARK_H + 2 : 0;
    var height = markRow + lanes.length * (LANE_H + LANE_GAP) + AXIS_H + 4;
    var cv = document.createElement('canvas');
    el.appendChild(cv);
    var comp = {};

    function laneY(i) { return markRow + 2 + i * (LANE_H + LANE_GAP); }

    comp.render = function () {
      var s = setupCanvas(cv, height);
      var ctx = s.ctx, w = s.w;
      var plotW = w - GUTTER;
      var t0 = view.t0, span = view.t1 - view.t0;
      function X(t) { return GUTTER + (t - t0) / span * plotW; }
      ctx.clearRect(0, 0, w, height);

      // fault windows behind everything
      (run.faults.windows || []).forEach(function (win) {
        var x0 = Math.max(GUTTER, X(win[1])), x1 = Math.min(w, X(win[2]));
        if (x1 <= GUTTER || x0 >= w) { return; }
        ctx.globalAlpha = 0.13;
        ctx.fillStyle = THEME.critical;
        ctx.fillRect(x0, 0, x1 - x0, height - AXIS_H);
        ctx.globalAlpha = 1;
      });

      lanes.forEach(function (lane, i) {
        var y = laneY(i);
        ctx.fillStyle = THEME.surface;
        ctx.fillRect(GUTTER, y, plotW, LANE_H);
        ctx.strokeStyle = THEME.grid;
        ctx.lineWidth = 1;
        ctx.strokeRect(GUTTER + 0.5, y + 0.5, plotW - 1, LANE_H - 1);
        var segs = lane.segs;
        for (var j = 0; j < segs.length; j++) {
          var g = segs[j];
          var sx = X(g[0]), ex = X(g[0] + g[1]);
          if (ex < GUTTER || sx > w) { continue; }
          sx = Math.max(sx, GUTTER); ex = Math.min(ex, w);
          ctx.fillStyle = g.length === 6 ? THEME.axis
            : appColor(run, g[3]);
          ctx.fillRect(sx, y + 2, Math.max(ex - sx, 0.75), LANE_H - 4);
        }
        ctx.fillStyle = THEME.ink2;
        ctx.font = '10px system-ui, sans-serif';
        ctx.textAlign = 'left'; ctx.textBaseline = 'middle';
        ctx.fillText(lane.id, 4, y + LANE_H / 2);
      });

      // fault instant markers
      if (marks.length) {
        ctx.fillStyle = THEME.serious;
        marks.forEach(function (m) {
          var x = X(m[0]);
          if (x < GUTTER || x > w) { return; }
          ctx.beginPath();
          ctx.moveTo(x, MARK_H);
          ctx.lineTo(x - 3.2, 1); ctx.lineTo(x + 3.2, 1);
          ctx.closePath(); ctx.fill();
        });
      }

      // axis
      var ay = height - AXIS_H;
      ctx.strokeStyle = THEME.axis;
      ctx.beginPath();
      ctx.moveTo(GUTTER, ay + 0.5); ctx.lineTo(w, ay + 0.5); ctx.stroke();
      ctx.fillStyle = THEME.muted;
      ctx.font = '10px system-ui, sans-serif';
      ctx.textAlign = 'center'; ctx.textBaseline = 'top';
      timeTicks(t0, view.t1, 8).forEach(function (t) {
        var x = X(t);
        if (x < GUTTER) { return; }
        ctx.strokeStyle = THEME.grid;
        ctx.beginPath(); ctx.moveTo(x, ay); ctx.lineTo(x, ay + 4);
        ctx.stroke();
        ctx.fillText(fmtT(t), x, ay + 6);
      });

      // shared cursor
      if (cursorT !== null && cursorT >= t0 && cursorT <= view.t1) {
        ctx.strokeStyle = THEME.muted;
        ctx.globalAlpha = 0.55;
        ctx.beginPath();
        ctx.moveTo(X(cursorT) + 0.5, 0);
        ctx.lineTo(X(cursorT) + 0.5, ay);
        ctx.stroke();
        ctx.globalAlpha = 1;
      }
    };

    function hitSeg(lane, t) {
      var segs = lane.segs, lo = 0, hi = segs.length - 1, best = null;
      while (lo <= hi) {
        var mid = (lo + hi) >> 1;
        if (segs[mid][0] <= t) { best = segs[mid]; lo = mid + 1; }
        else { hi = mid - 1; }
      }
      return (best && t <= best[0] + best[1]) ? best : null;
    }

    wireTimeAxis(cv, GUTTER, function (evt, t) {
      var r = cv.getBoundingClientRect();
      var y = evt.clientY - r.top;
      if (marks.length && y < MARK_H + 2) {
        var span = view.t1 - view.t0;
        var near = marks.filter(function (m) {
          return Math.abs(m[0] - t) < span * 0.004;
        }).slice(0, 6);
        if (near.length) {
          showTip(evt, near.map(function (m) {
            return esc(run.faults.kinds[m[1]]) +
              (m[2] >= 0 ? ' tid ' + m[2] : '') +
              ' <span class=t>@ ' + fmtT(m[0]) + '</span>';
          }).join('<br>'));
          return;
        }
      }
      var i = Math.floor((y - markRow - 2) / (LANE_H + LANE_GAP));
      var lane = lanes[i];
      if (!lane) { hideTip(); return; }
      var g = hitSeg(lane, t);
      if (!g) { hideTip(); return; }
      if (g.length === 6) {
        showTip(evt, '<b>' + g[5] + ' short slices</b> (coalesced)' +
          '<br><span class=t>' + esc(lane.id) + ' · ' +
          fmtT(g[0]) + ' + ' + fmtT(g[1]) + '</span>');
      } else {
        var name = run.tasks[String(g[2])] || ('task ' + g[2]);
        showTip(evt, '<b>' + esc(name) + '</b> · tid ' + g[2] +
          '<br>' + esc(run.apps[g[3]] || '?') + ' · ' +
          esc(run.reasons[g[4]] || '') +
          '<br><span class=t>' + esc(lane.id) + ' · ' +
          fmtT(g[0]) + ' + ' + fmtT(g[1]) + '</span>');
      }
    });
    components.push(comp);
  }

  // ---- generic line chart ------------------------------------------
  var CHART_H = 170, CH_GUTTER = 46;

  function makeChart(el, spec) {
    var cv = document.createElement('canvas');
    el.insertBefore(cv, el.firstChild);
    var comp = {};

    comp.render = function () {
      var s = setupCanvas(cv, CHART_H);
      var ctx = s.ctx, w = s.w;
      var plotW = w - CH_GUTTER, plotH = CHART_H - AXIS_H;
      var t0 = view.t0, span = view.t1 - view.t0;
      function X(t) { return CH_GUTTER + (t - t0) / span * plotW; }
      ctx.clearRect(0, 0, w, CHART_H);

      var vmax = 0, vmin = Infinity;
      spec.series.forEach(function (se) {
        se.pts.forEach(function (p) {
          if (p[1] === null || p[0] < t0 || p[0] > view.t1) { return; }
          if (p[1] > vmax) { vmax = p[1]; }
          if (p[1] < vmin && p[1] > 0) { vmin = p[1]; }
        });
      });
      if (vmax <= 0) { vmax = 1; }
      if (!isFinite(vmin)) { vmin = spec.log ? 0.1 : 0; }
      var y0 = spec.log ? Math.log(Math.max(vmin * 0.8, 1e-3)) : 0;
      var y1 = spec.log ? Math.log(vmax * 1.12) : vmax * 1.08;
      function Y(v) {
        var u = spec.log ? Math.log(Math.max(v, 1e-3)) : v;
        return plotH - (u - y0) / (y1 - y0) * (plotH - 6);
      }

      // grid + y labels
      ctx.font = '10px system-ui, sans-serif';
      ctx.textAlign = 'right'; ctx.textBaseline = 'middle';
      var steps = 4;
      for (var i = 0; i <= steps; i++) {
        var v = spec.log
          ? Math.exp(y0 + (y1 - y0) * i / steps)
          : (y1 * i / steps);
        var y = Y(v);
        ctx.strokeStyle = THEME.grid;
        ctx.beginPath();
        ctx.moveTo(CH_GUTTER, y + 0.5); ctx.lineTo(w, y + 0.5); ctx.stroke();
        ctx.fillStyle = THEME.muted;
        ctx.fillText(fmtV(v), CH_GUTTER - 5, y);
      }

      spec.series.forEach(function (se) {
        ctx.strokeStyle = se.color;
        ctx.lineWidth = 2;
        ctx.setLineDash(se.dash ? [6, 4] : []);
        ctx.beginPath();
        var pen = false;
        se.pts.forEach(function (p) {
          if (p[1] === null) { pen = false; return; }
          var x = X(p[0]), y = Y(p[1]);
          if (x < CH_GUTTER - 2 || x > w + 2) { pen = false; return; }
          if (pen) { ctx.lineTo(x, y); } else { ctx.moveTo(x, y); }
          pen = true;
        });
        ctx.stroke();
        ctx.setLineDash([]);
      });

      // x axis
      var ay = CHART_H - AXIS_H;
      ctx.strokeStyle = THEME.axis;
      ctx.beginPath();
      ctx.moveTo(CH_GUTTER, ay + 0.5); ctx.lineTo(w, ay + 0.5); ctx.stroke();
      ctx.fillStyle = THEME.muted;
      ctx.textAlign = 'center'; ctx.textBaseline = 'top';
      timeTicks(t0, view.t1, 6).forEach(function (t) {
        var x = X(t);
        if (x < CH_GUTTER) { return; }
        ctx.fillText(fmtT(t), x, ay + 6);
      });

      if (cursorT !== null && cursorT >= t0 && cursorT <= view.t1) {
        ctx.strokeStyle = THEME.muted;
        ctx.globalAlpha = 0.55;
        ctx.beginPath();
        ctx.moveTo(X(cursorT) + 0.5, 0); ctx.lineTo(X(cursorT) + 0.5, ay);
        ctx.stroke();
        ctx.globalAlpha = 1;
      }
    };

    wireTimeAxis(cv, CH_GUTTER, function (evt, t) {
      var rows = [];
      spec.series.forEach(function (se) {
        var best = null, bd = Infinity;
        se.pts.forEach(function (p) {
          if (p[1] === null) { return; }
          var d = Math.abs(p[0] - t);
          if (d < bd) { bd = d; best = p; }
        });
        if (best && bd < (view.t1 - view.t0) * 0.06) {
          rows.push('<span class=sw style="background:' + se.color +
            '"></span>' + esc(se.label) + ': <b>' + fmtV(best[1]) +
            '</b>' + (spec.unit ? ' ' + spec.unit : ''));
        }
      });
      if (rows.length) {
        showTip(evt, rows.join('<br>') +
          '<br><span class=t>@ ' + fmtT(t) + '</span>');
      } else { hideTip(); }
    });
    components.push(comp);
  }

  // ---- build components from the DOM skeleton ----------------------
  document.querySelectorAll('[data-timeline]').forEach(function (el) {
    makeTimeline(el, RUNS[Number(el.getAttribute('data-timeline'))]);
  });
  document.querySelectorAll('[data-chart]').forEach(function (el) {
    var spec = JSON.parse(el.getAttribute('data-chart'));
    spec.series.forEach(function (se) {
      se.color = THEME.slots[se.slot % 8];
      var run = RUNS[se.run || 0];
      se.pts = se.src === 'pcts'
        ? run.pcts.t.map(function (t, i) { return [t, run.pcts[se.key][i]]; })
        : run.queue_series[se.key].pts;
    });
    makeChart(el, spec);
  });

  if (window.matchMedia) {
    window.matchMedia('(prefers-color-scheme: dark)')
      .addEventListener('change', function () { loadTheme(); renderAll(); });
  }
  window.addEventListener('resize', renderAll);
  renderAll();
})();
"""
