"""Failure-handling policies: retries and admission control.

Both policies are frozen declarative data with pure decision functions,
mirroring :class:`repro.faults.plan.FaultPlan`: a retry delay is a
function of ``(seed, req_id, attempt)`` alone, so two runs that retry
the same request the same number of times back off identically even
when everything else about the runs differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_SALT_BACKOFF = 0xB0


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with decorrelated jitter.

    The jitter rule is the AWS "decorrelated" variant:
    ``sleep_i = min(cap, uniform(base, 3 * sleep_{i-1}))`` with
    ``sleep_0 = base`` — it spreads retry storms while keeping the
    expected growth exponential.  The recurrence is re-derived from the
    hashed per-attempt generators on every call, which keeps the delay
    a pure function of the inputs (no mutable state to desynchronise).
    """

    #: total tries, including the first (1 = never retry)
    max_attempts: int = 3
    #: first backoff, us
    base_backoff: int = 10_000
    #: backoff cap, us
    max_backoff: int = 1_000_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 1:
            raise ValueError("base_backoff must be >= 1 us")
        if self.max_backoff < self.base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")

    def allows(self, attempt: int) -> bool:
        """May a request that just failed attempt ``attempt`` try again?"""
        return attempt < self.max_attempts

    def backoff(self, req_id: int, attempt: int) -> int:
        """Delay (us) before the retry that follows failed ``attempt``."""
        sleep = float(self.base_backoff)
        for i in range(1, attempt + 1):
            rng = np.random.default_rng((self.seed, req_id, i, _SALT_BACKOFF))
            sleep = min(float(self.max_backoff),
                        rng.uniform(self.base_backoff, sleep * 3.0))
        return max(1, int(sleep))


@dataclass(frozen=True)
class AdmissionControl:
    """Queue-depth load shedding at the front door.

    A request arriving while ``outstanding`` (admitted but unfinished
    requests) is at or above the watermark is rejected immediately —
    the serverless gateway returning 429 rather than letting an
    overload collapse tail latency for everyone already admitted.
    Retries of admitted requests are *not* re-subjected to admission.
    """

    #: shed arrivals once this many requests are in flight
    max_outstanding: int = 256

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")

    def admits(self, outstanding: int) -> bool:
        return outstanding < self.max_outstanding
