"""The fault governor: injection arming + failure handling at runtime.

One :class:`FaultRuntime` is shared by every host in a run.  The FaaS
layer consults it at each request boundary:

* ``admit``      — at the front door (load shedding);
* ``begin``      — when an attempt enters the pipeline;
* ``coldstart_faulted`` / ``fail_attempt`` — when provisioning fails
  before a process exists;
* ``arm``        — right after ``machine.spawn`` (crash + deadline
  timers for the new process);
* ``on_task_end`` — from the platform's finish callback, for *every*
  exit; returns the backoff delay when the attempt should be retried.

All decisions delegate to the frozen :class:`~repro.faults.plan.FaultPlan`
and :class:`~repro.faults.policy.RetryPolicy`, so the governor holds
only bookkeeping state (attempt counts, terminal outcomes, armed
timers) — never entropy.  When a run has no fault configuration the
platform simply does not construct a governor, keeping the nominal hot
path bit-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.faults.plan import NULL_PLAN, FaultPlan
from repro.faults.policy import AdmissionControl, RetryPolicy
from repro.sim.engine import EventHandle, Simulator
from repro.sim.task import Task, TaskState
from repro.trace import events as tev
from repro.workload.spec import RequestSpec

#: terminal request states beyond the default "ok"
STATUS_OK = "ok"
STATUS_FAILED = "failed"      # attempts exhausted (crash / provisioning)
STATUS_TIMEOUT = "timeout"    # request deadline expired
STATUS_SHED = "shed"          # admission control rejected it
STATUS_HOST_LOST = "host_lost"  # died with a failed host, no failover left


@dataclass
class FaultStats:
    """Aggregate injection / handling counters for one run."""

    crashes: int = 0             # sandbox kills injected
    coldstart_failures: int = 0  # provisioning failures injected
    host_kills: int = 0          # tasks lost to host failures
    timeouts: int = 0            # deadline expiries
    retries: int = 0             # backoffs scheduled
    shed: int = 0                # requests rejected at admission
    abandoned: int = 0           # requests that exhausted retries
    host_lost: int = 0           # requests lost with a failed host
    failovers: int = 0           # stranded attempts re-dispatched
    hedges: int = 0              # backup attempts launched
    hedge_wins: int = 0          # hedge races the backup won
    retry_throttled: int = 0     # retries denied by the global budget

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _Outcome:
    status: str
    end_ts: int


class FaultRuntime:
    """Shared per-run fault governor (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionControl] = None,
        timeout: Optional[int] = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (us)")
        self.sim = sim
        self.plan = plan if plan is not None else NULL_PLAN
        self.retry = retry
        self.admission = admission
        self.timeout = timeout
        self.stats = FaultStats()
        self._trace = sim.trace
        self._trace_on = self._trace.enabled
        #: cluster hook: re-dispatch a retry through placement instead
        #: of pinning it to the host that just failed it
        self.retry_router: Optional[Callable[[RequestSpec], None]] = None
        #: cluster hook: the ResilienceRuntime coordinator (failover /
        #: hedging / retry budget); None for single-host runs
        self.resilience = None
        self._attempts: Dict[int, int] = {}
        self._terminal: Dict[int, _Outcome] = {}
        self._specs: Dict[int, RequestSpec] = {}
        # armed timers are keyed by *task id*, not request id: under
        # hedging one request can have two live attempts, each with its
        # own crash/deadline timers
        self._armed: Dict[int, List[EventHandle]] = {}

    # ------------------------------------------------------------------
    # request boundaries
    # ------------------------------------------------------------------
    def admit(self, spec: RequestSpec, outstanding: int) -> bool:
        """Front-door admission; records a shed outcome on rejection."""
        if self.admission is None or self.admission.admits(outstanding):
            return True
        self.stats.shed += 1
        self._specs[spec.req_id] = spec
        self._terminal[spec.req_id] = _Outcome(STATUS_SHED, self.sim.now)
        if self.resilience is not None:
            self.resilience.settle(spec.req_id)
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.SHED_REQUEST,
                             args=(spec.req_id, outstanding))
        return False

    def settled(self, req_id: int) -> bool:
        """Has the request already been answered (hedge win) or gone
        terminal?  Pipeline stages drop settled work on the floor."""
        res = self.resilience
        return res is not None and res.is_settled(req_id)

    def attempts_of(self, req_id: int) -> int:
        """Attempts begun so far for a request (0 before ingress)."""
        return self._attempts.get(req_id, 0)

    def deadline_of(self, spec: RequestSpec) -> Optional[int]:
        """Absolute deadline (us), or None when timeouts are off."""
        if self.timeout is None:
            return None
        return spec.arrival + self.timeout

    def expired(self, spec: RequestSpec) -> bool:
        """Is the request past its deadline at this boundary?"""
        deadline = self.deadline_of(spec)
        return deadline is not None and self.sim.now >= deadline

    def mark_timeout(self, spec: RequestSpec, tid: int = -1) -> None:
        """Terminal: the deadline passed (between or during attempts)."""
        self.stats.timeouts += 1
        self._specs[spec.req_id] = spec
        self._terminal[spec.req_id] = _Outcome(STATUS_TIMEOUT, self.sim.now)
        if self.resilience is not None:
            self.resilience.settle(spec.req_id)
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.FAULT_TIMEOUT, tid,
                             args=(self.deadline_of(spec),))

    def begin(self, spec: RequestSpec) -> int:
        """An attempt enters the pipeline; returns its 1-based number."""
        attempt = self._attempts.get(spec.req_id, 0) + 1
        self._attempts[spec.req_id] = attempt
        self._specs[spec.req_id] = spec
        if self.resilience is not None:
            self.resilience.note_begin(spec.req_id)
        return attempt

    # ------------------------------------------------------------------
    # injection decisions
    # ------------------------------------------------------------------
    def coldstart_faulted(self, spec: RequestSpec) -> bool:
        """Does provisioning fail for the current attempt?"""
        attempt = self._attempts[spec.req_id]
        if not self.plan.coldstart_fails(spec.req_id, attempt):
            return False
        self.stats.coldstart_failures += 1
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.FAULT_COLDSTART,
                             args=(spec.req_id, attempt))
        return True

    def arm(self, spec: RequestSpec, task: Task, machine) -> None:
        """Arm crash and deadline timers for a freshly spawned process."""
        req_id = spec.req_id
        attempt = self._attempts[req_id]
        handles: List[EventHandle] = []
        frac = self.plan.crashes(req_id, attempt)
        if frac is not None:
            delay = max(1, int(frac * task.ideal_duration))
            handles.append(self.sim.schedule(
                delay, self._crash, task, machine, attempt))
        deadline = self.deadline_of(spec)
        if deadline is not None:  # boundary checks guarantee now < deadline
            handles.append(self.sim.schedule_at(
                deadline, self._deadline, spec, task, machine))
        if handles:
            self._armed[task.tid] = handles

    def note_spawn(self, spec: RequestSpec, task: Task, host: int) -> None:
        """A process exists for the current attempt on ``host``."""
        if self.resilience is not None:
            self.resilience.note_spawn(spec, task, host)

    def _crash(self, task: Task, machine, attempt: int) -> None:
        if task.state is TaskState.FINISHED:
            return  # raced with a real completion
        self.stats.crashes += 1
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.FAULT_CRASH, task.tid,
                             args=(attempt,))
        machine.kill(task, "crash")

    def _deadline(self, spec: RequestSpec, task: Task, machine) -> None:
        if task.state is TaskState.FINISHED:
            return
        # under hedging two attempts share one deadline; count the
        # request's expiry once even though both tasks get killed
        if spec.req_id not in self._terminal:
            self.stats.timeouts += 1
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.FAULT_TIMEOUT, task.tid,
                                 args=(self.deadline_of(spec),))
        machine.kill(task, "timeout")

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def fail_attempt(self, spec: RequestSpec, reason: str = "crash",
                     host: int = -1) -> Optional[int]:
        """The current attempt failed retryably (crash, host loss,
        provisioning).  Returns the backoff delay (us) when a retry
        should be scheduled, or None when the failure is terminal
        (outcome recorded) or a resilience mechanism absorbed it."""
        req_id = spec.req_id
        attempt = self._attempts[req_id]
        res = self.resilience
        if res is not None:
            if res.absorb_death(req_id):
                return None  # hedge sibling still racing: no retry
            if reason == "host" and res.try_strand(spec, host):
                return None  # parked for failover at the next poll
        if self.retry is not None and self.retry.allows(attempt):
            if res is None or res.allow_retry(req_id, attempt):
                delay = self.retry.backoff(req_id, attempt)
                deadline = self.deadline_of(spec)
                if deadline is None or self.sim.now + delay < deadline:
                    self.stats.retries += 1
                    if res is not None:
                        res.note_retry_scheduled(req_id)
                    if self._trace_on:
                        self._trace.emit(self.sim.now, tev.RETRY_BACKOFF,
                                         args=(req_id, attempt, delay))
                    return delay
                self.mark_timeout(spec)  # the backoff would overrun it
                return None
            self.stats.retry_throttled += 1
            res.on_throttled()
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.RETRY_THROTTLED,
                                 args=(req_id, attempt))
        if reason == "host":
            self.stats.host_lost += 1
            status = STATUS_HOST_LOST
            if res is not None:
                res.on_host_lost()
        else:
            self.stats.abandoned += 1
            status = STATUS_FAILED
        self._terminal[req_id] = _Outcome(status, self.sim.now)
        if res is not None:
            res.settle(req_id)
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.RETRY_EXHAUSTED,
                             args=(req_id, attempt))
        return None

    def on_task_end(self, spec: RequestSpec, task: Task) -> Optional[int]:
        """Observe an exit (normal or killed).  Returns a retry delay
        when the platform should re-ingress the request, else None."""
        for handle in self._armed.pop(task.tid, ()):
            handle.cancel()
        res = self.resilience
        host = res.note_task_end(spec, task) if res is not None else -1
        if not task.killed:
            if res is not None:
                res.on_finish(spec, task)
            return None
        if task.kill_reason == "hedge":
            return None  # the sibling already answered this request
        if task.kill_reason == "timeout":
            self._terminal[spec.req_id] = _Outcome(STATUS_TIMEOUT, self.sim.now)
            if res is not None:
                res.settle(spec.req_id)
            return None
        if task.kill_reason == "host":
            self.stats.host_kills += 1
            return self.fail_attempt(spec, reason="host", host=host)
        return self.fail_attempt(spec)

    # ------------------------------------------------------------------
    # host lifecycle (emitted by the cluster)
    # ------------------------------------------------------------------
    def note_host_down(self, host: int) -> None:
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.FAULT_HOST_DOWN, core=host)

    def note_host_up(self, host: int) -> None:
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.FAULT_HOST_UP, core=host)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def status_of(self, req_id: int) -> Tuple[str, int]:
        """(terminal status, attempts started) for a request."""
        attempts = self._attempts.get(req_id, 0)
        outcome = self._terminal.get(req_id)
        if outcome is None:
            return STATUS_OK, max(1, attempts)
        return outcome.status, attempts

    def orphans(
        self, exclude: Set[int]
    ) -> Iterable[Tuple[RequestSpec, str, int, int]]:
        """Terminally-failed requests that never produced a task pair
        (shed at the door, or every attempt died before spawn), as
        ``(spec, status, attempts, end_ts)`` sorted by request id."""
        for req_id in sorted(self._terminal):
            if req_id in exclude:
                continue
            outcome = self._terminal[req_id]
            yield (self._specs[req_id], outcome.status,
                   self._attempts.get(req_id, 0), outcome.end_ts)
