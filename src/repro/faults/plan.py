"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the *complete* description of what goes wrong
in a run: which hosts straggle or fail outright, and with what
probability sandboxes crash mid-execution or container provisioning
fails.  Like a :class:`~repro.workload.spec.Workload`, the plan is
frozen data — every stochastic decision is a pure function of
``(plan.seed, req_id, attempt)`` via a hashed per-decision generator,
**not** a shared sequential stream.  That discipline is what makes
fault injection composable with the paired-comparison methodology: the
same plan crashes the same requests at the same points under CFS and
under SFS, regardless of how event interleavings differ between the
two runs.

Plans round-trip through JSON (``save`` / ``load``) so an experiment's
failure scenario travels with its manifest.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

# per-decision hash salts: each (req_id, attempt) gets independent
# streams for independent fault classes
_SALT_CRASH = 0xC1
_SALT_COLDSTART = 0xC2
# seeded fail/recover window schedules (flaky_host_windows)
_SALT_FLAP = 0xD0


@dataclass(frozen=True)
class FaultPlan:
    """What goes wrong, when, deterministically.

    ``stragglers`` maps host indices to a relative speed in ``(0, 1)``
    (see :class:`repro.machine.base.MachineParams.speed`).
    ``host_failures`` are ``(host, down_at, up_at)`` windows in absolute
    virtual microseconds; in-flight work on the host is killed at
    ``down_at`` and the host rejoins placement at ``up_at``.

    ``fault_domains`` groups host indices into racks/zones (each host
    belongs to at most one domain); ``domain_failures`` are
    ``(domain_index, down_at, up_at)`` windows that take the whole
    domain down at once — the correlated-failure mode a per-host window
    cannot express.  :meth:`expanded_host_failures` flattens both forms
    into one per-host window list for the cluster runtime.
    """

    seed: int = 0
    #: per-attempt probability a sandbox crashes partway through
    crash_prob: float = 0.0
    #: per-attempt probability container provisioning fails (cold path)
    coldstart_fail_prob: float = 0.0
    #: ((host_index, speed), ...) — degraded hosts
    stragglers: Tuple[Tuple[int, float], ...] = ()
    #: ((host_index, down_at_us, up_at_us), ...) — fail/recover windows
    host_failures: Tuple[Tuple[int, int, int], ...] = ()
    #: ((host_index, ...), ...) — rack/zone groupings for correlated
    #: failures; a host may appear in at most one domain
    fault_domains: Tuple[Tuple[int, ...], ...] = ()
    #: ((domain_index, down_at_us, up_at_us), ...) — whole-domain outages
    domain_failures: Tuple[Tuple[int, int, int], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, numbers.Integral):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        for name in ("crash_prob", "coldstart_fail_prob"):
            p = getattr(self, name)
            if isinstance(p, bool) or not isinstance(p, numbers.Real):
                raise ValueError(f"{name} must be a number in [0, 1], got {p!r}")
            # NaN fails both comparisons, so this also rejects NaN
            if not (0.0 <= float(p) <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        # normalise nested JSON lists into hashable tuples
        try:
            object.__setattr__(
                self, "stragglers",
                tuple((int(h), float(s)) for h, s in self.stragglers),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"stragglers must be (host_index, speed) pairs, got "
                f"{self.stragglers!r}: {exc}"
            ) from None
        try:
            object.__setattr__(
                self, "host_failures",
                tuple((int(h), int(d), int(u)) for h, d, u in self.host_failures),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"host_failures must be (host_index, down_at_us, up_at_us) "
                f"triples, got {self.host_failures!r}: {exc}"
            ) from None
        straggling = set()
        for host, speed in self.stragglers:
            if host < 0:
                raise ValueError("straggler host index must be >= 0")
            # the explicit != ordering also rejects NaN speeds
            if not (0.0 < speed <= 1.0) or speed != speed:
                raise ValueError(f"straggler speed {speed} not in (0, 1]")
            if host in straggling:
                raise ValueError(
                    f"host {host} appears twice in stragglers; one entry "
                    f"per host (straggler_speed would silently use the first)"
                )
            straggling.add(host)
        try:
            object.__setattr__(
                self, "fault_domains",
                tuple(tuple(int(h) for h in dom) for dom in self.fault_domains),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"fault_domains must be tuples of host indices, got "
                f"{self.fault_domains!r}: {exc}"
            ) from None
        try:
            object.__setattr__(
                self, "domain_failures",
                tuple((int(d), int(a), int(b)) for d, a, b in self.domain_failures),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"domain_failures must be (domain_index, down_at_us, "
                f"up_at_us) triples, got {self.domain_failures!r}: {exc}"
            ) from None
        grouped = set()
        for di, dom in enumerate(self.fault_domains):
            if not dom:
                raise ValueError(f"fault domain {di} is empty")
            for host in dom:
                if host < 0:
                    raise ValueError("domain host index must be >= 0")
                if host in grouped:
                    raise ValueError(
                        f"host {host} appears in more than one fault "
                        f"domain; a host belongs to at most one rack/zone"
                    )
                grouped.add(host)
        for domain, down_at, up_at in self.domain_failures:
            if not (0 <= domain < len(self.fault_domains)):
                raise ValueError(
                    f"domain failure targets domain {domain} but the plan "
                    f"declares {len(self.fault_domains)} fault domains"
                )
            if not (0 <= down_at < up_at):
                raise ValueError("domain failure needs 0 <= down_at < up_at")
        # validate the *expanded* per-host windows so a direct window and
        # a domain outage cannot overlap on the same host either
        windows: dict = {}
        for host, down_at, up_at in self.expanded_host_failures():
            if host < 0:
                raise ValueError("failed host index must be >= 0")
            if not (0 <= down_at < up_at):
                raise ValueError("host failure needs 0 <= down_at < up_at")
            for other_down, other_up in windows.get(host, ()):
                if down_at < other_up and other_down < up_at:
                    raise ValueError(
                        f"host {host} has overlapping failure windows "
                        f"[{other_down}, {other_up}) and [{down_at}, "
                        f"{up_at}); a host cannot fail while already down"
                    )
            windows.setdefault(host, []).append((down_at, up_at))
        contradicted = straggling & set(windows)
        if contradicted:
            raise ValueError(
                f"host(s) {sorted(contradicted)} appear in both stragglers "
                f"and host_failures; a degraded-but-alive host and a dead "
                f"host are contradictory fault models — pick one per host"
            )

    # ------------------------------------------------------------------
    # stochastic decisions (hashed, interleaving-independent)
    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.crash_prob == 0.0
            and self.coldstart_fail_prob == 0.0
            and not self.stragglers
            and not self.host_failures
            and not self.domain_failures
        )

    def expanded_host_failures(self) -> Tuple[Tuple[int, int, int], ...]:
        """Every per-host fail/recover window, with domain outages
        flattened to one window per member host.  Order is
        deterministic: direct windows first, then domain windows in
        (failure, member) declaration order."""
        out = list(self.host_failures)
        for domain, down_at, up_at in self.domain_failures:
            for host in self.fault_domains[domain]:
                out.append((host, down_at, up_at))
        return tuple(out)

    def crashes(self, req_id: int, attempt: int) -> Optional[float]:
        """Crash point for this attempt as a fraction of its ideal
        duration in ``(0, 1)``, or None if the attempt survives.

        Pure function of ``(seed, req_id, attempt)``: no generator is
        shared across calls, so the decision is identical no matter how
        the surrounding simulation interleaves.
        """
        if self.crash_prob == 0.0:
            return None
        rng = np.random.default_rng((self.seed, req_id, attempt, _SALT_CRASH))
        if rng.random() >= self.crash_prob:
            return None
        # strictly interior crash point: the sandbox did some work
        return 0.05 + 0.9 * rng.random()

    def coldstart_fails(self, req_id: int, attempt: int) -> bool:
        """Does container provisioning fail for this attempt?"""
        if self.coldstart_fail_prob == 0.0:
            return False
        rng = np.random.default_rng((self.seed, req_id, attempt, _SALT_COLDSTART))
        return bool(rng.random() < self.coldstart_fail_prob)

    def straggler_speed(self, host: int) -> float:
        """Relative speed of ``host`` (1.0 when not a straggler)."""
        for idx, speed in self.stragglers:
            if idx == host:
                return speed
        return 1.0

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(
                f"FaultPlan JSON must be an object, got {type(data).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return cls(**data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(json.loads(Path(path).read_text()))


#: the do-nothing plan (shared, immutable)
NULL_PLAN = FaultPlan()


def flaky_host_windows(
    seed: int,
    host: int,
    horizon_us: int,
    n_windows: int = 3,
    down_us: int = 500_000,
) -> Tuple[Tuple[int, int, int], ...]:
    """Seeded deterministic fail/recover schedule for one flapping host.

    Partitions ``[0, horizon_us)`` into ``n_windows`` equal slots and
    places one ``down_us``-long outage at a hashed offset inside each,
    so the windows are non-overlapping by construction and the schedule
    is a pure function of ``(seed, host)`` — the same host flaps at the
    same instants under CFS and under SFS.
    """
    if horizon_us <= 0 or n_windows <= 0:
        raise ValueError("flaky_host_windows needs a positive horizon "
                         "and window count")
    slot = horizon_us // n_windows
    down = max(1, min(down_us, slot - 1)) if slot > 1 else 1
    rng = np.random.default_rng((seed, host, _SALT_FLAP))
    out = []
    for i in range(n_windows):
        start = i * slot + int(rng.integers(0, max(1, slot - down)))
        out.append((host, start, start + down))
    return tuple(out)
