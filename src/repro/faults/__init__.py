"""Deterministic fault injection and failure handling (``repro.faults``).

Three layers, mirroring how real serverless stacks separate concerns:

* :mod:`repro.faults.plan`    — *what goes wrong*: a frozen, seeded
  :class:`FaultPlan` (sandbox crashes, cold-start failures, straggler
  hosts, host fail/recover windows);
* :mod:`repro.faults.policy`  — *what the platform does about it*:
  :class:`RetryPolicy` (capped exponential backoff, decorrelated
  jitter) and :class:`AdmissionControl` (queue-depth load shedding);
* :mod:`repro.faults.runtime` — *the wiring*: a per-run
  :class:`FaultRuntime` governor the FaaS layer consults at request
  boundaries and which arms kill timers against the machine.

Every stochastic decision is a pure function of
``(seed, req_id, attempt)``, so a fault scenario replays bit-for-bit
across schedulers and engines — the paired-comparison discipline the
reproduction's figures rely on, extended to failure studies.
"""

from repro.faults.plan import NULL_PLAN, FaultPlan, flaky_host_windows
from repro.faults.policy import AdmissionControl, RetryPolicy
from repro.faults.runtime import (
    STATUS_FAILED,
    STATUS_HOST_LOST,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    FaultRuntime,
    FaultStats,
)

__all__ = [
    "FaultPlan",
    "NULL_PLAN",
    "flaky_host_windows",
    "RetryPolicy",
    "AdmissionControl",
    "FaultRuntime",
    "FaultStats",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_SHED",
    "STATUS_HOST_LOST",
]
