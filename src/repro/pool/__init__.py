"""``repro.pool`` — fault-tolerant parallel execution supervisor.

Shards independent work items (sweep points, chaos grid cells, fuzz
case indices) across worker processes with heartbeats, portable
deadlines, jittered retries, quarantine instead of abort, and a
deterministic index-ordered merge — see
:mod:`repro.pool.supervisor` for the full failure model and
``docs/robustness.md`` for the prose version.
"""

from repro.pool.supervisor import (
    SCHEMA,
    ItemOutcome,
    PoolConfig,
    PoolError,
    PoolReport,
    WorkItem,
    load_quarantine,
    replay_quarantine,
    resolve_task,
    run_pool,
    task_name,
    write_quarantine,
)

__all__ = [
    "SCHEMA",
    "ItemOutcome",
    "PoolConfig",
    "PoolError",
    "PoolReport",
    "WorkItem",
    "load_quarantine",
    "replay_quarantine",
    "resolve_task",
    "run_pool",
    "task_name",
    "write_quarantine",
]
