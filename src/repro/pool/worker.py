"""The child-process side of :mod:`repro.pool`.

One worker process runs a tiny loop: receive an item from its private
task queue, execute the (picklable, module-level) work function under
the portable :func:`repro.experiments.artifacts.deadline` — **never**
``SIGALRM``, which children cannot rely on — and report the outcome on
the shared result queue.  A background heartbeat thread pings the
supervisor every ``heartbeat_interval`` seconds whether or not an item
is running, so a wedged item (stuck in C code, swapping, livelocked)
is distinguishable from a merely slow one: the slow item keeps
heartbeating, the wedged worker goes silent and gets killed.

The same thread watches the parent pid: if the supervisor is SIGKILLed
mid-campaign the orphaned workers exit instead of spinning on a queue
nobody drains — ``--resume`` picks the campaign back up from the
artifact store, not from orphan output.

Message protocol (all tuples, first element is the kind):

* task queue (supervisor -> worker):
  ``("run", index, item_id, payload, kill_self)`` or ``None`` (drain
  and exit).  ``kill_self`` is the chaos-monkey test hook: the worker
  SIGKILLs itself *before* touching the item, exercising the real
  worker-death path deterministically.
* result queue (worker -> supervisor):
  ``("hb", worker_id, index_or_None, monotonic_ts)``,
  ``("ok", worker_id, index, result)``,
  ``("err", worker_id, index, kind, message)`` with ``kind`` in
  ``("timeout", "exception")``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Any, Callable, Optional

from repro.experiments.artifacts import ExperimentTimeout, deadline


def worker_main(
    worker_id: int,
    fn: Callable[[Any], Any],
    task_q,
    result_q,
    heartbeat_interval: float,
    item_seconds: Optional[float],
    parent_pid: int,
) -> None:
    """Process entry point (module-level so ``spawn`` can pickle it)."""
    current = {"index": None}
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            if os.getppid() != parent_pid:  # supervisor died; don't orphan
                os._exit(1)
            try:
                result_q.put(("hb", worker_id, current["index"],
                              time.monotonic()))
            except Exception:  # queue torn down under us
                os._exit(1)

    threading.Thread(target=_beat, daemon=True).start()

    while True:
        msg = task_q.get()
        if msg is None:
            break
        _kind, index, _item_id, payload, kill_self = msg
        if kill_self:
            # chaos-monkey hook: die exactly like an OOM-killed worker,
            # mid-item, without having produced anything
            os.kill(os.getpid(), signal.SIGKILL)
        current["index"] = index
        try:
            with deadline(item_seconds):
                result = fn(payload)
            result_q.put(("ok", worker_id, index, result))
        except ExperimentTimeout as exc:
            result_q.put(("err", worker_id, index, "timeout",
                          str(exc) or f"exceeded {item_seconds}s"))
        except BaseException as exc:  # noqa: BLE001 - worker must survive
            result_q.put(("err", worker_id, index, "exception",
                          f"{type(exc).__name__}: {exc}"))
        finally:
            current["index"] = None
    stop.set()
