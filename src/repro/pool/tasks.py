"""Module-level work functions for :func:`repro.pool.run_pool`.

Pool work functions must be importable by reference — the ``spawn``
start method pickles them by qualified name, and quarantine replay
resolves them back from the ``module:qualname`` recorded in the
report.  This module collects the functions the CLI dispatches, plus a
deterministic demo task the tests and the SIGKILL-resume driver use.

All payloads here are JSON-safe dicts so every quarantined item is
replayable as saved.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple


def render_experiment(payload: Dict[str, Any]) -> str:
    """Run one registered experiment at scaled size and render it.

    Payload: ``{"exp_id": str, "seed": int}`` — the exact configuration
    key the serial ``repro experiment --out`` sweep manifests use, so a
    pool-produced artifact resumes a serial sweep and vice versa.
    """
    from repro.experiments.registry import REGISTRY

    entry = REGISTRY[payload["exp_id"]]
    return entry.render(entry.run_scaled(seed=payload["seed"]))


def experiment_shard(payload: Dict[str, Any]) -> str:
    """Run one shard of a shardable experiment (e.g. a chaos cell).

    Payload: ``{"exp_id": str, "shard": <module-specific dict>}``; the
    experiment module's ``run_shard`` owns the shard payload schema.
    """
    from repro.experiments.registry import REGISTRY

    return REGISTRY[payload["exp_id"]].module.run_shard(payload["shard"])


def experiment_item(payload: Dict[str, Any]) -> str:
    """Dispatcher for mixed experiment pools: a payload with a
    ``shard`` key is one shard of a shardable experiment, anything
    else is a whole experiment rendered at scaled size."""
    if "shard" in payload:
        return experiment_shard(payload)
    return render_experiment(payload)


def fuzz_case(payload: Dict[str, Any]) -> str:
    """Run one fuzz campaign case (see ``repro.fuzz.campaign``)."""
    from repro.fuzz.campaign import run_case_shard

    return run_case_shard(payload)


def demo_item(payload: Dict[str, Any]) -> str:
    """Deterministic toy task for tests, docs, and smoke drivers.

    Payload keys (all optional but ``name``):

    * ``name`` — identifies the item; the output derives from it alone;
    * ``sleep_s`` — busy-wait this long first (SIGKILL windows);
    * ``fail`` — raise ``RuntimeError`` unconditionally (poison);
    * ``die`` — SIGKILL the executing process (parallel pools only:
      models an OOM-killed worker on *every* attempt);
    * ``hang_s`` — busy-wait without producing (deadline exercise).
    """
    import time

    name = payload["name"]
    if payload.get("fail"):
        raise RuntimeError(f"poisoned item {name}")
    if payload.get("die"):
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    end = time.monotonic() + float(payload.get("sleep_s", 0.0)
                                   or payload.get("hang_s", 0.0))
    while time.monotonic() < end:  # busy loop: interruptible by deadline
        pass
    digest = hashlib.sha256(name.encode()).hexdigest()[:16]
    return f"{name}: {digest}\n"


def shardable_items(exp_id: str, config, seed: int,
                    ) -> List[Tuple[str, Dict[str, Any]]]:
    """Pool items for one shardable experiment module.

    Item ids are ``<exp_id>.<shard_id>`` (dots, not slashes — they name
    flat files in the artifact store).
    """
    from repro.experiments.registry import REGISTRY

    module = REGISTRY[exp_id].module
    return [
        (f"{exp_id}.{shard_id}", {"exp_id": exp_id, "shard": shard})
        for shard_id, shard in module.shards(config, seed)
    ]
