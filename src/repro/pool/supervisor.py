"""Fault-tolerant parallel execution supervisor (the ``repro.pool`` core).

Shards independent work items — sweep points, chaos grid cells, fuzz
case indices — across N worker processes without giving up any of the
robustness substrate built in PRs 1-6:

* **heartbeats** — every worker pings the supervisor continuously; a
  worker that goes silent past ``heartbeat_grace`` is presumed wedged
  (C-level hang, swap death) and killed.  A *slow* item keeps beating
  and is left alone.
* **portable deadlines** — each item runs under the thread-timer
  :func:`repro.experiments.artifacts.deadline` inside the worker (no
  ``SIGALRM`` in children), with an optional supervisor-side hard kill
  (``kill_seconds``) as the backstop the in-process timer cannot give.
* **bounded retries with decorrelated jitter** — a failed item is
  retried up to ``max_retries`` times, backing off via the exact
  :class:`repro.faults.policy.RetryPolicy` recurrence the simulated
  platform uses: the delay is a pure function of ``(seed, index,
  attempt)``, so two supervisors retrying the same item back off
  identically.
* **quarantine, not abort** — an item that keeps failing is set aside
  into a replayable JSON report (schema ``repro.pool/1``) and the
  campaign keeps going; ``repro pool replay`` re-runs the poisoned
  items serially under a debugger-friendly single process.
* **graceful degradation** — a worker that dies mid-item (OOM kill,
  segfault, chaos monkey) is respawned and its item reassigned;
  ``max_respawns`` bounds the pathological case where workers cannot
  even start.
* **deterministic merge** — results are reduced in *item-index* order
  no matter which worker finished first, so the merged output of
  ``--workers N`` is byte-identical to the serial run.  With an
  :class:`repro.experiments.artifacts.ArtifactStore` attached, every
  completed item is persisted incrementally (atomic write + sha256
  manifest) and ``resume=True`` skips verified items — a SIGKILLed
  campaign resumed later converges to the same merged manifest.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.artifacts import (
    ArtifactStore,
    ExperimentTimeout,
    atomic_write_text,
    watchdog,
)
from repro.faults.policy import RetryPolicy
from repro.obs.profiler import perf_counter

#: quarantine report schema identifier (bump on incompatible change).
SCHEMA = "repro.pool/1"

#: how long the supervisor blocks on the result queue per pass (s).
_POLL_S = 0.05


class PoolError(RuntimeError):
    """The pool cannot make progress (bad items, worker spawn storm)."""


@dataclass(frozen=True)
class WorkItem:
    """One shard of a campaign: an id, its position, and its payload."""

    index: int
    item_id: str
    #: picklable argument handed to the work function; JSON-safe when
    #: the item should be replayable from a quarantine report
    payload: Any


@dataclass(frozen=True)
class PoolConfig:
    """Supervision knobs (all per-campaign, all validated)."""

    #: worker processes; 0 = inline serial execution in this process
    #: (same retry/quarantine semantics, no multiprocessing)
    workers: int = 1
    #: re-executions allowed after an item's first failure
    max_retries: int = 2
    #: per-item wall-clock bound enforced *inside* the worker via the
    #: portable thread-timer deadline (None = unbounded)
    item_seconds: Optional[float] = None
    #: supervisor-side hard kill for items the in-worker timer cannot
    #: interrupt; None derives ``2 * item_seconds + 5`` when
    #: ``item_seconds`` is set, else disables the hard kill
    kill_seconds: Optional[float] = None
    #: worker heartbeat period (s)
    heartbeat_interval: float = 0.25
    #: silence beyond this many seconds = wedged worker, kill it
    heartbeat_grace: float = 15.0
    #: retry backoff recurrence (delays are ``backoff.backoff(index,
    #: attempt)`` microseconds of wall time — decorrelated jitter)
    backoff: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=64, base_backoff=20_000, max_backoff=2_000_000))
    #: multiprocessing start method; None = "fork" where available
    #: (cheap, Linux), else "spawn" (portable)
    mp_start: Optional[str] = None
    #: total worker respawns tolerated before aborting the campaign
    max_respawns: int = 16
    #: chaos-monkey test hook: SIGKILL the worker the first time this
    #: item id is dispatched (exercises death + reassignment for real)
    chaos_kill: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.item_seconds is not None and self.item_seconds <= 0:
            raise ValueError("item_seconds must be positive")
        if self.kill_seconds is not None and self.kill_seconds <= 0:
            raise ValueError("kill_seconds must be positive")
        if self.heartbeat_interval <= 0 or self.heartbeat_grace <= 0:
            raise ValueError("heartbeat settings must be positive")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")

    @property
    def hard_kill_seconds(self) -> Optional[float]:
        if self.kill_seconds is not None:
            return self.kill_seconds
        if self.item_seconds is not None:
            return 2.0 * self.item_seconds + 5.0
        return None


@dataclass
class ItemOutcome:
    """What ultimately happened to one work item."""

    item_id: str
    index: int
    #: "ok" | "skipped" (resume hit) | "quarantined"
    status: str
    #: executions started (0 for a resume skip)
    attempts: int = 0
    #: failure messages in attempt order (kind: message)
    errors: List[str] = field(default_factory=list)


@dataclass
class PoolReport:
    """Index-ordered results plus the supervision ledger."""

    #: one entry per item, in item-index order; None for quarantined
    results: List[Any]
    #: one entry per item, in item-index order
    outcomes: List[ItemOutcome]
    n_ok: int = 0
    n_skipped: int = 0
    n_retried: int = 0
    quarantine_path: Optional[str] = None
    merged_id: Optional[str] = None

    @property
    def quarantined(self) -> List[ItemOutcome]:
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def complete(self) -> bool:
        return not self.quarantined


def task_name(fn: Callable[[Any], Any]) -> str:
    """Importable ``module:qualname`` spelling of a work function."""
    return f"{fn.__module__}:{fn.__qualname__}"


def resolve_task(name: str) -> Callable[[Any], Any]:
    """Inverse of :func:`task_name` (used by quarantine replay)."""
    import importlib

    module_name, _, qualname = name.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed task name {name!r} "
                         "(expected module:qualname)")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"task {name!r} resolved to non-callable {obj!r}")
    return obj


def _normalise(items: Sequence[Tuple[str, Any]]) -> List[WorkItem]:
    out = [WorkItem(index=i, item_id=item_id, payload=payload)
           for i, (item_id, payload) in enumerate(items)]
    seen: Dict[str, int] = {}
    for it in out:
        if it.item_id in seen:
            raise PoolError(f"duplicate item id {it.item_id!r} "
                            f"(indices {seen[it.item_id]} and {it.index})")
        seen[it.item_id] = it.index
    return out


def _json_safe(payload: Any) -> Tuple[Any, bool]:
    """JSON form of a payload, and whether it round-trips (replayable)."""
    try:
        json.dumps(payload)
        return payload, True
    except (TypeError, ValueError):
        return {"__repr__": repr(payload)}, False


def write_quarantine(
    path: str,
    task: str,
    outcomes: Sequence[ItemOutcome],
    payload_of: Dict[int, Any],
) -> None:
    """Persist the poisoned items as a replayable ``repro.pool/1`` doc."""
    items = []
    for o in sorted(outcomes, key=lambda o: o.index):
        payload, replayable = _json_safe(payload_of[o.index])
        items.append({
            "item_id": o.item_id,
            "index": o.index,
            "attempts": o.attempts,
            "errors": list(o.errors),
            "payload": payload,
            "replayable": replayable,
        })
    doc = {"schema": SCHEMA, "task": task, "items": items}
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_quarantine(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: expected schema {SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("items"), list):
        raise ValueError(f"{path}: quarantine report has no items list")
    return doc


def replay_quarantine(
    path: str,
    fn: Optional[Callable[[Any], Any]] = None,
    only: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Tuple[str, bool, str]]:
    """Re-run quarantined items serially; returns (id, ok, detail).

    ``fn`` overrides the task recorded in the report (tests); ``only``
    restricts the replay to one item id.  Failures re-raise nothing —
    the point is to reproduce the recorded error deterministically and
    report it, single-process, where a debugger can reach it.
    """
    doc = load_quarantine(path)
    work = fn if fn is not None else resolve_task(doc["task"])
    say = progress or (lambda _m: None)
    out: List[Tuple[str, bool, str]] = []
    for item in doc["items"]:
        if only is not None and item["item_id"] != only:
            continue
        if not item.get("replayable", True):
            out.append((item["item_id"], False,
                        "payload not JSON-replayable"))
            continue
        say(f"replaying {item['item_id']}")
        try:
            work(item["payload"])
            out.append((item["item_id"], True, "clean"))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            out.append((item["item_id"], False,
                        f"{type(exc).__name__}: {exc}"))
    return out


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------
class _Slot:
    """One worker slot: process + private task queue + liveness state."""

    __slots__ = ("proc", "task_q", "assigned", "started", "last_seen")

    def __init__(self) -> None:
        self.proc = None
        self.task_q = None
        self.assigned: Optional[int] = None  # item index
        self.started: float = 0.0
        self.last_seen: float = 0.0


class _Run:
    """Mutable campaign state shared by the serial and parallel paths."""

    def __init__(self, items: List[WorkItem], cfg: PoolConfig,
                 metrics: Optional[object],
                 progress: Optional[Callable[[str], None]]):
        self.items = items
        self.cfg = cfg
        self.say = progress or (lambda _m: None)
        self.results: List[Any] = [None] * len(items)
        self.outcomes: List[Optional[ItemOutcome]] = [None] * len(items)
        self.attempts = [0] * len(items)
        self.errors: List[List[str]] = [[] for _ in items]
        self.n_retried = 0
        self.chaos_armed = cfg.chaos_kill
        self.c_ok = self.c_retried = self.c_quarantined = None
        self.g_hb_age = None
        self.profiler = None
        if metrics is not None:
            self.c_ok = metrics.counter(
                "repro_pool_items_ok_total",
                help="pool items completed successfully")
            self.c_retried = metrics.counter(
                "repro_pool_items_retried_total",
                help="pool item retries scheduled")
            self.c_quarantined = metrics.counter(
                "repro_pool_items_quarantined_total",
                help="pool items quarantined after max_retries")
            self.g_hb_age = metrics.gauge(
                "repro_pool_heartbeat_age_seconds",
                help="oldest busy-worker heartbeat age", unit="s")
            self.profiler = getattr(metrics, "profiler", None)

    def ok(self, index: int, result: Any, worker: str = "inline") -> None:
        if self.outcomes[index] is not None:
            return  # stale duplicate from a presumed-dead worker
        self.results[index] = result
        it = self.items[index]
        self.outcomes[index] = ItemOutcome(
            it.item_id, index, "ok",
            attempts=self.attempts[index], errors=self.errors[index])
        if self.c_ok is not None:
            self.c_ok.inc()
        self.say(f"{it.item_id}: ok ({worker})")

    def skip(self, index: int, result: Any) -> None:
        self.results[index] = result
        it = self.items[index]
        self.outcomes[index] = ItemOutcome(it.item_id, index, "skipped")
        self.say(f"{it.item_id}: verified artifact found, skipping")

    def fail(self, index: int, message: str) -> Optional[float]:
        """Record one failed attempt; returns the retry delay in
        seconds, or None when the item is now quarantined.

        ``attempts`` counts executions *started* (incremented at
        dispatch), so an item is quarantined once ``1 + max_retries``
        executions have all failed.
        """
        self.errors[index].append(message)
        it = self.items[index]
        if self.attempts[index] <= self.cfg.max_retries:
            self.n_retried += 1
            if self.c_retried is not None:
                self.c_retried.inc()
            delay_s = self.cfg.backoff.backoff(
                index, self.attempts[index]) / 1e6
            self.say(f"{it.item_id}: attempt {self.attempts[index]} failed "
                     f"({message}); retrying in {delay_s:.3f}s")
            return delay_s
        self.outcomes[index] = ItemOutcome(
            it.item_id, index, "quarantined",
            attempts=self.attempts[index], errors=self.errors[index])
        if self.c_quarantined is not None:
            self.c_quarantined.inc()
        self.say(f"{it.item_id}: quarantined after "
                 f"{self.attempts[index]} attempts ({message})")
        return None

    def take_chaos_kill(self, index: int) -> bool:
        """Should this dispatch SIGKILL its worker?  Fires at most once."""
        if self.chaos_armed is not None \
                and self.items[index].item_id == self.chaos_armed:
            self.chaos_armed = None
            return True
        return False

    @property
    def done(self) -> bool:
        return all(o is not None for o in self.outcomes)


def _run_serial(run: _Run, fn: Callable[[Any], Any], todo: List[int]) -> None:
    """Inline execution with identical retry/quarantine semantics."""
    pending = list(todo)
    while pending:
        index = pending.pop(0)
        it = run.items[index]
        run.attempts[index] += 1
        try:
            with watchdog(run.cfg.item_seconds):
                result = fn(it.payload)
        except ExperimentTimeout as exc:
            delay = run.fail(index, f"timeout: {exc}")
            if delay is not None:
                time.sleep(delay)
                pending.insert(0, index)
            continue
        except Exception as exc:  # noqa: BLE001 - continue the campaign
            delay = run.fail(index, f"exception: {type(exc).__name__}: {exc}")
            if delay is not None:
                time.sleep(delay)
                pending.insert(0, index)
            continue
        run.ok(index, result)


def _spawn(ctx, slot: _Slot, slot_id: int, fn, result_q, cfg: PoolConfig):
    from repro.pool.worker import worker_main

    slot.task_q = ctx.Queue()
    slot.proc = ctx.Process(
        target=worker_main,
        args=(slot_id, fn, slot.task_q, result_q,
              cfg.heartbeat_interval, cfg.item_seconds, os.getpid()),
        daemon=True,
    )
    slot.proc.start()
    slot.assigned = None
    slot.last_seen = time.monotonic()


def _kill_slot(slot: _Slot) -> None:
    proc = slot.proc
    if proc is None:
        return
    try:
        proc.kill()
    except (AttributeError, OSError):  # pragma: no cover - py<3.7 / raced
        proc.terminate()
    proc.join(timeout=2.0)


def _run_parallel(run: _Run, fn: Callable[[Any], Any],
                  todo: List[int]) -> None:
    """The supervisor proper: dispatch, heartbeat-watch, retry, respawn."""
    cfg = run.cfg
    start_method = cfg.mp_start or (
        "fork" if "fork" in mp.get_all_start_methods() else "spawn")
    ctx = mp.get_context(start_method)
    result_q = ctx.Queue()
    n_workers = max(1, min(cfg.workers, len(todo)))
    slots = [_Slot() for _ in range(n_workers)]
    #: min-heap of (ready_at, index) items awaiting a worker
    ready: List[Tuple[float, int]] = [(0.0, i) for i in todo]
    heapq.heapify(ready)
    respawns = 0
    hard_kill = cfg.hard_kill_seconds

    def dispatch(slot_id: int) -> None:
        slot = slots[slot_id]
        if slot.assigned is not None or not ready:
            return
        now = time.monotonic()
        if ready[0][0] > now:
            return
        _, index = heapq.heappop(ready)
        it = run.items[index]
        run.attempts[index] += 1
        slot.assigned = index
        slot.started = slot.last_seen = now
        slot.task_q.put(("run", index, it.item_id, it.payload,
                         run.take_chaos_kill(index)))

    def fail_assigned(slot_id: int, message: str) -> None:
        slot = slots[slot_id]
        index, slot.assigned = slot.assigned, None
        if index is None or run.outcomes[index] is not None:
            return
        delay = run.fail(index, message)
        if delay is not None:
            heapq.heappush(ready, (time.monotonic() + delay, index))

    try:
        for slot_id, slot in enumerate(slots):
            _spawn(ctx, slot, slot_id, fn, result_q, cfg)
            dispatch(slot_id)

        while not run.done:
            # -- drain every queued worker message ---------------------
            messages = []
            try:
                messages.append(result_q.get(timeout=_POLL_S))
                while True:
                    messages.append(result_q.get_nowait())
            except Exception:  # Empty (or torn queue after a kill)
                pass

            t0 = perf_counter()
            for msg in messages:
                kind, slot_id, index = msg[0], msg[1], msg[2]
                slot = slots[slot_id]
                if kind == "hb":
                    slot.last_seen = time.monotonic()
                    continue
                if kind == "ok":
                    run.ok(index, msg[3], worker=f"worker {slot_id}")
                    if slot.assigned == index:
                        slot.assigned = None
                        slot.last_seen = time.monotonic()
                    continue
                if kind == "err":
                    if slot.assigned != index:
                        continue  # stale report from a replaced worker
                    slot.last_seen = time.monotonic()
                    fail_assigned(slot_id, f"{msg[3]}: {msg[4]}")

            # -- liveness: dead, silent, or overdue workers ------------
            now = time.monotonic()
            oldest_age = 0.0
            for slot_id, slot in enumerate(slots):
                if not slot.proc.is_alive():
                    exitcode = slot.proc.exitcode
                    fail_assigned(slot_id,
                                  f"worker died (exit code {exitcode})")
                    if not run.done:
                        respawns += 1
                        if respawns > cfg.max_respawns:
                            raise PoolError(
                                f"gave up after {respawns} worker respawns "
                                f"(last exit code {exitcode})")
                        _spawn(ctx, slot, slot_id, fn, result_q, cfg)
                    continue
                if slot.assigned is not None:
                    age = now - slot.last_seen
                    oldest_age = max(oldest_age, age)
                    overdue = (hard_kill is not None
                               and now - slot.started > hard_kill)
                    if age > cfg.heartbeat_grace or overdue:
                        why = (f"exceeded hard deadline {hard_kill}s"
                               if overdue else
                               f"heartbeat stalled for {age:.1f}s")
                        _kill_slot(slot)
                        fail_assigned(slot_id, why)
                        respawns += 1
                        if respawns > cfg.max_respawns:
                            raise PoolError(
                                f"gave up after {respawns} worker respawns "
                                f"({why})")
                        _spawn(ctx, slot, slot_id, fn, result_q, cfg)
            if run.g_hb_age is not None:
                run.g_hb_age.set(oldest_age)

            for slot_id in range(n_workers):
                dispatch(slot_id)
            if run.profiler is not None:
                run.profiler.add("pool.supervise", perf_counter() - t0)
    finally:
        for slot in slots:
            if slot.proc is not None and slot.proc.is_alive():
                try:
                    slot.task_q.put_nowait(None)
                except Exception:
                    pass
        deadline_join = time.monotonic() + 1.0
        for slot in slots:
            if slot.proc is not None:
                slot.proc.join(timeout=max(0.0,
                                           deadline_join - time.monotonic()))
                if slot.proc.is_alive():
                    _kill_slot(slot)
        result_q.close()
        result_q.cancel_join_thread()


def run_pool(
    items: Sequence[Tuple[str, Any]],
    fn: Callable[[Any], Any],
    cfg: PoolConfig = PoolConfig(),
    store: Optional[ArtifactStore] = None,
    config_for: Optional[Callable[[str], Dict[str, Any]]] = None,
    resume: bool = False,
    merge: Optional[Callable[[List[str]], str]] = None,
    merge_id: Optional[str] = None,
    merge_config: Optional[Dict[str, Any]] = None,
    quarantine_path: Optional[str] = None,
    metrics: Optional[object] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PoolReport:
    """Execute ``fn`` over ``items`` under full supervision.

    ``items`` is a sequence of ``(item_id, payload)``; ``fn`` must be a
    picklable module-level callable (the workers import it by
    reference under the ``spawn`` start method).  With ``store`` set,
    results must be strings: each is persisted atomically as it
    arrives, ``resume=True`` skips items whose artifacts verify, and
    — when every item has a result — ``merge_id`` writes the merged
    artifact reduced in item-index order (``merge`` defaults to plain
    concatenation).  Items that exhaust their retries land in the
    quarantine report instead of aborting the run; the report path
    defaults to ``<store.root>/quarantine.json``.
    """
    work = _normalise(items)
    run = _Run(work, cfg, metrics, progress)
    cfg_for = config_for or (lambda item_id: {"item_id": item_id})

    todo: List[int] = []
    for it in work:
        if resume and store is not None \
                and store.verify(it.item_id, cfg_for(it.item_id)):
            run.skip(it.index, store.read(it.item_id))
        else:
            todo.append(it.index)

    if todo:
        if store is None:
            if cfg.workers <= 0:
                _run_serial(run, fn, todo)
            else:
                _run_parallel(run, fn, todo)
        else:
            # persist incrementally: wrap ok() so every completed item
            # lands in the store the moment it is reduced
            plain_ok = run.ok

            def persisting_ok(index: int, result: Any,
                              worker: str = "inline") -> None:
                already = run.outcomes[index] is not None
                plain_ok(index, result, worker=worker)
                if already:
                    return
                if not isinstance(result, str):
                    raise PoolError(
                        f"store-backed pools need str results; "
                        f"{run.items[index].item_id} produced "
                        f"{type(result).__name__}")
                store.write(run.items[index].item_id, result,
                            cfg_for(run.items[index].item_id))

            run.ok = persisting_ok  # type: ignore[method-assign]
            if cfg.workers <= 0:
                _run_serial(run, fn, todo)
            else:
                _run_parallel(run, fn, todo)

    outcomes = [o for o in run.outcomes if o is not None]
    report = PoolReport(
        results=run.results,
        outcomes=outcomes,
        n_ok=sum(o.status == "ok" for o in outcomes),
        n_skipped=sum(o.status == "skipped" for o in outcomes),
        n_retried=run.n_retried,
    )

    q_path = quarantine_path
    if q_path is None and store is not None:
        q_path = os.path.join(store.root, "quarantine.json")
    if q_path is not None:
        if report.quarantined:
            write_quarantine(q_path, task_name(fn), report.quarantined,
                             {it.index: it.payload for it in work})
            report.quarantine_path = q_path
        elif os.path.exists(q_path):
            os.remove(q_path)  # an earlier run's poison has been cured

    if (store is not None and merge_id is not None and report.complete
            and work):
        texts: List[str] = list(run.results)
        merged = merge(texts) if merge is not None else "".join(texts)
        store.write(
            merge_id, merged,
            merge_config if merge_config is not None
            else {"merge_of": [it.item_id for it in work]},
        )
        report.merged_id = merge_id
    return report
