"""PredictiveSFS: a size-based variant of SFS (extension experiment).

SFS's design bet (§XI) is that *no* per-function duration knowledge is
needed — a FIFO queue plus an adaptive slice approximates SRTF well
enough.  The size-based scheduling literature bets the other way:
estimate each request's size and serve shortest-predicted-first.

``PredictiveSFS`` implements that alternative on the same chassis so
the two bets can be compared against the SRTF oracle:

* the global queue becomes a priority queue ordered by the predicted
  CPU demand of each request's function (EWMA of history, keyed by the
  function name — the unit Azure bills and the size-based literature
  predicts on);
* a promoted function's FILTER slice is its own predicted demand times
  a headroom factor, instead of the global ``S``;
* completed invocations feed the predictor.

Everything else — workers, I/O polling, demotion to CFS, overload
bypass — is inherited unchanged from :class:`repro.core.sfs.SFS`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional

from repro.core.config import SFSConfig
from repro.core.global_queue import GlobalQueue, QueueEntry
from repro.core.predictor import DurationPredictor
from repro.core.sfs import SFS
from repro.machine.base import MachineBase
from repro.sim.task import Task


class PriorityGlobalQueue(GlobalQueue):
    """GlobalQueue ordered by a priority assigned at push time.

    Priorities are frozen on push (a later, better estimate does not
    re-sort waiting entries) — matching what a real implementation
    could do cheaply.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, entry: QueueEntry, priority: float = 0.0) -> None:  # type: ignore[override]
        heapq.heappush(self._heap, (priority, next(self._seq), entry))
        self.total_enqueued += 1
        if len(self._heap) > self.max_length:
            self.max_length = len(self._heap)

    def pop(self, now: int) -> Optional[QueueEntry]:
        if not self._heap:
            return None
        _p, _s, entry = heapq.heappop(self._heap)
        self.delay_samples.append((now, now - entry.enqueue_ts))
        return entry

    def head_delay(self, now: int) -> Optional[int]:
        if not self._heap:
            return None
        return now - self._heap[0][2].enqueue_ts

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class PredictiveSFS(SFS):
    """SFS with shortest-predicted-first dispatch and per-task slices."""

    def __init__(
        self,
        machine: MachineBase,
        config: Optional[SFSConfig] = None,
        predictor: Optional[DurationPredictor] = None,
        slice_headroom: float = 1.5,
    ):
        super().__init__(machine, config)
        if self.config.per_worker_queues:
            raise ValueError("PredictiveSFS uses a single priority queue")
        if slice_headroom <= 0:
            raise ValueError("slice_headroom must be positive")
        self.predictor = predictor or DurationPredictor()
        self.slice_headroom = slice_headroom
        self.queue = PriorityGlobalQueue()
        self.queues: List[GlobalQueue] = [self.queue] * len(self.workers)
        machine.on_finish(self._observe_finish)

    # ------------------------------------------------------------------
    def _push(self, entry: QueueEntry) -> None:
        priority = self.predictor.predict(entry.task.name or entry.task.app)
        self.queue.push(entry, priority=priority)

    def _promote(self, worker, entry: QueueEntry) -> None:
        task = entry.task
        if task.sfs_slice_left is None:
            predicted = self.predictor.predict(task.name or task.app)
            slice_left = self.config.clamp_slice(
                int(predicted * self.slice_headroom)
            )
            task.sfs_slice_left = slice_left
            task.sfs_slice_granted = slice_left
        super()._promote(worker, entry)

    def _observe_finish(self, task: Task) -> None:
        if task.cpu_time > 0:
            self.predictor.observe(task.name or task.app, task.cpu_time)
