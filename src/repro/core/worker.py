"""SFS worker state.

One worker per CPU core (goroutines in the paper's Go implementation).
A worker is either idle or shepherding exactly one FILTER-mode function:
it owns that function's slice timer and status-poll timer and releases
them when the function finishes, blocks, or is demoted.
"""

from __future__ import annotations

from typing import Optional

from repro.core.global_queue import QueueEntry
from repro.sim.engine import EventHandle


class SFSWorker:
    """State for one FILTER-pool worker."""

    __slots__ = (
        "index",
        "entry",
        "slice_handle",
        "poll_handle",
        "cpu_at_assign",
        "slice_at_assign",
        "assigned_at",
    )

    def __init__(self, index: int):
        self.index = index
        self.entry: Optional[QueueEntry] = None
        self.slice_handle: Optional[EventHandle] = None
        self.poll_handle: Optional[EventHandle] = None
        self.cpu_at_assign: int = 0
        self.slice_at_assign: int = 0
        self.assigned_at: int = 0

    @property
    def idle(self) -> bool:
        return self.entry is None

    def clear(self) -> None:
        """Cancel timers and return to idle."""
        if self.slice_handle is not None:
            self.slice_handle.cancel()
            self.slice_handle = None
        if self.poll_handle is not None:
            self.poll_handle.cancel()
            self.poll_handle = None
        self.entry = None
