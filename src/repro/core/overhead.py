"""User-space overhead accounting (Table II).

The paper reports SFS' own CPU usage: ~74 % of it from periodic status
polling, the rest from scheduling activity, averaging 2.6 cores on a
72-core OpenLambda host with 4 ms polling.  The simulator cannot burn
real CPU, so we meter the *cost model*: every poll charges
``poll_cost`` us of CPU, every scheduling action ``sched_op_cost`` us
(both calibrated to gopsutil/schedtool costs and configurable).

Costs are bucketed into fixed windows so the table's min/avg/median/max
over time can be reproduced.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.sim.units import SEC


@dataclass
class OverheadSummary:
    """CPU usage of SFS itself, as a fraction of one core."""

    min: float
    average: float
    median: float
    max: float
    poll_fraction: float  # share of total overhead due to polling
    total_cpu_us: int

    def relative_to(self, n_cores: int) -> float:
        """Overhead as a fraction of the whole machine (paper: 2.6/72)."""
        return self.average / n_cores


class OverheadMeter:
    """Buckets SFS user-space CPU costs into fixed time windows."""

    def __init__(self, window: int = 1 * SEC):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._poll_cost: Dict[int, int] = defaultdict(int)
        self._sched_cost: Dict[int, int] = defaultdict(int)
        self.poll_count = 0
        self.sched_op_count = 0

    def record_poll(self, now: int, cost: int) -> None:
        self._poll_cost[now // self.window] += cost
        self.poll_count += 1

    def record_sched_op(self, now: int, cost: int) -> None:
        self._sched_cost[now // self.window] += cost
        self.sched_op_count += 1

    @property
    def total_poll_cost(self) -> int:
        return sum(self._poll_cost.values())

    @property
    def total_sched_cost(self) -> int:
        return sum(self._sched_cost.values())

    def per_window_usage(self, end_time: int) -> List[float]:
        """CPU usage (cores) per window from t=0 to ``end_time``."""
        n = max(1, -(-end_time // self.window))  # ceil division
        usage = []
        for b in range(n):
            cost = self._poll_cost.get(b, 0) + self._sched_cost.get(b, 0)
            usage.append(cost / self.window)
        return usage

    def summary(self, end_time: int) -> OverheadSummary:
        usage = np.asarray(self.per_window_usage(end_time))
        total = self.total_poll_cost + self.total_sched_cost
        poll_frac = self.total_poll_cost / total if total else 0.0
        return OverheadSummary(
            min=float(usage.min()),
            average=float(usage.mean()),
            median=float(np.median(usage)),
            max=float(usage.max()),
            poll_fraction=poll_frac,
            total_cpu_us=int(total),
        )
