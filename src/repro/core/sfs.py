"""The SFS scheduler facade (§V).

Wires the global queue, FILTER worker pool, slice monitor, I/O poller
and overload detector to a machine through the narrow user-space API
(``set_policy`` = schedtool, ``poll_state`` = /proc polling,
``on_finish`` = waitpid).  The scheduling flow follows Fig 4 of the
paper step by step; the numbered comments below reference it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import SFSConfig
from repro.core.global_queue import GlobalQueue, QueueEntry
from repro.core.monitor import SliceMonitor
from repro.core.overhead import OverheadMeter
from repro.core.overload import OverloadDetector
from repro.core.worker import SFSWorker
from repro.machine.base import MachineBase
from repro.sim.task import SchedPolicy, Task, TaskState
from repro.trace import events as tev
from repro.why import audit as aud


@dataclass
class SFSStats:
    """Counters exposed for tests and the evaluation harness."""

    submitted: int = 0
    resubmitted: int = 0          # post-I/O re-enqueues
    promoted: int = 0             # FILTER promotions (schedtool -> FIFO)
    completed_in_filter: int = 0  # finished before the slice expired (4.1)
    demoted_slice: int = 0        # slice expiry -> CFS (4.2)
    demoted_io: int = 0           # block detected -> CFS + watch (4.3)
    demoted_io_exhausted: int = 0  # block detected with no slice budget left
    bypassed_overload: int = 0    # overload -> stay in CFS (4.4)
    skipped_finished: int = 0     # finished in CFS before a worker got it
    watched_at_pop: int = 0       # found blocked at dequeue -> watch list
    finished_while_watched: int = 0  # completed in CFS before waking

    def check_invariants(self) -> None:
        """Every queue entry and every promotion has exactly one
        outcome; raises AssertionError otherwise.  Only meaningful once
        the run has drained (queue and watch list empty)."""
        entries = self.submitted + self.resubmitted
        outcomes = (
            self.promoted
            + self.bypassed_overload
            + self.skipped_finished
            + self.watched_at_pop
        )
        assert entries == outcomes, (entries, outcomes)
        assert self.promoted == (
            self.completed_in_filter + self.demoted_slice + self.demoted_io
        )
        watches = self.watched_at_pop + (self.demoted_io - self.demoted_io_exhausted)
        resolved = self.resubmitted + self.finished_while_watched
        assert watches == resolved, (watches, resolved)


class SFS:
    """User-space two-level (FILTER + CFS) function scheduler."""

    def __init__(self, machine: MachineBase, config: Optional[SFSConfig] = None):
        self.machine = machine
        self.sim = machine.sim
        self.config = config or SFSConfig()
        n_workers = self.config.n_workers or machine.n_cores
        self.workers: List[SFSWorker] = [SFSWorker(i) for i in range(n_workers)]
        if self.config.per_worker_queues:
            # multi-queue ablation (§VI): one private queue per worker,
            # round-robin request placement, no stealing
            self.queues: List[GlobalQueue] = [GlobalQueue() for _ in self.workers]
            self.queue = self.queues[0]
        else:
            self.queue = GlobalQueue()
            self.queues = [self.queue] * n_workers
        self._rr_submit = 0
        # structured tracing: cached once; NULL_RECORDER when disabled
        self._trace = self.sim.trace
        self._trace_on = self._trace.enabled
        # metric registry: same caching contract (repro.obs)
        self._metrics = self.sim.metrics
        self._metrics_on = self._metrics.enabled
        # scheduler-decision audit: same caching contract (repro.why);
        # the FILTER's promote/demote/bypass decisions are the ones the
        # paper's Fig 4 flow chart names
        self._audit = self.sim.audit
        self._audit_on = self._audit.enabled
        if self._metrics_on:
            m = self._metrics
            self._m_submitted = m.counter(
                "repro_sfs_submitted_total", help="requests entering SFS")
            self._m_resubmitted = m.counter(
                "repro_sfs_resubmitted_total", help="post-I/O re-enqueues")
            self._m_promoted = m.counter(
                "repro_sfs_promotions_total", help="FILTER promotions")
            self._m_filter_finish = m.counter(
                "repro_sfs_filter_finishes_total",
                help="functions finishing inside their FILTER slice")
            self._m_demote_slice = m.counter(
                "repro_sfs_demotions_total", help="FILTER demotions",
                labels={"reason": "slice"})
            self._m_demote_io = m.counter(
                "repro_sfs_demotions_total", help="FILTER demotions",
                labels={"reason": "io"})
            self._m_bypassed = m.counter(
                "repro_sfs_overload_bypass_total",
                help="requests left in CFS by the overload detector")
            self._m_queue_delay = m.histogram(
                "repro_sfs_queue_delay_us", unit="us",
                help="global-queue residence at FILTER promotion")
            self._m_slice_granted = m.histogram(
                "repro_sfs_slice_granted_us", unit="us",
                help="FILTER slice budget granted at promotion")
            self._m_boost_us = m.counter(
                "repro_sfs_boost_us_total", unit="us",
                help="total virtual time spent FILTER-boosted")
        self.monitor = SliceMonitor(self.config, machine.n_cores, trace=self._trace)
        self.overload = OverloadDetector(self.config)
        self.overhead = OverheadMeter()
        self.stats = SFSStats()
        self._by_tid: Dict[int, SFSWorker] = {}
        self._watch: Dict[int, QueueEntry] = {}
        self._watch_poll_active = False
        self._draining = False
        machine.on_finish(self._on_task_finish)

    # ==================================================================
    # entry point (Fig 4, step 1): the FaaS server tells SFS about a
    # dispatched function process
    # ==================================================================
    def submit(self, task: Task, invoke_ts: Optional[int] = None) -> None:
        """Register a freshly dispatched function request with SFS."""
        now = self.sim.now
        invoke = invoke_ts if invoke_ts is not None else now
        self.stats.submitted += 1
        if self._trace_on:
            self._trace.emit(now, tev.SFS_SUBMIT, task.tid)
        if self._metrics_on:
            self._m_submitted.inc()
        self.monitor.record_arrival(now)
        self._push(QueueEntry(task=task, enqueue_ts=now, invoke_ts=invoke))
        self._drain()

    def _push(self, entry: QueueEntry) -> None:
        if self.config.per_worker_queues:
            self.queues[self._rr_submit % len(self.queues)].push(entry)
            self._rr_submit += 1
        else:
            self.queue.push(entry)

    def delay_samples(self) -> List:
        """Queue-delay samples across all queues, time-ordered."""
        if not self.config.per_worker_queues:
            return list(self.queue.delay_samples)
        merged: List = []
        for q in self.queues:
            merged.extend(q.delay_samples)
        merged.sort()
        return merged

    # ==================================================================
    # worker pool (Fig 4, step 2)
    # ==================================================================
    def _drain(self) -> None:
        """Let idle workers fetch from the global queue (work conserving)."""
        if self._draining:
            return
        self._draining = True
        try:
            progress = True
            while progress:
                progress = False
                for worker in self.workers:
                    if worker.idle and self.queues[worker.index]:
                        if self._assign_next(worker):
                            progress = True
        finally:
            self._draining = False

    def _assign_next(self, worker: SFSWorker) -> bool:
        """Pop entries until one is FILTER-scheduled on ``worker``.

        Entries may be consumed without occupying the worker: requests
        that already finished under CFS, requests bypassed to CFS by the
        overload detector (4.4), and requests found blocked on I/O (4.3).
        Returns False when the queue empties without an assignment.
        """
        now = self.sim.now
        queue = self.queues[worker.index]
        while True:
            entry = queue.pop(now)
            if entry is None:
                return False
            task = entry.task
            state = self.machine.poll_state(task)
            delay = now - entry.enqueue_ts
            if state is TaskState.FINISHED:
                self.stats.skipped_finished += 1
                if self._trace_on:
                    self._trace.emit(now, tev.SFS_SKIP_FINISHED, task.tid,
                                     args=(delay,))
                continue
            if not entry.resumed and self.overload.should_bypass(
                now, delay, self.monitor.slice
            ):
                # 4.4: transient overload — leave the process in CFS.
                self.stats.bypassed_overload += 1
                task.sfs_bypassed = True
                if self._trace_on:
                    self._trace.emit(now, tev.SFS_OVERLOAD, task.tid,
                                     args=(delay, self.monitor.slice))
                if self._metrics_on:
                    self._m_bypassed.inc()
                if self._audit_on:
                    self._audit.record(now, aud.OP_BYPASS, "sfs-filter",
                                       displaced=task.tid, reason="overload",
                                       arg=delay)
                continue
            if self.config.io_aware and state is TaskState.BLOCKED:
                # Found sleeping (e.g. leading I/O): watch until runnable.
                self.stats.watched_at_pop += 1
                if self._trace_on:
                    self._trace.emit(now, tev.SFS_WATCH_AT_POP, task.tid,
                                     args=(delay,))
                self._watch_task(entry)
                continue
            self._promote(worker, entry)
            return True

    def _promote(self, worker: SFSWorker, entry: QueueEntry) -> None:
        """FILTER-schedule ``entry`` on ``worker`` (schedtool -> FIFO)."""
        now = self.sim.now
        task = entry.task
        slice_left = task.sfs_slice_left
        if slice_left is None:
            slice_left = self.monitor.slice
            task.sfs_slice_left = slice_left
            task.sfs_slice_granted = slice_left
        worker.entry = entry
        worker.assigned_at = now
        worker.cpu_at_assign = task.cpu_time
        worker.slice_at_assign = slice_left
        self._by_tid[task.tid] = worker
        self.stats.promoted += 1
        if self._trace_on:
            self._trace.emit(now, tev.SFS_PROMOTE, task.tid, worker.index,
                             args=(slice_left, now - entry.enqueue_ts))
        if self._metrics_on:
            self._m_promoted.inc()
            self._m_queue_delay.observe(now - entry.enqueue_ts)
            self._m_slice_granted.observe(slice_left)
        if self._audit_on:
            self._audit.record(now, aud.OP_PROMOTE,
                               f"sfs-worker:{worker.index}",
                               chosen=task.tid, arg=slice_left)
        self._sched_op()
        self.machine.set_policy(task, SchedPolicy.FIFO, self.config.rt_priority)
        worker.slice_handle = self.sim.schedule(
            max(1, slice_left), self._on_slice_expiry, worker, task
        )
        if self.config.io_aware:
            worker.poll_handle = self.sim.schedule(
                self.config.poll_interval, self._on_worker_poll, worker, task
            )

    # ==================================================================
    # FILTER-mode lifecycle (Fig 4, steps 4.1-4.3)
    # ==================================================================
    def _on_task_finish(self, task: Task) -> None:
        """waitpid: the function returned (4.1) — release its worker."""
        if self._watch.pop(task.tid, None) is not None:
            self.stats.finished_while_watched += 1
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.SFS_WATCH_FINISH, task.tid)
        worker = self._by_tid.pop(task.tid, None)
        if worker is None:
            return
        if worker.entry is not None and worker.entry.task is task:
            if worker.slice_handle is not None and worker.slice_handle.active:
                self.stats.completed_in_filter += 1
                if self._trace_on:
                    self._trace.emit(self.sim.now, tev.SFS_FILTER_FINISH,
                                     task.tid, worker.index)
                if self._metrics_on:
                    self._m_filter_finish.inc()
            if self._metrics_on:
                self._m_boost_us.inc(self.sim.now - worker.assigned_at)
            worker.clear()
            self._drain()

    def _on_slice_expiry(self, worker: SFSWorker, task: Task) -> None:
        """4.2: the slice elapsed — demote the function to CFS."""
        worker.slice_handle = None
        if worker.entry is None or worker.entry.task is not task:
            return  # stale timer
        task.sfs_slice_left = 0
        task.sfs_demoted = True
        self.stats.demoted_slice += 1
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.SFS_DEMOTE_SLICE,
                             task.tid, worker.index)
        if self._metrics_on:
            self._m_demote_slice.inc()
            self._m_boost_us.inc(self.sim.now - worker.assigned_at)
        if self._audit_on:
            self._audit.record(self.sim.now, aud.OP_DEMOTE,
                               f"sfs-worker:{worker.index}",
                               displaced=task.tid, reason="slice")
        self._sched_op()
        self._by_tid.pop(task.tid, None)
        worker.clear()
        self.machine.set_policy(task, SchedPolicy.CFS)
        self._drain()

    def _on_worker_poll(self, worker: SFSWorker, task: Task) -> None:
        """4.3: periodic kernel-status poll of the FILTER function."""
        worker.poll_handle = None
        if worker.entry is None or worker.entry.task is not task:
            return  # stale timer
        self.overhead.record_poll(self.sim.now, self.config.poll_cost)
        state = self.machine.poll_state(task)
        if state is TaskState.BLOCKED:
            # running -> sleeping transition detected: stop timekeeping,
            # record the unused slice, drop priority, take the next one.
            used = task.cpu_time - worker.cpu_at_assign
            left = max(0, worker.slice_at_assign - used)
            task.sfs_slice_left = left
            entry = worker.entry
            self.stats.demoted_io += 1
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.SFS_DEMOTE_IO,
                                 task.tid, worker.index, args=(left,))
            if self._metrics_on:
                self._m_demote_io.inc()
                self._m_boost_us.inc(self.sim.now - worker.assigned_at)
            if self._audit_on:
                self._audit.record(self.sim.now, aud.OP_DEMOTE,
                                   f"sfs-worker:{worker.index}",
                                   displaced=task.tid, reason="io", arg=left)
            self._sched_op()
            self._by_tid.pop(task.tid, None)
            worker.clear()
            self.machine.set_policy(task, SchedPolicy.CFS)
            if left > 0:
                self._watch_task(entry)
            else:
                self.stats.demoted_io_exhausted += 1
                task.sfs_demoted = True
            self._drain()
        elif state is TaskState.FINISHED:  # defensive; finish cb handles it
            worker.clear()
            self._drain()
        else:
            worker.poll_handle = self.sim.schedule(
                self.config.poll_interval, self._on_worker_poll, worker, task
            )

    # ==================================================================
    # blocked-function watch list (§V-D)
    # ==================================================================
    def _watch_task(self, entry: QueueEntry) -> None:
        self._watch[entry.task.tid] = entry
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.SFS_WATCH, entry.task.tid)
        if not self._watch_poll_active:
            self._watch_poll_active = True
            self.sim.schedule(self.config.poll_interval, self._on_watch_poll)

    def _on_watch_poll(self) -> None:
        now = self.sim.now
        woke: List[QueueEntry] = []
        for tid in list(self._watch):
            entry = self._watch[tid]
            self.overhead.record_poll(now, self.config.poll_cost)
            state = self.machine.poll_state(entry.task)
            if state is TaskState.FINISHED:
                self.stats.finished_while_watched += 1
                if self._trace_on:
                    self._trace.emit(now, tev.SFS_WATCH_FINISH, tid)
                del self._watch[tid]
            elif state in (TaskState.READY, TaskState.RUNNING):
                del self._watch[tid]
                woke.append(entry)
        for entry in woke:
            self.stats.resubmitted += 1
            if self._trace_on:
                self._trace.emit(now, tev.SFS_RESUBMIT, entry.task.tid)
            if self._metrics_on:
                self._m_resubmitted.inc()
            self._push(
                QueueEntry(
                    task=entry.task,
                    enqueue_ts=now,
                    invoke_ts=entry.invoke_ts,
                    resumed=True,
                )
            )
        if self._watch:
            self.sim.schedule(self.config.poll_interval, self._on_watch_poll)
        else:
            self._watch_poll_active = False
        if woke:
            self._drain()

    # ==================================================================
    def _sched_op(self) -> None:
        self.overhead.record_sched_op(self.sim.now, self.config.sched_op_cost)

    def busy_workers(self) -> int:
        return sum(1 for w in self.workers if not w.idle)

    def queued(self) -> int:
        """Requests currently waiting across all global queue(s)."""
        if not self.config.per_worker_queues:
            return len(self.queue)
        return sum(len(q) for q in self.queues)

    # ------------------------------------------------------------------
    # structured tracing
    # ------------------------------------------------------------------
    def sample_gauges(self, trace, now: int) -> None:
        """Emit scheduler-state gauges (called by the periodic sampler)."""
        trace.emit(now, tev.GAUGE_GLOBAL_QUEUE, args=(self.queued(),))
        trace.emit(now, tev.GAUGE_WATCH_LIST, args=(len(self._watch),))
        trace.emit(now, tev.GAUGE_BUSY_WORKERS, args=(self.busy_workers(),))
