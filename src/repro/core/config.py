"""SFS configuration.

Defaults follow the paper: sliding window ``N = 100`` (§V-C), overload
factor ``O = 3`` (§V-E), polling interval 4 ms (§V-D).  The ablation
switches (``adaptive``, ``io_aware``, ``overload_enabled``) exist so the
sensitivity experiments (Figs 9, 11, 12) can turn individual mechanisms
off, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.units import MS, SEC


@dataclass(frozen=True)
class SFSConfig:
    """Tunables for the SFS user-space scheduler."""

    #: FILTER workers; ``None`` = one per machine core (the paper's layout).
    n_workers: Optional[int] = None
    #: sliding window length N for IAT statistics (§V-C).
    window: int = 100
    #: overload threshold factor O: bypass FILTER when delay >= O * S (§V-E).
    overload_factor: float = 3.0
    #: kernel-status polling interval (§V-D).
    poll_interval: int = 4 * MS
    #: time slice before the first window completes.
    initial_slice: int = 100 * MS
    #: clamp bounds for the adaptive slice.
    min_slice: int = 1 * MS
    max_slice: int = 10 * SEC
    #: static priority used for FILTER (SCHED_FIFO) processes.
    rt_priority: int = 1

    # --- ablation switches ------------------------------------------------
    #: adapt S from IATs (False = keep ``initial_slice`` fixed; Fig 9).
    adaptive: bool = True
    #: poll for I/O blocks (False = I/O-oblivious SFS; Fig 11).
    io_aware: bool = True
    #: hybrid FILTER+CFS overload handling (False = "SFS w/o hybrid"; Fig 12).
    overload_enabled: bool = True
    #: per-worker (multi-queue) dispatch instead of the single global
    #: queue — the design the paper rejects in §VI; kept as an ablation.
    per_worker_queues: bool = False

    # --- user-space overhead cost model (Table II) -------------------------
    #: CPU cost of one kernel-status poll (gopsutil /proc read), us.
    poll_cost: int = 96
    #: CPU cost of one scheduling action, us.  The paper's implementation
    #: literally forks and execs the ``schedtool`` binary per promotion/
    #: demotion (§VI), which costs on the order of a millisecond.
    sched_op_cost: int = 1200

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.overload_factor <= 0:
            raise ValueError("overload_factor must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if not (0 < self.min_slice <= self.initial_slice <= self.max_slice):
            raise ValueError("require 0 < min_slice <= initial_slice <= max_slice")
        if self.rt_priority < 1 or self.rt_priority > 99:
            raise ValueError("rt_priority must be in [1, 99] (sched(7))")

    def clamp_slice(self, s: int) -> int:
        """Clamp a computed slice into the configured bounds."""
        return max(self.min_slice, min(self.max_slice, int(s)))
