"""Adaptive time-slice monitor (§V-C).

Models the scheduler as an M/G/c queue: with per-core utilisation
``rho = lambda / (c * mu)``, bounding the FILTER-mode service time by
``S = mean(IAT) * c`` keeps the FILTER pool's effective ``rho`` near 1,
balancing queuing delay against context switches.

The monitor keeps the timestamps of the last ``N+1`` *fresh* request
arrivals (wake-up re-enqueues do not count — they are not new traffic)
and recomputes ``S`` every ``N`` arrivals from the N inter-arrival
times in the window, exactly as §V-C describes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.core.config import SFSConfig
from repro.trace import events as tev
from repro.trace.recorder import NULL_RECORDER


class SliceMonitor:
    """Sliding-window IAT tracker producing the global time slice S."""

    def __init__(self, config: SFSConfig, n_cores: int, trace=None):
        self.config = config
        self.n_cores = n_cores
        self._trace = trace if trace is not None else NULL_RECORDER
        self._slice: int = config.initial_slice
        self._arrivals: Deque[int] = deque(maxlen=config.window + 1)
        self._since_update = 0
        self.recomputations = 0
        #: (time, S) — Fig 10's series; starts with the initial value.
        self.timeline: List[Tuple[int, int]] = [(0, self._slice)]

    @property
    def slice(self) -> int:
        """Current global time slice S (microseconds)."""
        return self._slice

    def record_arrival(self, now: int) -> None:
        """Note a fresh request arrival; maybe recompute S."""
        self._arrivals.append(now)
        self._since_update += 1
        if not self.config.adaptive:
            return
        # a full window is N IATs, which takes N+1 arrival timestamps
        if (
            self._since_update >= self.config.window
            and len(self._arrivals) == self.config.window + 1
        ):
            self._recompute(now)
            self._since_update = 0

    def _recompute(self, now: int) -> None:
        ts = self._arrivals
        # mean IAT over the window == (last - first) / (len - 1)
        span = ts[-1] - ts[0]
        n_iats = len(ts) - 1
        mean_iat = span / n_iats
        s = self.config.clamp_slice(round(mean_iat * self.n_cores))
        self._slice = s
        self.recomputations += 1
        self.timeline.append((now, s))
        if self._trace.enabled:
            self._trace.emit(now, tev.SFS_SLICE, args=(s,))

    def mean_iat(self) -> float:
        """Mean IAT currently in the window (us); inf with <2 samples."""
        if len(self._arrivals) < 2:
            return float("inf")
        return (self._arrivals[-1] - self._arrivals[0]) / (len(self._arrivals) - 1)
