"""SFS — the paper's contribution: a user-space two-level scheduler.

SFS approximates SRTF by orchestrating the kernel's existing FIFO and
CFS classes from user space:

* functions start in **FILTER** mode: an SFS worker promotes the process
  to ``SCHED_FIFO`` and lets it run for at most a time slice ``S``;
* functions that outlive ``S`` are demoted to CFS ("First In but Longer
  jobs To Extra Runqueue");
* ``S`` adapts to the arrival rate (``S = mean(last N IATs) × cores``);
* blocked functions are detected by periodic ``/proc`` polling and put
  back on the global queue when they wake;
* transient overload (queuing delay ≥ O·S) temporarily bypasses FILTER
  and drains the backlog straight into CFS.

Public entry point: :class:`repro.core.sfs.SFS`.
"""

from repro.core.config import SFSConfig
from repro.core.sfs import SFS

__all__ = ["SFS", "SFSConfig"]
