"""SFS global request queue.

The paper implements this as a Go channel; behaviourally it is a FIFO
of ``(function request, invocation timestamp)`` tuples shared by all
SFS workers.  A single global queue (rather than per-core queues) gives
natural work conservation and load balance (§VI).

Each entry remembers *when it was enqueued* so workers can compute the
queuing delay used by both the overload detector and Fig 12a.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.sim.task import Task


@dataclass
class QueueEntry:
    """One queued function request (or a re-enqueued post-I/O function)."""

    task: Task
    enqueue_ts: int
    #: original invocation timestamp (first submission), for records.
    invoke_ts: int
    #: True when this entry is a wake-up re-enqueue, not a fresh arrival.
    resumed: bool = False


class GlobalQueue:
    """FIFO queue with queuing-delay bookkeeping."""

    def __init__(self) -> None:
        self._q: Deque[QueueEntry] = deque()
        self.total_enqueued: int = 0
        self.max_length: int = 0
        #: (time, delay) samples recorded at every pop — Fig 12a's series.
        self.delay_samples: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def push(self, entry: QueueEntry) -> None:
        self._q.append(entry)
        self.total_enqueued += 1
        if len(self._q) > self.max_length:
            self.max_length = len(self._q)

    def pop(self, now: int) -> Optional[QueueEntry]:
        """Dequeue the head and record its queuing delay."""
        if not self._q:
            return None
        entry = self._q.popleft()
        self.delay_samples.append((now, now - entry.enqueue_ts))
        return entry

    def head_delay(self, now: int) -> Optional[int]:
        """Queuing delay of the head entry without dequeuing."""
        if not self._q:
            return None
        return now - self._q[0].enqueue_ts
