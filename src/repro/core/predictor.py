"""Per-application duration prediction from execution history.

The paper's related work (§XI) covers *size-based* scheduling: systems
that approximate SRTF using a per-request size hint.  SFS deliberately
avoids per-function prediction ("SFS does not assume a priori knowledge
about function types or execution time"), so this module exists to
*test* that design choice: :class:`repro.core.predictive.PredictiveSFS`
uses these predictions to schedule shortest-predicted-first, and the
extension experiment compares it against stock SFS and the SRTF oracle.

The predictor is an exponentially weighted moving average of completed
CPU times per application, with a global prior for cold applications —
the standard online size estimator in the size-based literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.units import MS


@dataclass
class _AppStats:
    ema: float
    count: int


class DurationPredictor:
    """EWMA of per-app CPU demand, with a global-mean prior."""

    def __init__(self, alpha: float = 0.25, prior_us: float = 100 * MS):
        if not (0 < alpha <= 1):
            raise ValueError("alpha must be in (0, 1]")
        if prior_us <= 0:
            raise ValueError("prior must be positive")
        self.alpha = alpha
        self.prior_us = float(prior_us)
        self._apps: Dict[str, _AppStats] = {}
        self._global_ema: Optional[float] = None
        self.observations = 0

    # ------------------------------------------------------------------
    def observe(self, app: str, cpu_time_us: int) -> None:
        """Record a completed invocation's measured CPU time."""
        if cpu_time_us <= 0:
            raise ValueError("cpu_time must be positive")
        self.observations += 1
        if self._global_ema is None:
            self._global_ema = float(cpu_time_us)
        else:
            self._global_ema += self.alpha * (cpu_time_us - self._global_ema)
        stats = self._apps.get(app)
        if stats is None:
            self._apps[app] = _AppStats(ema=float(cpu_time_us), count=1)
        else:
            stats.ema += self.alpha * (cpu_time_us - stats.ema)
            stats.count += 1

    def predict(self, app: str) -> float:
        """Expected CPU demand (us) of the next invocation of ``app``."""
        stats = self._apps.get(app)
        if stats is not None:
            return stats.ema
        if self._global_ema is not None:
            return self._global_ema
        return self.prior_us

    def confidence(self, app: str) -> int:
        """How many samples back the prediction (0 = pure prior)."""
        stats = self._apps.get(app)
        return stats.count if stats else 0

    def known_apps(self) -> int:
        return len(self._apps)
