"""Transient-overload detection (§V-E).

A worker about to FILTER-schedule a request first checks how long the
request has been queuing.  A delay of at least ``O × S`` means the
FILTER pool's service rate ``c·mu`` has fallen behind the arrival rate
— the M/G/c traffic intensity ``rho > 1`` regime — so SFS temporarily
leaves requests in CFS, which drains the backlog via work conservation.

Detection is purely per-request (stateless), which is what makes the
roll-back automatic: as soon as head-of-queue delay drops below the
threshold, FILTER resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.config import SFSConfig


@dataclass
class OverloadDetector:
    """Stateless threshold check plus bookkeeping for Fig 12."""

    config: SFSConfig
    bypassed: int = 0
    #: (time, delay, slice) for each bypass decision.
    events: List[Tuple[int, int, int]] = field(default_factory=list)

    def should_bypass(self, now: int, queue_delay: int, current_slice: int) -> bool:
        """True when this request should skip FILTER and stay in CFS."""
        if not self.config.overload_enabled:
            return False
        threshold = self.config.overload_factor * current_slice
        if queue_delay >= threshold:
            self.bypassed += 1
            self.events.append((now, queue_delay, current_slice))
            return True
        return False
