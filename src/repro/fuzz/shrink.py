"""Failure minimisation: ddmin over requests, then everything else.

A campaign finding is only useful if a human can read it.  The shrinker
takes a failing :class:`FuzzCase` + the oracle that flagged it and
greedily removes everything that is not needed to keep the oracle
failing, in four stages:

1. **requests** — Zeller's ddmin over the request list.  Subsets keep
   their *original* ``req_id``s: fault draws are keyed by
   ``(seed, req_id, attempt)``, so renumbering would change which
   requests crash and lose the failure.
2. **fault plan** — drop whole components (crash, coldstart,
   stragglers), then the retry/timeout/admission policies.
3. **config** — fold toward the simplest machine: fluid engine, cfs
   scheduler/fair class, zero context-switch cost, zero notify latency,
   fewer cores, arrivals collapsed to t=0.
4. **durations** — repeated halving of burst durations, globally then
   per request.

Every stage re-runs the oracle through one budget-capped ``attempt``
helper, so a pathological case costs a bounded number of simulations
(the cap is generous: shrinking normally converges in far fewer).  The
result is the smallest variant the budget found, never worse than the
input.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from repro.fuzz.generators import FuzzCase
from repro.fuzz.oracles import Oracle
from repro.sim.task import Burst
from repro.workload.spec import RequestSpec, Workload

#: default cap on oracle invocations per shrink
DEFAULT_BUDGET = 400


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit


def _still_fails(case: FuzzCase, oracle: Oracle, budget: _Budget) -> bool:
    """Does ``oracle`` still flag ``case``?  Exceptions the oracle does
    not classify itself (e.g. a shrunk config failing validation) mean
    "no" — the candidate is rejected, not the shrink."""
    if budget.exhausted:
        return False
    budget.spent += 1
    try:
        return oracle.applies(case) and oracle.check(case) is not None
    except Exception:
        return False


def _with_requests(case: FuzzCase, requests: List[RequestSpec]) -> FuzzCase:
    return case.with_workload(
        Workload(list(requests), dict(case.workload.meta))
    )


def _ddmin_requests(case: FuzzCase, oracle: Oracle,
                    budget: _Budget) -> FuzzCase:
    """Classic ddmin over the request list (complement reduction)."""
    items = list(case.workload.requests)
    n = 2
    while len(items) >= 2 and not budget.exhausted:
        chunk = max(1, len(items) // n)
        reduced = False
        # try each chunk alone, then each complement
        pieces = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        for piece in pieces:
            if len(piece) < len(items) and _still_fails(
                _with_requests(case, piece), oracle, budget
            ):
                items, n, reduced = piece, 2, True
                break
        if not reduced:
            for i in range(len(pieces)):
                rest = [r for j, p in enumerate(pieces) if j != i for r in p]
                if rest and _still_fails(
                    _with_requests(case, rest), oracle, budget
                ):
                    items, n, reduced = rest, max(n - 1, 2), True
                    break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return _with_requests(case, items)


def _try(case: FuzzCase, candidate: FuzzCase, oracle: Oracle,
         budget: _Budget) -> FuzzCase:
    """Keep the candidate if it still fails, else keep the case."""
    return candidate if _still_fails(candidate, oracle, budget) else case


def _shrink_plan(case: FuzzCase, oracle: Oracle, budget: _Budget) -> FuzzCase:
    cfg = case.config
    if cfg.faults is not None:
        case = _try(case, case.with_config(replace(cfg, faults=None)),
                    oracle, budget)
        cfg = case.config
    if cfg.faults is not None:
        for field_, null in (("crash_prob", 0.0),
                             ("coldstart_fail_prob", 0.0),
                             ("stragglers", ()),
                             ("host_failures", ()),
                             ("domain_failures", ())):
            if getattr(cfg.faults, field_):
                reduced = replace(cfg.faults, **{field_: null})
                faults = None if reduced.is_null else reduced
                case = _try(case, case.with_config(
                    replace(cfg, faults=faults)), oracle, budget)
                cfg = case.config
                if cfg.faults is None:
                    break
    for field_ in ("retry", "timeout", "admission"):
        if getattr(cfg, field_) is not None:
            case = _try(case, case.with_config(
                replace(cfg, **{field_: None})), oracle, budget)
            cfg = case.config
    return case


def _shrink_cluster(case: FuzzCase, oracle: Oracle,
                    budget: _Budget) -> FuzzCase:
    """Fold the cluster dimension toward its floor: hedging off, then
    two hosts.  Dropping the cluster entirely would flip the case out
    of the cluster oracle's applicability gate, so ``_still_fails``
    rejects that candidate automatically — no special-casing needed."""
    if case.cluster is None:
        return case
    case = _try(case, case.with_cluster(None), oracle, budget)
    if case.cluster is None:
        return case
    if case.cluster.hedge:
        case = _try(case, case.with_cluster(
            replace(case.cluster, hedge=False)), oracle, budget)
    while case.cluster.n_hosts > 2 and not budget.exhausted:
        fewer = replace(case.cluster, n_hosts=case.cluster.n_hosts - 1)
        smaller = _try(case, case.with_cluster(fewer), oracle, budget)
        if smaller is case:
            break
        case = smaller
    return case


def _shrink_config(case: FuzzCase, oracle: Oracle,
                   budget: _Budget) -> FuzzCase:
    for build in (
        lambda c: replace(c, engine="fluid"),
        lambda c: replace(c, scheduler="cfs"),
        lambda c: replace(c, machine=replace(c.machine, fair_class="cfs")),
        lambda c: replace(c, machine=replace(c.machine, ctx_switch_cost=0)),
        lambda c: replace(c, notify_latency=0),
    ):
        candidate = build(case.config)
        if candidate != case.config:
            case = _try(case, case.with_config(candidate), oracle, budget)
    while case.config.machine.n_cores > 1 and not budget.exhausted:
        fewer = replace(case.config,
                        machine=replace(case.config.machine,
                                        n_cores=case.config.machine.n_cores // 2))
        smaller = _try(case, case.with_config(fewer), oracle, budget)
        if smaller is case:
            break
        case = smaller
    if any(r.arrival for r in case.workload):
        flat = [replace(r, arrival=0) for r in case.workload]
        case = _try(case, _with_requests(case, flat), oracle, budget)
    return case


def _halve_bursts(spec: RequestSpec) -> RequestSpec:
    return replace(spec, bursts=tuple(
        Burst(b.kind, max(1, b.duration // 2)) for b in spec.bursts
    ))


def _shrink_durations(case: FuzzCase, oracle: Oracle,
                      budget: _Budget) -> FuzzCase:
    while not budget.exhausted:  # global halving to a fixed point
        halved = [_halve_bursts(r) for r in case.workload]
        if [r.bursts for r in halved] == [r.bursts for r in case.workload]:
            break
        smaller = _try(case, _with_requests(case, halved), oracle, budget)
        if smaller is case:
            break
        case = smaller
    for idx in range(len(case.workload.requests)):  # then per request
        while not budget.exhausted:
            requests = list(case.workload.requests)
            halved = _halve_bursts(requests[idx])
            if halved.bursts == requests[idx].bursts:
                break
            requests[idx] = halved
            smaller = _try(case, _with_requests(case, requests),
                           oracle, budget)
            if smaller is case:
                break
            case = smaller
    return case


def shrink_case(
    case: FuzzCase,
    oracle: Oracle,
    max_checks: int = DEFAULT_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzCase:
    """Minimise ``case`` while ``oracle`` keeps failing it.

    Returns the smallest failing variant found within ``max_checks``
    oracle invocations (the input itself if nothing smaller fails).
    """
    budget = _Budget(max_checks)
    if not _still_fails(case, oracle, budget):
        return case  # not reproducible — nothing to shrink
    for name, stage in (
        ("requests", _ddmin_requests),
        ("cluster", _shrink_cluster),
        ("fault-plan", _shrink_plan),
        ("config", _shrink_config),
        ("durations", _shrink_durations),
    ):
        case = stage(case, oracle, budget)
        if progress is not None:
            progress(f"shrink:{name} -> {len(case.workload)} requests, "
                     f"{budget.spent} checks")
        if budget.exhausted:
            break
    return case
