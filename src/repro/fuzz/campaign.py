"""The campaign driver behind ``repro fuzz``.

One campaign is ``budget`` cases drawn from ``(seed, 0..budget-1)``:
generate, sweep the applicable oracles in registry order, shrink the
first finding, and (optionally) write the minimal reproducer as a
``ReproCase`` JSON under ``out_dir``.  Each case runs under the
SIGALRM watchdog from :mod:`repro.experiments.artifacts`, so a case
that is slow *in wall time* (as opposed to livelocked in virtual time,
which the per-case ``max_events`` guard catches) is recorded as a
timeout instead of hanging the campaign.

Everything in the summary is derived from the seed and the runs — no
wall-clock timestamps, no paths outside ``out_dir`` — so two campaigns
with the same ``(budget, seed)`` on the same tree render **byte-
identical** summaries.  That property is itself under test: it is what
makes a campaign finding citable ("seed 7, index 23") rather than
anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.artifacts import ExperimentTimeout, watchdog
from repro.fuzz.corpus import ReproCase
from repro.fuzz.generators import make_case, plan_component_count
from repro.fuzz.oracles import ORACLES, applicable_oracles
from repro.fuzz.shrink import DEFAULT_BUDGET, shrink_case

#: per-case wall-clock bound (seconds) unless the caller overrides it
DEFAULT_CASE_SECONDS = 60.0


def _stable_detail(detail: str) -> str:
    """The replay-stable prefix of a violation detail.

    Task ids are a process-global counter, so ``tid=...`` (and anything
    after it) differs between the campaign process and a later
    ``repro fuzz replay`` process; everything before it — invariant
    name, charged/demanded amounts, virtual time — is case state."""
    return detail.split(" tid=")[0]


@dataclass(frozen=True)
class Finding:
    """One violating case, after shrinking."""

    index: int
    oracle: str
    detail: str
    #: size of the original and minimised workloads
    n_requests: int
    shrunk_requests: int
    shrunk_components: int
    #: reproducer filename (relative to out_dir), when one was written
    filename: str = ""


@dataclass
class CampaignSummary:
    """Deterministic digest of one campaign (see module docstring)."""

    seed: int
    budget: int
    n_clean: int = 0
    n_timeouts: int = 0
    #: oracle name -> cases whose gate accepted it
    applicable: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    timeouts: List[int] = field(default_factory=list)

    @property
    def n_findings(self) -> int:
        return len(self.findings)

    def render(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget}",
            f"  clean: {self.n_clean}  findings: {self.n_findings}"
            f"  timeouts: {self.n_timeouts}",
            "  oracle applicability:",
        ]
        for oracle in ORACLES:  # registry order, not dict order
            n = self.applicable.get(oracle.name, 0)
            lines.append(f"    {oracle.name:<24} {n:>4}/{self.budget}")
        if self.timeouts:
            lines.append(f"  timed-out case indices: {self.timeouts}")
        for f in self.findings:
            lines.append(
                f"  [{self.seed}:{f.index}] {f.oracle}: "
                f"{f.n_requests} -> {f.shrunk_requests} requests, "
                f"{f.shrunk_components} fault component(s)"
                + (f" -> {f.filename}" if f.filename else "")
            )
            lines.append(f"      {f.detail}")
        return "\n".join(lines)


def run_campaign(
    budget: int,
    seed: int,
    out_dir: Optional[Union[str, Path]] = None,
    metrics: Optional[object] = None,
    case_seconds: Optional[float] = DEFAULT_CASE_SECONDS,
    shrink_checks: int = DEFAULT_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignSummary:
    """Fuzz ``budget`` cases from ``seed``; shrink and save findings.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`;
    ``progress`` an optional line sink (the CLI passes stderr printing,
    keeping stdout reserved for the deterministic summary).
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    summary = CampaignSummary(seed=seed, budget=budget)
    out: Optional[Path] = None
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)

    c_cases = c_violations = c_timeouts = c_oracle_runs = None
    if metrics is not None:
        c_cases = metrics.counter(
            "repro_fuzz_cases_total", help="fuzz cases executed")
        c_violations = metrics.counter(
            "repro_fuzz_violations_total", help="oracle findings")
        c_timeouts = metrics.counter(
            "repro_fuzz_timeouts_total", help="cases killed by the watchdog")
        c_oracle_runs = metrics.counter(
            "repro_fuzz_oracle_runs_total", help="oracle invocations")

    for index in range(budget):
        case = make_case(seed, index)
        oracles = applicable_oracles(case)
        for oracle in oracles:
            summary.applicable[oracle.name] = \
                summary.applicable.get(oracle.name, 0) + 1
        if c_cases is not None:
            c_cases.inc()
            c_oracle_runs.inc(len(oracles))
        violation = None
        hit = None
        try:
            with watchdog(case_seconds):
                for oracle in oracles:
                    violation = oracle.check(case)
                    if violation is not None:
                        hit = oracle
                        break
                if violation is not None:
                    shrunk = shrink_case(case, hit, max_checks=shrink_checks)
        except ExperimentTimeout:
            summary.n_timeouts += 1
            summary.timeouts.append(index)
            if c_timeouts is not None:
                c_timeouts.inc()
            if progress is not None:
                progress(f"[{seed}:{index}] TIMEOUT after {case_seconds}s")
            continue
        if violation is None:
            summary.n_clean += 1
            if progress is not None and (index + 1) % 10 == 0:
                progress(f"[{seed}:{index}] ... {index + 1}/{budget} clean "
                         f"so far: {summary.n_clean}")
            continue
        if c_violations is not None:
            c_violations.inc()
        filename = ""
        if out is not None:
            # pin what the *shrunk* case says, not the original: the
            # reproducer is the shrunk case, and its violation detail
            # (amounts, virtual times) differs from the full case's
            final = hit.check(shrunk) or violation
            filename = f"repro-{seed}-{index}.json"
            ReproCase.from_fuzz_case(
                shrunk, oracle=hit.name,
                expected=_stable_detail(final.detail),
                expect_violation=True,
                note=f"found by `repro fuzz --budget {budget} --seed {seed}`",
            ).save(out / filename)
        finding = Finding(
            index=index,
            oracle=hit.name,
            detail=violation.detail,
            n_requests=len(case.workload),
            shrunk_requests=len(shrunk.workload),
            shrunk_components=plan_component_count(shrunk.config.faults),
            filename=filename,
        )
        summary.findings.append(finding)
        if progress is not None:
            progress(f"[{seed}:{index}] {hit.name}: shrunk "
                     f"{finding.n_requests} -> {finding.shrunk_requests} "
                     f"requests")
    return summary
