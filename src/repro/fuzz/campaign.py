"""The campaign driver behind ``repro fuzz``.

One campaign is ``budget`` cases drawn from ``(seed, 0..budget-1)``:
generate, sweep the applicable oracles in registry order, shrink the
first finding, and (optionally) write the minimal reproducer as a
``ReproCase`` JSON under ``out_dir``.  Each case runs under the
:func:`repro.experiments.artifacts.watchdog` wall-clock bound —
``SIGALRM`` in the single-process case, the portable thread-timer
:func:`~repro.experiments.artifacts.deadline` in pool workers — so a
case that is slow *in wall time* (as opposed to livelocked in virtual
time, which the per-case ``max_events`` guard catches) is recorded as
a timeout instead of hanging the campaign.

Everything in the summary is derived from the seed and the runs — no
wall-clock timestamps, no paths outside ``out_dir``, no process-local
task ids — so two campaigns with the same ``(budget, seed)`` on the
same tree render **byte-identical** summaries, *including* a campaign
sharded across :mod:`repro.pool` workers (``workers > 0``): each case
digests to canonical JSON in a worker, and the supervisor merges
digests in case-index order.  That property is itself under test: it
is what makes a campaign finding citable ("seed 7, index 23") rather
than anecdotal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.experiments.artifacts import (
    ExperimentTimeout,
    deadline,
    watchdog,
)
from repro.fuzz.corpus import ReproCase
from repro.fuzz.generators import make_case, plan_component_count
from repro.fuzz.oracles import ORACLES, applicable_oracles
from repro.fuzz.shrink import DEFAULT_BUDGET, shrink_case

#: per-case wall-clock bound (seconds) unless the caller overrides it
DEFAULT_CASE_SECONDS = 60.0


def _stable_detail(detail: str) -> str:
    """The replay-stable prefix of a violation detail.

    Task ids are a process-global counter, so ``tid=...`` (and anything
    after it) differs between the campaign process and a later
    ``repro fuzz replay`` process; everything before it — invariant
    name, charged/demanded amounts, virtual time — is case state."""
    return detail.split(" tid=")[0]


@dataclass(frozen=True)
class Finding:
    """One violating case, after shrinking."""

    index: int
    oracle: str
    detail: str
    #: size of the original and minimised workloads
    n_requests: int
    shrunk_requests: int
    shrunk_components: int
    #: reproducer filename (relative to out_dir), when one was written
    filename: str = ""


@dataclass
class CampaignSummary:
    """Deterministic digest of one campaign (see module docstring)."""

    seed: int
    budget: int
    n_clean: int = 0
    n_timeouts: int = 0
    #: oracle name -> cases whose gate accepted it
    applicable: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    timeouts: List[int] = field(default_factory=list)
    #: case indices the pool quarantined (kept crashing workers even
    #: after retries); always empty for single-process campaigns
    quarantined: List[int] = field(default_factory=list)

    @property
    def n_findings(self) -> int:
        return len(self.findings)

    def render(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget}",
            f"  clean: {self.n_clean}  findings: {self.n_findings}"
            f"  timeouts: {self.n_timeouts}",
            "  oracle applicability:",
        ]
        for oracle in ORACLES:  # registry order, not dict order
            n = self.applicable.get(oracle.name, 0)
            lines.append(f"    {oracle.name:<24} {n:>4}/{self.budget}")
        if self.timeouts:
            lines.append(f"  timed-out case indices: {self.timeouts}")
        if self.quarantined:
            lines.append(f"  quarantined case indices: {self.quarantined}")
        for f in self.findings:
            lines.append(
                f"  [{self.seed}:{f.index}] {f.oracle}: "
                f"{f.n_requests} -> {f.shrunk_requests} requests, "
                f"{f.shrunk_components} fault component(s)"
                + (f" -> {f.filename}" if f.filename else "")
            )
            lines.append(f"      {f.detail}")
        return "\n".join(lines)


def _case_digest(
    seed: int,
    index: int,
    budget: int,
    case_seconds: Optional[float],
    shrink_checks: int,
    want_repro: bool,
    portable: bool = False,
) -> Dict[str, Any]:
    """Run one case and digest it to a JSON-safe dict.

    The digest is a pure function of ``(tree, seed, index, budget)`` —
    details are tid-stripped, the reproducer document is embedded
    rather than written — so a digest computed in a pool worker merges
    into the same summary bytes a single-process campaign produces.
    ``portable`` selects the thread-timer deadline over the watchdog
    (pool workers must not touch ``SIGALRM``).
    """
    case = make_case(seed, index)
    oracles = applicable_oracles(case)
    digest: Dict[str, Any] = {
        "index": index,
        "applicable": [o.name for o in oracles],
        "status": "clean",
    }
    guard = deadline if portable else watchdog
    violation = hit = shrunk = None
    try:
        with guard(case_seconds):
            for oracle in oracles:
                violation = oracle.check(case)
                if violation is not None:
                    hit = oracle
                    break
            if violation is not None:
                shrunk = shrink_case(case, hit, max_checks=shrink_checks)
    except ExperimentTimeout:
        digest["status"] = "timeout"
        return digest
    if violation is None:
        return digest
    digest.update(
        status="finding",
        oracle=hit.name,
        detail=_stable_detail(violation.detail),
        n_requests=len(case.workload),
        shrunk_requests=len(shrunk.workload),
        shrunk_components=plan_component_count(shrunk.config.faults),
    )
    if want_repro:
        # pin what the *shrunk* case says, not the original: the
        # reproducer is the shrunk case, and its violation detail
        # (amounts, virtual times) differs from the full case's
        final = hit.check(shrunk) or violation
        digest["filename"] = f"repro-{seed}-{index}.json"
        digest["repro_doc"] = ReproCase.from_fuzz_case(
            shrunk, oracle=hit.name,
            expected=_stable_detail(final.detail),
            expect_violation=True,
            note=f"found by `repro fuzz --budget {budget} --seed {seed}`",
        ).to_json()
    return digest


def run_case_shard(payload: Dict[str, Any]) -> str:
    """Module-level pool task: one campaign case, canonical JSON out."""
    digest = _case_digest(
        payload["seed"],
        payload["index"],
        payload["budget"],
        payload.get("case_seconds"),
        payload.get("shrink_checks", DEFAULT_BUDGET),
        payload.get("want_repro", False),
        portable=True,
    )
    return json.dumps(digest, sort_keys=True, separators=(",", ":")) + "\n"


def case_items(
    budget: int,
    seed: int,
    case_seconds: Optional[float] = DEFAULT_CASE_SECONDS,
    shrink_checks: int = DEFAULT_BUDGET,
    want_repro: bool = False,
) -> List[Tuple[str, Dict[str, Any]]]:
    """``(item_id, payload)`` pool items for one campaign."""
    return [
        (f"case{index}",
         {"seed": seed, "index": index, "budget": budget,
          "case_seconds": case_seconds, "shrink_checks": shrink_checks,
          "want_repro": want_repro})
        for index in range(budget)
    ]


def _merge_digest(
    summary: CampaignSummary,
    digest: Dict[str, Any],
    out: Optional[Path],
    counters: Dict[str, Any],
    progress: Optional[Callable[[str], None]],
    case_seconds: Optional[float],
) -> None:
    """Fold one case digest into the summary, in case-index order."""
    seed, index = summary.seed, digest["index"]
    for name in digest["applicable"]:
        summary.applicable[name] = summary.applicable.get(name, 0) + 1
    if counters:
        counters["cases"].inc()
        counters["oracle_runs"].inc(len(digest["applicable"]))
    if digest["status"] == "timeout":
        summary.n_timeouts += 1
        summary.timeouts.append(index)
        if counters:
            counters["timeouts"].inc()
        if progress is not None:
            progress(f"[{seed}:{index}] TIMEOUT after {case_seconds}s")
        return
    if digest["status"] == "clean":
        summary.n_clean += 1
        if progress is not None and (index + 1) % 10 == 0:
            progress(f"[{seed}:{index}] ... {index + 1}/{summary.budget} "
                     f"clean so far: {summary.n_clean}")
        return
    if counters:
        counters["violations"].inc()
    filename = ""
    if out is not None and "repro_doc" in digest:
        filename = digest["filename"]
        ReproCase.from_json(digest["repro_doc"]).save(out / filename)
    finding = Finding(
        index=index,
        oracle=digest["oracle"],
        detail=digest["detail"],
        n_requests=digest["n_requests"],
        shrunk_requests=digest["shrunk_requests"],
        shrunk_components=digest["shrunk_components"],
        filename=filename,
    )
    summary.findings.append(finding)
    if progress is not None:
        progress(f"[{seed}:{index}] {finding.oracle}: shrunk "
                 f"{finding.n_requests} -> {finding.shrunk_requests} "
                 f"requests")


def run_campaign(
    budget: int,
    seed: int,
    out_dir: Optional[Union[str, Path]] = None,
    metrics: Optional[object] = None,
    case_seconds: Optional[float] = DEFAULT_CASE_SECONDS,
    shrink_checks: int = DEFAULT_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 0,
    max_retries: int = 2,
) -> CampaignSummary:
    """Fuzz ``budget`` cases from ``seed``; shrink and save findings.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`;
    ``progress`` an optional line sink (the CLI passes stderr printing,
    keeping stdout reserved for the deterministic summary).

    ``workers > 0`` shards the cases across a supervised
    :func:`repro.pool.run_pool`.  Case digests merge in index order,
    so the summary (and every reproducer file) is byte-identical to
    the single-process campaign's; a case that keeps killing workers
    is quarantined (pool report under ``out_dir``) and listed in
    ``summary.quarantined`` instead of aborting the campaign.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    summary = CampaignSummary(seed=seed, budget=budget)
    out: Optional[Path] = None
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)

    counters: Dict[str, Any] = {}
    if metrics is not None:
        counters = {
            "cases": metrics.counter(
                "repro_fuzz_cases_total", help="fuzz cases executed"),
            "violations": metrics.counter(
                "repro_fuzz_violations_total", help="oracle findings"),
            "timeouts": metrics.counter(
                "repro_fuzz_timeouts_total",
                help="cases killed by the watchdog"),
            "oracle_runs": metrics.counter(
                "repro_fuzz_oracle_runs_total", help="oracle invocations"),
        }

    if workers > 0:
        from repro.pool import PoolConfig, run_pool

        report = run_pool(
            case_items(budget, seed, case_seconds=case_seconds,
                       shrink_checks=shrink_checks,
                       want_repro=out is not None),
            run_case_shard,
            PoolConfig(workers=workers, max_retries=max_retries),
            quarantine_path=(str(out / "quarantine.json")
                             if out is not None else None),
            metrics=metrics,
            progress=progress,
        )
        for index, text in enumerate(report.results):
            if text is None:  # quarantined, not abandoned silently
                summary.quarantined.append(index)
                continue
            _merge_digest(summary, json.loads(text), out, counters,
                          progress, case_seconds)
        return summary

    for index in range(budget):
        digest = _case_digest(seed, index, budget, case_seconds,
                              shrink_checks, want_repro=out is not None)
        _merge_digest(summary, digest, out, counters, progress,
                      case_seconds)
    return summary
