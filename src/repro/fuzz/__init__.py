"""repro.fuzz: seeded chaos fuzzing with metamorphic oracles.

The invariant checker (PR 3) and differential battery only audit
workloads a human thought to write.  This package searches for the
workloads nobody thought to write:

* :mod:`repro.fuzz.generators` — biased random
  workload × fault-plan × config triples, every case a pure function of
  ``(campaign_seed, index)`` so any case replays bit-identically from
  its id alone;
* :mod:`repro.fuzz.oracles` — the existing conservation-law and
  differential oracles plus metamorphic properties (adding idle cores,
  scaling durations, dropping fault components, permuting equal-time
  arrivals);
* :mod:`repro.fuzz.shrink` — delta debugging that reduces a failing
  case to a minimal reproducer;
* :mod:`repro.fuzz.corpus` — ``ReproCase`` JSON serialization and the
  checked-in regression corpus under ``tests/corpus/``;
* :mod:`repro.fuzz.campaign` — the ``repro fuzz`` campaign driver.
"""

from repro.fuzz.campaign import CampaignSummary, run_campaign
from repro.fuzz.corpus import ReproCase, load_corpus
from repro.fuzz.generators import FuzzCase, make_case
from repro.fuzz.oracles import ORACLES, Violation, applicable_oracles
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CampaignSummary",
    "FuzzCase",
    "ORACLES",
    "ReproCase",
    "Violation",
    "applicable_oracles",
    "load_corpus",
    "make_case",
    "run_campaign",
    "shrink_case",
]
