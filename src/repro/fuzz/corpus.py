"""The regression corpus: replayable ``ReproCase`` JSON files.

A shrunk finding is only worth anything if it outlives the campaign
that found it, so every case serialises to a small, strict, versioned
JSON document (schema ``repro.fuzz/1``) that pins:

* the exact workload (req_ids, arrivals, packed burst strings — the
  same lossless ``cpu:us;io:us`` format as :mod:`repro.workload.io`);
* the exact run configuration (machine, fault plan, policies,
  ``max_events`` guard);
* which oracle flagged it and what the violation said
  (``expect_violation`` distinguishes a pinned *open* reproducer from a
  hard case checked in to stay green).

Files under ``tests/corpus/`` are replayed by a tier-1 test: a healthy
tree must keep every green case green, and any future change that trips
one gets the minimal reproducer as its bug report.  Loading is strict —
unknown fields, bad types, or an unknown oracle fail loudly rather than
replaying something other than what was saved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.experiments.runner import RunConfig
from repro.faults.plan import FaultPlan
from repro.faults.policy import AdmissionControl, RetryPolicy
from repro.fuzz.generators import ClusterCase, FuzzCase
from repro.fuzz.oracles import ORACLE_BY_NAME, Violation
from repro.machine.base import MachineParams
from repro.workload.io import pack_bursts, unpack_bursts
from repro.workload.spec import RequestSpec, Workload

SCHEMA = "repro.fuzz/1"


def _strict(data: dict, known: Tuple[str, ...], where: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"{where} must be a JSON object, "
                         f"got {type(data).__name__}")
    unknown = set(data) - set(known)
    if unknown:
        raise ValueError(f"unknown {where} fields: {sorted(unknown)} "
                         f"(known: {sorted(known)})")


@dataclass(frozen=True)
class ReproCase:
    """One serialised reproducer (see module docstring)."""

    oracle: str
    workload: Workload
    config: RunConfig
    #: does replaying this case on a healthy tree reproduce a violation?
    #: False = a hard case pinned to stay green (the regression corpus);
    #: True = an open finding awaiting a fix.
    expect_violation: bool = False
    #: the violation detail observed when the case was found (kept for
    #: the human reading the file; replay matches on it when expecting)
    expected: str = ""
    note: str = ""
    campaign_seed: Optional[int] = None
    index: Optional[int] = None
    #: set when the case runs through the fault-tolerant cluster tier
    cluster: Optional[ClusterCase] = None

    def __post_init__(self) -> None:
        if self.oracle not in ORACLE_BY_NAME:
            raise ValueError(
                f"unknown oracle {self.oracle!r} "
                f"(known: {sorted(ORACLE_BY_NAME)})"
            )

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def as_fuzz_case(self) -> FuzzCase:
        return FuzzCase(
            campaign_seed=self.campaign_seed if self.campaign_seed is not None else -1,
            index=self.index if self.index is not None else -1,
            workload=self.workload,
            config=self.config,
            cluster=self.cluster,
        )

    def replay(self) -> Optional[Violation]:
        """Run the named oracle against the pinned case."""
        oracle = ORACLE_BY_NAME[self.oracle]
        case = self.as_fuzz_case()
        if not oracle.applies(case):
            raise ValueError(
                f"corpus case no longer satisfies the {self.oracle!r} "
                f"oracle's applicability gate — the saved config and the "
                f"oracle have drifted apart"
            )
        return oracle.check(case)

    def replays_as_expected(self) -> Tuple[bool, str]:
        """(ok, message): does replay match ``expect_violation``?"""
        violation = self.replay()
        if self.expect_violation:
            if violation is None:
                return False, ("expected a violation but the case now "
                               "passes — fixed? promote it to a green "
                               "corpus case (expect_violation=false)")
            if self.expected and self.expected not in violation.detail:
                return False, (f"violation reproduced but changed: "
                               f"{violation.detail!r} does not contain "
                               f"{self.expected!r}")
            return True, f"violation reproduced: {violation.render()}"
        if violation is not None:
            return False, f"regression: {violation.render()}"
        return True, "green"

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        cfg = self.config
        data: dict = {
            "schema": SCHEMA,
            "oracle": self.oracle,
            "expect_violation": self.expect_violation,
            "expected": self.expected,
            "note": self.note,
            "campaign_seed": self.campaign_seed,
            "index": self.index,
            "workload": {
                "meta": {
                    k: v for k, v in self.workload.meta.items()
                    if isinstance(v, (str, int, float, bool, type(None)))
                },
                "requests": [
                    {
                        "req_id": r.req_id,
                        "arrival": r.arrival,
                        "bursts": pack_bursts(r.bursts),
                        "name": r.name,
                        "app": r.app,
                    }
                    for r in self.workload
                ],
            },
            "config": {
                "scheduler": cfg.scheduler,
                "engine": cfg.engine,
                "machine": {
                    "n_cores": cfg.machine.n_cores,
                    "ctx_switch_cost": cfg.machine.ctx_switch_cost,
                    "speed": cfg.machine.speed,
                    "fair_class": cfg.machine.fair_class,
                },
                "notify_latency": cfg.notify_latency,
                "faults": cfg.faults.to_json() if cfg.faults else None,
                "retry": {
                    "max_attempts": cfg.retry.max_attempts,
                    "base_backoff": cfg.retry.base_backoff,
                    "max_backoff": cfg.retry.max_backoff,
                    "seed": cfg.retry.seed,
                } if cfg.retry else None,
                "admission": {
                    "max_outstanding": cfg.admission.max_outstanding,
                } if cfg.admission else None,
                "timeout": cfg.timeout,
                "max_events": cfg.max_events,
            },
            "cluster": {
                "n_hosts": self.cluster.n_hosts,
                "scheduler": self.cluster.scheduler,
                "hedge": self.cluster.hedge,
            } if self.cluster else None,
        }
        return data

    @classmethod
    def from_json(cls, data: dict) -> "ReproCase":
        _strict(data, ("schema", "oracle", "expect_violation", "expected",
                       "note", "campaign_seed", "index", "workload",
                       "config", "cluster"), "ReproCase")
        if data.get("schema") != SCHEMA:
            raise ValueError(f"unsupported schema {data.get('schema')!r} "
                             f"(expected {SCHEMA!r})")
        wl = data["workload"]
        _strict(wl, ("meta", "requests"), "workload")
        requests: List[RequestSpec] = []
        for i, row in enumerate(wl["requests"]):
            _strict(row, ("req_id", "arrival", "bursts", "name", "app"),
                    f"request[{i}]")
            requests.append(RequestSpec(
                req_id=int(row["req_id"]),
                arrival=row["arrival"],
                bursts=unpack_bursts(row["bursts"]),
                name=str(row.get("name", "")),
                app=str(row.get("app", "")),
            ))
        workload = Workload(requests, dict(wl.get("meta") or {}))

        c = data["config"]
        _strict(c, ("scheduler", "engine", "machine", "notify_latency",
                    "faults", "retry", "admission", "timeout",
                    "max_events"), "config")
        m = c["machine"]
        _strict(m, ("n_cores", "ctx_switch_cost", "speed", "fair_class"),
                "machine")
        config = RunConfig(
            scheduler=c["scheduler"],
            engine=c["engine"],
            machine=MachineParams(
                n_cores=int(m["n_cores"]),
                ctx_switch_cost=int(m["ctx_switch_cost"]),
                speed=float(m.get("speed", 1.0)),
                fair_class=str(m.get("fair_class", "cfs")),
            ),
            notify_latency=int(c["notify_latency"]),
            faults=FaultPlan.from_json(c["faults"]) if c["faults"] else None,
            retry=RetryPolicy(**c["retry"]) if c["retry"] else None,
            admission=AdmissionControl(**c["admission"])
            if c["admission"] else None,
            timeout=c["timeout"],
            max_events=c["max_events"],
        )
        cluster = None
        if data.get("cluster") is not None:
            cl = data["cluster"]
            _strict(cl, ("n_hosts", "scheduler", "hedge"), "cluster")
            cluster = ClusterCase(
                n_hosts=int(cl["n_hosts"]),
                scheduler=str(cl["scheduler"]),
                hedge=bool(cl["hedge"]),
            )
        return cls(
            oracle=str(data["oracle"]),
            workload=workload,
            config=config,
            expect_violation=bool(data.get("expect_violation", False)),
            expected=str(data.get("expected", "")),
            note=str(data.get("note", "")),
            campaign_seed=data.get("campaign_seed"),
            index=data.get("index"),
            cluster=cluster,
        )

    @classmethod
    def from_fuzz_case(
        cls,
        case: FuzzCase,
        oracle: str,
        expected: str = "",
        expect_violation: bool = True,
        note: str = "",
    ) -> "ReproCase":
        return cls(
            oracle=oracle,
            workload=case.workload,
            config=case.config,
            expect_violation=expect_violation,
            expected=expected,
            note=note,
            campaign_seed=case.campaign_seed if case.campaign_seed >= 0 else None,
            index=case.index if case.index >= 0 else None,
            cluster=case.cluster,
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReproCase":
        try:
            data = json.loads(Path(path).read_text())
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
        try:
            return cls.from_json(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: {exc}") from None


def load_corpus(directory: Union[str, Path]) -> List[Tuple[Path, ReproCase]]:
    """Load every ``*.json`` reproducer under ``directory``, sorted by
    filename so iteration order (and CI output) is deterministic."""
    root = Path(directory)
    out: List[Tuple[Path, ReproCase]] = []
    for path in sorted(root.glob("*.json")):
        out.append((path, ReproCase.load(path)))
    return out
