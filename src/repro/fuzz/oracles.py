"""Oracles: what "wrong" means for a generated case.

Four families, each with an applicability gate so a property is only
asserted on configurations where it mathematically holds:

* **invariant** — replay the case with the runtime conservation-law
  checker (PR 3) forced on; any :class:`InvariantViolation`,
  :class:`SimulationError` (event-budget livelock) or unfinished-request
  error is a finding.  Applies to every case.
* **differential** — the engine diff (fluid vs discrete) and the IDEAL
  lower-bound oracle from :mod:`repro.invariants.diff`.  Engine diffing
  needs the ``cfs`` fair class (the fluid model has no EEVDF) and no
  timing-dependent failure handling (timeout/admission outcomes
  legitimately differ across engines); the IDEAL bound needs a nominal
  run.
* **metamorphic** — relations between *pairs* of runs:

  - *idle-hosts*: adding two idle cores never makes any request slower
    (fluid ``cfs`` is egalitarian processor sharing — extra capacity is
    weakly good for everyone).  Exact failure-set equality rides along:
    crash/coldstart draws are pure in ``(seed, req_id, attempt)`` and
    the crash timer is a pure wall-clock delay, so outcomes cannot
    depend on core count when no timeout/admission is armed.
  - *scaling*: scaling every burst and arrival by ``k`` scales every
    turnaround by ``k`` (with context-switch cost pinned to zero the
    fluid model is scale-free up to integer rounding).
  - *drop-fault*: removing one fault-plan component never makes a new
    request fail — the reduced run's failed set is a subset of the
    original's, **exactly** (same purity argument as idle-hosts).
  - *permute*: requests arriving at the same instant are
    interchangeable — swapping their bodies leaves the turnaround
    multiset unchanged.

* **reconstruction** — replay with tracing on and require that every
  request's causal timeline (:mod:`repro.why`) partitions its
  ``[arrival, finish]`` window *exactly* (the ``why-exact-sum``
  oracle).  Applies to every single-machine case: the generator only
  draws schedulers that emit the full ``task.*`` lifecycle.

* **cluster** — cases carrying a :class:`ClusterCase` run through the
  fault-tolerant serving tier instead (``cluster-exactly-once``):
  health-checked failover, hedged requests and domain outages must
  still deliver exactly one terminal outcome per request, enforced by
  the invariant checker's accounting closure on the merged records.
  All other oracles gate on ``case.cluster is None`` — their properties
  are stated for a single shared machine.

Slack constants for the inexact properties are calibrated by running a
large campaign against the healthy tree: they are as tight as the
calibration allows while keeping the false-positive rate at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.experiments.runner import RunConfig, run_workload
from repro.faults.plan import FaultPlan
from repro.fuzz.generators import FuzzCase
from repro.invariants.checker import InvariantViolation
from repro.invariants.diff import DiffTolerance, diff_engines, diff_oracle
from repro.sim.engine import SimulationError
from repro.sim.task import Burst
from repro.workload.spec import RequestSpec, Workload

#: aggregate engine-diff checks need this many ok requests.  Fuzz cases
#: top out below this, so at fuzz scale only the *exact* laws (status,
#: attempts, service=demand) and the per-request round bound apply: the
#: mean/median tolerances are statistical properties calibrated on
#: 150+ request FaaSBench workloads at load <= 1.0, and the fuzzer
#: deliberately generates regimes far outside that calibration
#: (load 1.6, 48 heavy-tail requests on one core).
_DIFF_MIN_N = 50

#: slack for the inexact metamorphic properties (calibrated: the fluid
#: engine works in integer microseconds, so a handful of rounding
#: boundaries per residence can move a turnaround by a few slices)
_META_REL = 0.02
_META_ABS = 2_000


@dataclass(frozen=True)
class Violation:
    """One oracle finding, with a deterministic human-readable detail."""

    oracle: str
    detail: str

    def render(self) -> str:
        return f"[{self.oracle}] {self.detail}"


@dataclass(frozen=True)
class Oracle:
    """A named property: ``applies`` gates, ``check`` judges."""

    name: str
    applies: Callable[[FuzzCase], bool]
    check: Callable[[FuzzCase], Optional[Violation]]


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------
def _run(case: FuzzCase, **overrides):
    """Execute the case with invariants pinned *off* (the invariant
    oracle owns that axis; here a crash must be attributable to the
    property under test, not the checker)."""
    cfg = replace(case.config, invariants=False, **overrides)
    return run_workload(case.workload, cfg)


def _turnarounds(result) -> Dict[int, int]:
    return {r.req_id: r.turnaround for r in result.records if r.status == "ok"}


def _failed(result) -> Set[int]:
    return {r.req_id for r in result.records if r.status != "ok"}


def _crash_violation(name: str, exc: Exception) -> Violation:
    return Violation(name, f"variant run crashed: {type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# invariant family
# ----------------------------------------------------------------------
def _check_invariant(case: FuzzCase) -> Optional[Violation]:
    cfg = replace(case.config, invariants=True)
    try:
        run_workload(case.workload, cfg)
    except InvariantViolation as exc:
        return Violation("invariant", str(exc))
    except SimulationError as exc:
        return Violation("invariant", f"simulation aborted: {exc}")
    except RuntimeError as exc:
        return Violation("invariant", f"run failed: {exc}")
    return None


# ----------------------------------------------------------------------
# differential family
# ----------------------------------------------------------------------
def _engines_applies(case: FuzzCase) -> bool:
    cfg = case.config
    return (
        case.cluster is None
        and cfg.machine.fair_class == "cfs"
        and cfg.timeout is None
        and cfg.admission is None
    )


def _engine_tolerance(case: FuzzCase) -> DiffTolerance:
    """Contention-aware engine-diff tolerance for this case.

    The documented fluid-model error is "up to one scheduling round per
    residence"; a round with ``depth`` runnable tasks per core costs
    ``depth * (min_granularity + ctx)`` of queue delay in the discrete
    engine while fluid processor sharing starts everyone immediately.
    A short request under heavy contention therefore diverges by whole
    rounds — tiny in absolute terms per competing task, unbounded as a
    *ratio* of its own microsecond-scale turnaround.  The absolute
    allowance scales with the case's worst-case queue depth (4 rounds:
    I/O-interleaved requests re-queue once per residence).
    """
    cfg = case.config
    depth = -(-len(case.workload) // cfg.machine.n_cores)  # ceil
    round_us = cfg.machine.cfs.min_granularity + cfg.machine.ctx_switch_cost
    return DiffTolerance(
        per_request_abs=1_000 + 4 * depth * round_us,
        aggregate_min_n=_DIFF_MIN_N,
    )


def _check_engines(case: FuzzCase) -> Optional[Violation]:
    cfg = replace(case.config, invariants=False)
    tol = _engine_tolerance(case)
    try:
        report = diff_engines(case.workload, cfg, tol=tol)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation("differential-engines", exc)
    if report.ok:
        return None
    return Violation("differential-engines",
                     "; ".join(report.divergences[:3]))


def _ideal_applies(case: FuzzCase) -> bool:
    return case.cluster is None and not case.config.fault_handling


def _check_ideal(case: FuzzCase) -> Optional[Violation]:
    cfg = replace(case.config, invariants=False)
    try:
        report = diff_oracle(case.workload, cfg)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation("differential-ideal", exc)
    if report.ok:
        return None
    return Violation("differential-ideal",
                     "; ".join(report.divergences[:3]))


# ----------------------------------------------------------------------
# metamorphic family
# ----------------------------------------------------------------------
def _fluid_cfs(case: FuzzCase) -> bool:
    return (case.cluster is None and case.config.engine == "fluid"
            and case.config.scheduler == "cfs")


def _idle_hosts_applies(case: FuzzCase) -> bool:
    # timeout/admission outcomes legitimately depend on timing, which
    # depends on capacity — the monotonicity claim would be false
    return (_fluid_cfs(case) and case.config.timeout is None
            and case.config.admission is None)


def _check_idle_hosts(case: FuzzCase) -> Optional[Violation]:
    name = "metamorphic-idle-hosts"
    wider = replace(case.config.machine,
                    n_cores=case.config.machine.n_cores + 2)
    try:
        base = _run(case)
        more = _run(case, machine=wider)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation(name, exc)
    if _failed(base) != _failed(more):
        gained = sorted(_failed(more) - _failed(base))
        lost = sorted(_failed(base) - _failed(more))
        return Violation(
            name,
            f"failure set changed with +2 idle cores: "
            f"new failures {gained[:5]}, vanished failures {lost[:5]} "
            f"(fault draws are pure in (seed, req_id, attempt), so "
            f"capacity cannot change outcomes)",
        )
    t_base, t_more = _turnarounds(base), _turnarounds(more)
    for req_id in sorted(t_base):
        a, b = t_base[req_id], t_more.get(req_id)
        if b is None:
            continue
        if b > a * (1 + _META_REL) + _META_ABS:
            return Violation(
                name,
                f"req {req_id}: turnaround grew from {a}us to {b}us "
                f"after adding 2 idle cores",
            )
    return None


def _scaling_applies(case: FuzzCase) -> bool:
    return _fluid_cfs(case) and not case.config.fault_handling


def _scaled_workload(workload: Workload, k: int) -> Workload:
    requests = [
        replace(
            spec,
            arrival=spec.arrival * k,
            bursts=tuple(Burst(b.kind, b.duration * k) for b in spec.bursts),
        )
        for spec in workload
    ]
    return Workload(requests, dict(workload.meta))


def _check_scaling(case: FuzzCase) -> Optional[Violation]:
    name = "metamorphic-scaling"
    k = 2
    # pin context-switch cost to zero: it is a fixed per-round price
    # that does not scale with the workload, so only the ctx-free
    # fluid model is scale-free
    ctx_free = replace(case.config.machine, ctx_switch_cost=0)
    scaled = case.with_workload(_scaled_workload(case.workload, k))
    try:
        base = _run(case, machine=ctx_free)
        big = _run(scaled, machine=ctx_free)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation(name, exc)
    t_base, t_big = _turnarounds(base), _turnarounds(big)
    if set(t_base) != set(t_big):
        return Violation(name, "request outcomes changed under uniform "
                               f"x{k} duration scaling")
    for req_id in sorted(t_base):
        want = k * t_base[req_id]
        got = t_big[req_id]
        if abs(got - want) > _META_ABS + _META_REL * want:
            return Violation(
                name,
                f"req {req_id}: turnaround {t_base[req_id]}us scaled to "
                f"{got}us, expected ~{want}us under uniform x{k} scaling",
            )
    return None


def _drop_fault_applies(case: FuzzCase) -> bool:
    return (case.cluster is None
            and case.config.faults is not None
            and case.config.timeout is None
            and case.config.admission is None)


def _reduced_plans(plan: FaultPlan) -> List[Tuple[str, FaultPlan]]:
    """One reduced plan per removable component."""
    out: List[Tuple[str, FaultPlan]] = []
    if plan.crash_prob > 0:
        out.append(("crash_prob", replace(plan, crash_prob=0.0)))
    if plan.coldstart_fail_prob > 0:
        out.append(("coldstart_fail_prob",
                    replace(plan, coldstart_fail_prob=0.0)))
    if plan.stragglers:
        out.append(("stragglers", replace(plan, stragglers=())))
    return out


def _check_drop_fault(case: FuzzCase) -> Optional[Violation]:
    name = "metamorphic-drop-fault"
    try:
        base = _run(case)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation(name, exc)
    base_failed = _failed(base)
    for component, reduced in _reduced_plans(case.config.faults):
        faults = None if reduced.is_null else reduced
        try:
            less = _run(case, faults=faults)
        except (SimulationError, RuntimeError) as exc:
            return _crash_violation(name, exc)
        gained = _failed(less) - base_failed
        if gained:
            return Violation(
                name,
                f"removing {component} created new failures "
                f"{sorted(gained)[:5]} (failure draws are pure per "
                f"(seed, req_id, attempt); removing a fault source can "
                f"only shrink the failed set)",
            )
    return None


def _tie_groups(workload: Workload) -> List[List[RequestSpec]]:
    groups: Dict[int, List[RequestSpec]] = {}
    for spec in workload:
        groups.setdefault(spec.arrival, []).append(spec)
    return [g for g in groups.values() if len(g) >= 2]


def _permute_applies(case: FuzzCase) -> bool:
    return (_fluid_cfs(case) and not case.config.fault_handling
            and bool(_tie_groups(case.workload)))


def _permuted_workload(workload: Workload) -> Workload:
    """Within every equal-arrival group, reverse which request gets
    which body (bursts/name/app).  req_ids and arrivals stay put."""
    swap: Dict[int, RequestSpec] = {}
    for group in _tie_groups(workload):
        for spec, donor in zip(group, reversed(group)):
            swap[spec.req_id] = replace(
                spec, bursts=donor.bursts, name=donor.name, app=donor.app
            )
    requests = [swap.get(spec.req_id, spec) for spec in workload]
    return Workload(requests, dict(workload.meta))


def _check_permute(case: FuzzCase) -> Optional[Violation]:
    name = "metamorphic-permute"
    permuted = case.with_workload(_permuted_workload(case.workload))
    try:
        base = _run(case)
        other = _run(permuted)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation(name, exc)
    t_base = sorted(_turnarounds(base).values())
    t_other = sorted(_turnarounds(other).values())
    if len(t_base) != len(t_other):
        return Violation(name, "request count changed under equal-time "
                               "arrival permutation")
    for i, (a, b) in enumerate(zip(t_base, t_other)):
        if abs(a - b) > _META_ABS + _META_REL * max(a, b):
            return Violation(
                name,
                f"sorted turnaround #{i} differs: {a}us vs {b}us after "
                f"permuting bodies among equal-time arrivals",
            )
    return None


def _check_why_exact_sum(case: FuzzCase) -> Optional[Violation]:
    """Replay with tracing on; every request's causal timeline must
    partition ``[arrival, finish]`` exactly (repro.why).

    Applies to *every* generated case: the generator only draws from
    cfs/fifo/rr/sfs on the two engines, all of which emit the full
    ``task.*`` lifecycle.  A gap, an overlap, or a sum mismatch means
    either an engine dropped/duplicated a lifecycle event or the
    reconstruction mislabelled one — both bugs.
    """
    from repro.trace import TraceRecorder
    from repro.why import build_timelines

    name = "why-exact-sum"
    trace = TraceRecorder()
    cfg = replace(case.config, invariants=False)
    try:
        result = run_workload(case.workload, cfg, trace=trace)
    except (SimulationError, RuntimeError) as exc:
        return _crash_violation(name, exc)
    timelines = build_timelines(result.records, trace)
    for tl in timelines.values():
        if not tl.exact:
            return Violation(
                name,
                f"request {tl.req_id} ({tl.status}, {tl.attempts} "
                f"attempts): segments sum to {tl.total}us but end-to-end "
                f"is {tl.end_to_end}us — the timeline must partition "
                f"[arrival, finish] exactly",
            )
    return None


# ----------------------------------------------------------------------
# cluster family
# ----------------------------------------------------------------------
def run_cluster_case(case: FuzzCase, invariants: bool = True):
    """Replay a cluster case through the resilient serving tier.

    The single-machine config supplies the per-host deployment (machine,
    engine, fault plan, policies); the :class:`ClusterCase` supplies the
    shape.  Failover is always on — it is the subsystem under test —
    and hedging follows the case's draw.
    """
    from repro.faas.cluster import ClusterConfig, run_cluster
    from repro.faas.openlambda import OpenLambdaConfig
    from repro.faas.resilience import HedgePolicy, ResilienceConfig

    cfg = case.config
    cl = case.cluster
    host = OpenLambdaConfig(
        machine=cfg.machine,
        scheduler=cl.scheduler,
        engine=cfg.engine,
        faults=cfg.faults,
        retry=cfg.retry,
        admission=cfg.admission,
        timeout=cfg.timeout,
    )
    resilience = ResilienceConfig(
        hedge=HedgePolicy(delay=20_000) if cl.hedge else None,
    )
    return run_cluster(
        case.workload,
        ClusterConfig(n_hosts=cl.n_hosts, host=host,
                      placement="least_loaded", resilience=resilience),
        invariants=invariants,
    )


def _check_cluster_exactly_once(case: FuzzCase) -> Optional[Violation]:
    """Exactly one terminal outcome per request, under failover,
    hedging, domain outages and retry — the accounting closure inside
    :func:`repro.faas.cluster.run_cluster` (invariants forced on) plus
    the fault-closure counter cross-checks."""
    name = "cluster-exactly-once"
    try:
        run_cluster_case(case, invariants=True)
    except InvariantViolation as exc:
        return Violation(name, str(exc))
    except SimulationError as exc:
        return Violation(name, f"simulation aborted: {exc}")
    except RuntimeError as exc:
        return Violation(name, f"run failed: {exc}")
    return None


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
ORACLES: Tuple[Oracle, ...] = (
    Oracle("invariant", lambda case: case.cluster is None, _check_invariant),
    Oracle("differential-engines", _engines_applies, _check_engines),
    Oracle("differential-ideal", _ideal_applies, _check_ideal),
    Oracle("metamorphic-idle-hosts", _idle_hosts_applies, _check_idle_hosts),
    Oracle("metamorphic-scaling", _scaling_applies, _check_scaling),
    Oracle("metamorphic-drop-fault", _drop_fault_applies, _check_drop_fault),
    Oracle("metamorphic-permute", _permute_applies, _check_permute),
    Oracle("why-exact-sum", lambda case: case.cluster is None,
           _check_why_exact_sum),
    Oracle("cluster-exactly-once", lambda case: case.cluster is not None,
           _check_cluster_exactly_once),
)

ORACLE_BY_NAME: Dict[str, Oracle] = {o.name: o for o in ORACLES}


def applicable_oracles(case: FuzzCase) -> Tuple[Oracle, ...]:
    """The oracles whose gates accept this case, in registry order."""
    return tuple(o for o in ORACLES if o.applies(case))


def check_case(case: FuzzCase) -> Optional[Violation]:
    """Run every applicable oracle; return the first finding."""
    for oracle in applicable_oracles(case):
        violation = oracle.check(case)
        if violation is not None:
            return violation
    return None
