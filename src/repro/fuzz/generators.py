"""Seeded, biased case generation.

A fuzz case is a ``(workload, run-config)`` pair — the config carries
the fault plan and failure handling — built from a single hashed
generator keyed by ``(campaign_seed, index)``.  Nothing else feeds the
draw, so any case in any campaign replays bit-identically from its id
alone: ``make_case(seed, index)`` IS the reproducer, before the
shrinker even starts.

The biases target the corners the paper's claims live in: heavy-tail
duration mixes (short functions drowning among long ones — the
FILTER/late-bind motivation), bursty and simultaneous arrivals (event
tie-breaks), straggler + crash combos, and every scheduler family the
repo models (CFS, RT via FIFO/RR, EEVDF via the discrete fair class,
and SFS on top).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.runner import RunConfig
from repro.faults.plan import FaultPlan
from repro.faults.policy import AdmissionControl, RetryPolicy
from repro.machine.base import MachineParams
from repro.sim.task import Burst, BurstKind
from repro.workload.spec import RequestSpec, Workload

#: hash salt separating the case stream from every other hashed stream
#: in the repo (fault decisions use 0xC1/0xC2, backoff 0xB0)
_SALT_CASE = 0xF0


@dataclass(frozen=True)
class ClusterCase:
    """The cluster dimension of a fuzz case (``None`` = single machine).

    Small on purpose — 2 to 4 hosts is enough to exercise fault
    domains, failover re-dispatch and hedged requests; the shrinker
    folds toward 2 hosts with hedging off.  The fault domains and
    domain outage windows themselves live on the case's
    :class:`~repro.faults.plan.FaultPlan` (they are plan data, like any
    other host failure).
    """

    n_hosts: int
    scheduler: str = "cfs"
    hedge: bool = False

    def __post_init__(self) -> None:
        if self.n_hosts < 2:
            raise ValueError("cluster cases need >= 2 hosts")
        if self.scheduler not in ("cfs", "sfs"):
            raise ValueError("cluster cases run 'cfs' or 'sfs'")


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario, identified by ``(campaign_seed, index)``."""

    campaign_seed: int
    index: int
    workload: Workload
    config: RunConfig
    #: when set, the case runs through the fault-tolerant cluster tier
    #: (repro.faas.cluster + resilience) instead of a bare machine
    cluster: Optional[ClusterCase] = None

    @property
    def case_id(self) -> Tuple[int, int]:
        return (self.campaign_seed, self.index)

    def with_workload(self, workload: Workload) -> "FuzzCase":
        return replace(self, workload=workload)

    def with_config(self, config: RunConfig) -> "FuzzCase":
        return replace(self, config=config)

    def with_cluster(self, cluster: Optional["ClusterCase"]) -> "FuzzCase":
        return replace(self, cluster=cluster)


# ----------------------------------------------------------------------
# biased component draws
# ----------------------------------------------------------------------
def _durations(rng: np.random.Generator, n: int) -> np.ndarray:
    """CPU demands (us) from one of three shapes, heavy tails favoured."""
    profile = rng.choice(3, p=(0.35, 0.40, 0.25))
    if profile == 0:  # short-uniform: everything finishes in a slice
        d = rng.uniform(200, 5_000, size=n)
    elif profile == 1:  # heavy tail: the paper's Table-I regime
        d = np.exp(rng.normal(np.log(2_000), 1.8, size=n))
        d = np.minimum(d, 2_000_000)
    else:  # bimodal: short crowd + a few multi-second hogs
        d = rng.uniform(200, 3_000, size=n)
        long_mask = rng.random(n) < 0.2
        d[long_mask] = rng.uniform(200_000, 1_500_000, size=int(long_mask.sum()))
    return np.maximum(np.rint(d), 1).astype(np.int64)


def _arrivals(rng: np.random.Generator, n: int, total_cpu: int,
              n_cores: int) -> np.ndarray:
    """Absolute arrival times; ties are a feature, not a bug."""
    kind = rng.choice(3, p=(0.5, 0.3, 0.2))
    if kind == 0:  # poisson at a drawn load
        load = rng.uniform(0.5, 1.6)
        mean_iat = max(1.0, total_cpu / (n_cores * load * n))
        iats = np.maximum(np.rint(rng.exponential(mean_iat, size=n)), 0)
        return np.cumsum(iats.astype(np.int64))
    if kind == 1:  # bursts: clusters of equal-time arrivals
        n_clusters = int(rng.integers(1, max(2, n // 2) + 1))
        times = np.sort(rng.integers(0, max(1, total_cpu // max(1, n_cores)),
                                     size=n_clusters))
        picks = rng.integers(0, n_clusters, size=n)
        return np.sort(times[picks]).astype(np.int64)
    return np.zeros(n, dtype=np.int64)  # thundering herd at t=0


def _bursts(rng: np.random.Generator, cpu_us: int) -> Tuple[Burst, ...]:
    """Mostly pure-CPU; sometimes a leading I/O or an I/O sandwich."""
    shape = rng.choice(3, p=(0.7, 0.2, 0.1))
    if shape == 0:
        return (Burst(BurstKind.CPU, int(cpu_us)),)
    io = int(rng.integers(1_000, 50_000))
    if shape == 1:  # leading I/O (the paper's IO knob)
        return (Burst(BurstKind.IO, io), Burst(BurstKind.CPU, int(cpu_us)))
    head = max(1, int(cpu_us) // 2)
    tail = max(1, int(cpu_us) - head)
    return (Burst(BurstKind.CPU, head), Burst(BurstKind.IO, io),
            Burst(BurstKind.CPU, tail))


def _fault_plan(rng: np.random.Generator) -> Optional[FaultPlan]:
    if rng.random() >= 0.45:
        return None
    crash = float(rng.choice((0.0, 0.1, 0.3), p=(0.3, 0.4, 0.3)))
    cold = float(rng.choice((0.0, 0.1), p=(0.7, 0.3)))
    stragglers: Tuple[Tuple[int, float], ...] = ()
    if rng.random() < 0.35:
        # host 0 is the only host a bare-machine run has
        stragglers = ((0, float(np.round(rng.uniform(0.3, 0.9), 3))),)
    plan = FaultPlan(
        seed=int(rng.integers(0, 2**31)),
        crash_prob=crash,
        coldstart_fail_prob=cold,
        stragglers=stragglers,
    )
    return None if plan.is_null else plan


def _scheduler_engine(rng: np.random.Generator) -> Tuple[str, str, str]:
    """(scheduler, engine, fair_class) covering CFS/RT/EEVDF/SFS."""
    scheduler = str(rng.choice(
        ("cfs", "sfs", "fifo", "rr"), p=(0.35, 0.35, 0.15, 0.15)))
    engine = str(rng.choice(("fluid", "discrete"), p=(0.6, 0.4)))
    fair_class = "cfs"
    if engine == "discrete" and scheduler in ("cfs", "sfs") \
            and rng.random() < 0.35:
        fair_class = "eevdf"  # the 6.6+ kernel fair class
    return scheduler, engine, fair_class


# ----------------------------------------------------------------------
# the generator
# ----------------------------------------------------------------------
def make_case(campaign_seed: int, index: int) -> FuzzCase:
    """Build case ``(campaign_seed, index)``; pure, replayable, biased.

    Every draw comes from one hashed generator keyed by the id, in a
    fixed order — two calls return structurally identical cases.
    """
    rng = np.random.default_rng((campaign_seed, index, _SALT_CASE))

    n = int(rng.integers(1, 25))
    if rng.random() < 0.15:
        n = int(rng.integers(25, 49))  # occasionally larger
    n_cores = int(rng.integers(1, 9))

    cpu = _durations(rng, n)
    arrivals = _arrivals(rng, n, int(cpu.sum()), n_cores)
    requests: List[RequestSpec] = []
    for i in range(n):
        bursts = _bursts(rng, int(cpu[i]))
        requests.append(RequestSpec(
            req_id=i, arrival=int(arrivals[i]), bursts=bursts,
            name=f"fuzz-{i}", app="fuzz",
        ))
    workload = Workload(requests, meta={
        "generator": "fuzz",
        "seed": campaign_seed,
        "index": index,
    })

    scheduler, engine, fair_class = _scheduler_engine(rng)
    machine = MachineParams(
        n_cores=n_cores,
        ctx_switch_cost=int(rng.choice((0, 500), p=(0.6, 0.4))),
        fair_class=fair_class,
    )
    plan = _fault_plan(rng)
    retry = None
    if plan is not None and (plan.crash_prob or plan.coldstart_fail_prob) \
            and rng.random() < 0.7:
        retry = RetryPolicy(max_attempts=int(rng.integers(2, 5)),
                            base_backoff=1_000, max_backoff=100_000,
                            seed=int(rng.integers(0, 2**31)))
    timeout = None
    admission = None
    if rng.random() < 0.10:
        # deadline generous enough that only tail requests expire
        timeout = int(rng.integers(2, 20)) * 1_000_000
    if rng.random() < 0.10:
        admission = AdmissionControl(max_outstanding=int(rng.integers(2, 9)))

    config = RunConfig(
        scheduler=scheduler,
        engine=engine,
        machine=machine,
        notify_latency=int(rng.choice((0, 200), p=(0.3, 0.7))),
        faults=plan,
        retry=retry,
        admission=admission,
        timeout=timeout,
        max_events=_event_budget(workload),
    )

    # cluster dimension LAST: every draw above is untouched, so a case
    # that stays single-machine is byte-identical to pre-cluster fuzz
    cluster, cluster_plan = _cluster_case(
        rng, plan, int(arrivals.max()), int(cpu.sum()), n_cores)
    if cluster is not None and cluster_plan is not plan:
        config = replace(config, faults=cluster_plan)
    return FuzzCase(campaign_seed=campaign_seed, index=index,
                    workload=workload, config=config, cluster=cluster)


def _cluster_case(
    rng: np.random.Generator,
    plan: Optional[FaultPlan],
    last_arrival: int,
    total_cpu: int,
    n_cores: int,
) -> Tuple[Optional["ClusterCase"], Optional[FaultPlan]]:
    """~15% of cases run through the resilient cluster tier.

    Half of those get a correlated domain outage: the hosts are split
    into two racks and the rack *without* host 0 fails for a window —
    host 0 may already be a straggler in the plan, and a host cannot be
    both degraded and dead (FaultPlan rejects the contradiction).
    Returns ``(cluster, plan)`` with the plan possibly extended.
    """
    if rng.random() >= 0.15:
        return None, plan
    n_hosts = int(rng.integers(2, 5))
    scheduler = str(rng.choice(("cfs", "sfs")))
    hedge = bool(rng.random() < 0.5)
    if rng.random() < 0.5:
        # rack 0 keeps host 0 (and stays up); rack 1 takes the outage
        keep = max(1, n_hosts // 2)
        domains = (tuple(range(keep)), tuple(range(keep, n_hosts)))
        horizon = max(1, last_arrival + total_cpu // max(1, n_cores))
        down_at = int(rng.integers(0, max(1, horizon // 2)))
        up_at = down_at + 1 + int(rng.integers(0, max(1, horizon // 2)))
        outage = ((1, down_at, up_at),)
        if plan is None:
            plan = FaultPlan(seed=int(rng.integers(0, 2**31)),
                             fault_domains=domains, domain_failures=outage)
        else:
            plan = replace(plan, fault_domains=domains,
                           domain_failures=outage)
    elif plan is None and rng.random() < 0.5:
        # no outage: still give the cluster something to retry against
        plan = FaultPlan(seed=int(rng.integers(0, 2**31)), crash_prob=0.2)
    return ClusterCase(n_hosts=n_hosts, scheduler=scheduler,
                       hedge=hedge), plan


def _event_budget(workload: Workload) -> int:
    """Per-case runaway guard: generous for any legal schedule (the
    discrete engine slices at >= min-granularity, so events scale with
    total CPU time), tight enough that a livelock fails in seconds."""
    return 500_000 + workload.total_cpu_demand // 50


def plan_component_count(plan: Optional[FaultPlan]) -> int:
    """How many independent fault-plan components a plan carries (the
    shrinker minimises this; the acceptance criteria bound it)."""
    if plan is None:
        return 0
    return (
        int(plan.crash_prob > 0)
        + int(plan.coldstart_fail_prob > 0)
        + len(plan.stragglers)
        + len(plan.host_failures)
        + len(plan.domain_failures)
    )
