"""Red-black tree (CLRS-style, sentinel NIL).

Linux CFS keeps each core's runnable tasks in an rbtree ordered by
``vruntime``; picking the next task is "leftmost node".  We reproduce
the same structure rather than a sorted list so that the runqueue has
the same asymptotics (O(log n) enqueue/dequeue, O(1) cached leftmost)
and so the reproduction exercises a faithful substrate.

Keys may be any totally ordered value (CFS uses ``(vruntime, seq)``
tuples to break ties deterministically).  Deletion takes the *node*
returned by :meth:`RBTree.insert`, mirroring how the kernel unlinks a
specific ``sched_entity``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key: Any, value: Any):
        self.key = key
        self.value = value
        self.left: "_Node" = NIL
        self.right: "_Node" = NIL
        self.parent: "_Node" = NIL
        self.color: bool = RED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = "R" if self.color is RED else "B"
        return f"<Node {self.key} {c}>"


class _Nil(_Node):
    """Shared sentinel: black, self-referential."""

    __slots__ = ()

    def __init__(self) -> None:  # noqa: D401 - sentinel
        self.key = None
        self.value = None
        self.color = BLACK
        self.left = self
        self.right = self
        self.parent = self

    def __reduce__(self):
        # Every tree algorithm tests membership by identity (`is NIL`),
        # so serializing a tree (checkpoint/resume) must map the
        # sentinel back to this module's singleton, never to a copy.
        return (_nil, ())


def _nil() -> "_Node":
    return NIL


NIL: _Node = _Nil()


class RBTree:
    """A mutable red-black tree mapping ordered keys to values.

    Duplicate keys are allowed (they land in the right subtree); CFS
    avoids ambiguity by using a unique sequence number in the key.
    """

    def __init__(self) -> None:
        self.root: _Node = NIL
        self._size = 0
        self._leftmost: Optional[_Node] = None  # cached like the kernel's rb_leftmost

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def min_node(self) -> Optional[_Node]:
        """The leftmost (smallest-key) node, cached O(1)."""
        return self._leftmost

    def min_item(self) -> Optional[Tuple[Any, Any]]:
        node = self._leftmost
        return None if node is None else (node.key, node.value)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order iteration (ascending keys)."""
        stack: list[_Node] = []
        node = self.root
        while stack or node is not NIL:
            while node is not NIL:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        for k, _v in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        for _k, v in self.items():
            yield v

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any = None) -> _Node:
        """Insert and rebalance; returns the node (keep it for delete)."""
        node = _Node(key, value)
        parent = NIL
        cur = self.root
        leftmost = True
        while cur is not NIL:
            parent = cur
            if key < cur.key:
                cur = cur.left
            else:
                cur = cur.right
                leftmost = False
        node.parent = parent
        if parent is NIL:
            self.root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self._size += 1
        if leftmost:
            self._leftmost = node
        self._insert_fixup(node)
        return node

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            gp = z.parent.parent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = gp.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self.root.color = BLACK

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, node: _Node) -> None:
        """Unlink ``node`` (must belong to this tree) and rebalance."""
        if node is NIL or node is None:
            raise ValueError("cannot delete NIL")
        if node is self._leftmost:
            self._leftmost = self._successor(node)
        y = node
        y_color = y.color
        if node.left is NIL:
            x = node.right
            self._transplant(node, node.right)
        elif node.right is NIL:
            x = node.left
            self._transplant(node, node.left)
        else:
            y = self._subtree_min(node.right)
            y_color = y.color
            x = y.right
            if y.parent is node:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = node.right
                y.right.parent = y
            self._transplant(node, y)
            y.left = node.left
            y.left.parent = y
            y.color = node.color
        self._size -= 1
        if y_color is BLACK:
            self._delete_fixup(x)
        # detach for safety; reusing a deleted node is a bug
        node.left = node.right = node.parent = NIL

    def pop_min(self) -> Optional[Tuple[Any, Any]]:
        """Remove and return the smallest ``(key, value)`` pair."""
        node = self._leftmost
        if node is None:
            return None
        item = (node.key, node.value)
        self.delete(node)
        return item

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self.root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not NIL:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is NIL:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not NIL:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is NIL:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is NIL:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    @staticmethod
    def _subtree_min(node: _Node) -> _Node:
        while node.left is not NIL:
            node = node.left
        return node

    def _successor(self, node: _Node) -> Optional[_Node]:
        if node.right is not NIL:
            return self._subtree_min(node.right)
        parent = node.parent
        while parent is not NIL and node is parent.right:
            node = parent
            parent = parent.parent
        return None if parent is NIL else parent

    # ------------------------------------------------------------------
    # invariant checking (used by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any red-black invariant is violated."""
        assert self.root.color is BLACK, "root must be black"
        expected_leftmost = None
        if self.root is not NIL:
            expected_leftmost = self._subtree_min(self.root)
        assert self._leftmost is expected_leftmost or (
            self._leftmost is None and self.root is NIL
        ), "cached leftmost is stale"

        def walk(node: _Node) -> int:
            if node is NIL:
                return 1
            if node.color is RED:
                assert node.left.color is BLACK and node.right.color is BLACK, (
                    "red node with red child"
                )
            if node.left is not NIL:
                assert not (node.key < node.left.key), "BST order violated (left)"
            if node.right is not NIL:
                assert not (node.right.key < node.key), "BST order violated (right)"
            lh = walk(node.left)
            rh = walk(node.right)
            assert lh == rh, "black-height mismatch"
            return lh + (1 if node.color is BLACK else 0)

        walk(self.root)
        assert self._size == sum(1 for _ in self.items()), "size counter is wrong"
