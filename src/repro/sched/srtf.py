"""Offline SRTF oracle (Shortest Remaining Time First).

The paper's upper baseline: a clairvoyant preemptive scheduler that
always runs the ``c`` tasks with the smallest remaining CPU demand.
It is *offline* — it reads ``Task.cpu_remaining`` directly, knowledge no
real scheduler has — which is exactly why the paper uses it as the
bound SFS tries to approximate.

Implemented as a machine with the standard API so drivers can swap it
in for CFS/SFS transparently; ``set_policy`` is a no-op (the oracle
ignores user-space hints — it already knows everything).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from repro.machine.base import MachineBase, MachineParams
from repro.sim.engine import EventHandle, Simulator
from repro.sim.task import BurstKind, SchedPolicy, Task, TaskState


class SRTFMachine(MachineBase):
    """Clairvoyant preemptive shortest-remaining-time-first on c cores."""

    def __init__(self, sim: Simulator, params: Optional[MachineParams] = None):
        super().__init__(sim, params)
        self._ready: list[tuple[int, int, Task]] = []  # (cpu_remaining, seq, task)
        self._running: dict[int, Task] = {}
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def spawn(self, task: Task) -> None:
        if task.state is not TaskState.CREATED:
            raise RuntimeError(f"task {task.tid} already spawned")
        task.dispatch_time = self.sim.now
        self.tasks_spawned += 1
        first = task.current_burst
        assert first is not None
        if first.kind is BurstKind.IO:
            task.state = TaskState.BLOCKED
            task._io_handle = self.sim.schedule(  # type: ignore[attr-defined]
                first.duration, self._on_io_done, task, first.duration
            )
        else:
            self._make_ready(task)
            self._admit(task)

    def set_policy(self, task: Task, policy: SchedPolicy, rt_priority: int = 1) -> None:
        """The oracle ignores policy hints."""

    def kill(self, task: Task, reason: str = "crash") -> bool:
        if task.state is TaskState.FINISHED:
            return False
        if task.tid in self._running:
            handle: Optional[EventHandle] = getattr(task, "_end_handle", None)
            if handle is not None:
                handle.cancel()
                task._end_handle = None  # type: ignore[attr-defined]
            served = min(self.sim.now - task._run_start,  # type: ignore[attr-defined]
                         task.burst_remaining)
            task.consume_cpu(served)
            self.busy_time += served
            del self._running[task.tid]
        elif task.state is TaskState.BLOCKED:
            io_handle = getattr(task, "_io_handle", None)
            if io_handle is not None:
                io_handle.cancel()
                task._io_handle = None  # type: ignore[attr-defined]
        # READY tasks: the heap entry goes stale and _scrub drops it
        self._finish_killed(task, reason)
        self._fill_cores()
        return True

    def idle_cores(self) -> int:
        return self.n_cores - len(self._running)

    def runnable_count(self) -> int:
        self._scrub()
        return len(self._ready)

    # ------------------------------------------------------------------
    def _make_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        task._ready_since = self.sim.now  # type: ignore[attr-defined]

    def _live_remaining(self, task: Task) -> int:
        """Remaining CPU demand *right now*, accounting for time a
        running task has accrued since its last charge event."""
        rem = task.cpu_remaining
        if task.state is TaskState.RUNNING:
            rem -= self.sim.now - task._run_start  # type: ignore[attr-defined]
        return rem

    def _admit(self, task: Task) -> None:
        """A task became runnable: run it now, preempt, or queue."""
        if len(self._running) < self.n_cores:
            self._start(task)
            return
        victim = max(self._running.values(), key=self._live_remaining)
        if task.cpu_remaining < self._live_remaining(victim):
            self._preempt(victim)
            self._start(task)
        else:
            heapq.heappush(self._ready, (task.cpu_remaining, next(self._seq), task))

    def _start(self, task: Task) -> None:
        now = self.sim.now
        task.wait_time += now - getattr(task, "_ready_since", now)
        if task.first_run_time is None:
            task.first_run_time = now
        task.state = TaskState.RUNNING
        task._run_start = now  # type: ignore[attr-defined]
        task._end_handle = self.sim.schedule(  # type: ignore[attr-defined]
            task.burst_remaining, self._on_burst_done, task
        )
        self._running[task.tid] = task

    def _preempt(self, task: Task) -> None:
        handle: Optional[EventHandle] = getattr(task, "_end_handle", None)
        if handle is not None:
            handle.cancel()
            task._end_handle = None  # type: ignore[attr-defined]
        served = self.sim.now - task._run_start  # type: ignore[attr-defined]
        served = min(served, task.burst_remaining)
        task.consume_cpu(served)
        self.busy_time += served
        del self._running[task.tid]
        task.ctx_involuntary += 1
        self._make_ready(task)
        heapq.heappush(self._ready, (task.cpu_remaining, next(self._seq), task))

    def _fill_cores(self) -> None:
        self._scrub()
        while self._ready and len(self._running) < self.n_cores:
            _rem, _seq, task = heapq.heappop(self._ready)
            self._start(task)

    def _scrub(self) -> None:
        # drop stale heap entries (tasks that were re-pushed or started)
        while self._ready and (
            self._ready[0][2].state is not TaskState.READY
            or self._ready[0][0] != self._ready[0][2].cpu_remaining
        ):
            heapq.heappop(self._ready)

    # ------------------------------------------------------------------
    def _on_burst_done(self, task: Task) -> None:
        task._end_handle = None  # type: ignore[attr-defined]
        served = task.burst_remaining
        task.consume_cpu(served)
        self.busy_time += served
        del self._running[task.tid]
        nxt = task.advance_burst()
        if nxt is None:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            self._notify_finish(task)
        elif nxt.kind is BurstKind.IO:
            task.state = TaskState.BLOCKED
            task.ctx_voluntary += 1
            task._io_handle = self.sim.schedule(  # type: ignore[attr-defined]
                nxt.duration, self._on_io_done, task, nxt.duration
            )
        else:
            self._make_ready(task)
            self._admit(task)
        self._fill_cores()

    def _on_io_done(self, task: Task, duration: int) -> None:
        task._io_handle = None  # type: ignore[attr-defined]
        nxt = task.complete_io()
        if nxt is None:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            self._notify_finish(task)
            return
        assert nxt.kind is BurstKind.CPU
        self._make_ready(task)
        self._admit(task)
