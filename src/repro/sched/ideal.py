"""IDEAL baseline: infinite resources, zero contention.

Every task gets its own core the instant it is dispatched, so its
turnaround equals its intrinsic burst sum.  The paper uses this both as
the unreachable performance ceiling in Fig 2 and as the denominator-
defining run for RTE (the "aggregate CPU time ... measured under the
IDEAL scenario").
"""

from __future__ import annotations

from typing import Optional

from repro.machine.base import MachineBase, MachineParams
from repro.sim.engine import Simulator
from repro.sim.task import BurstKind, SchedPolicy, Task, TaskState


class IdealMachine(MachineBase):
    """Infinitely many cores; tasks never wait or context-switch."""

    def __init__(self, sim: Simulator, params: Optional[MachineParams] = None):
        super().__init__(sim, params)
        self._active = 0
        self.peak_parallelism = 0

    def spawn(self, task: Task) -> None:
        if task.state is not TaskState.CREATED:
            raise RuntimeError(f"task {task.tid} already spawned")
        task.dispatch_time = self.sim.now
        self.tasks_spawned += 1
        task.state = TaskState.RUNNING
        task.first_run_time = self.sim.now
        self._active += 1
        self.peak_parallelism = max(self.peak_parallelism, self._active)
        task._done_handle = self.sim.schedule(  # type: ignore[attr-defined]
            task.ideal_duration, self._on_done, task
        )

    def set_policy(self, task: Task, policy: SchedPolicy, rt_priority: int = 1) -> None:
        """No contention, so policies are irrelevant."""

    def kill(self, task: Task, reason: str = "crash") -> bool:
        if task.state is TaskState.FINISHED:
            return False
        handle = getattr(task, "_done_handle", None)
        if handle is not None:
            handle.cancel()
            task._done_handle = None  # type: ignore[attr-defined]
        self._active -= 1
        self._finish_killed(task, reason)
        return True

    def idle_cores(self) -> int:  # pragma: no cover - infinite machine
        return 0

    def runnable_count(self) -> int:
        return 0

    def _on_done(self, task: Task) -> None:
        task._done_handle = None  # type: ignore[attr-defined]
        # charge each burst in order so accounting matches other engines
        while True:
            burst = task.current_burst
            if burst is None:
                break
            if burst.kind is BurstKind.CPU:
                task.consume_cpu(task.burst_remaining)
                self.busy_time += burst.duration
            else:
                task.io_time += burst.duration
                task.burst_remaining = 0
            task.advance_burst()
        task.state = TaskState.FINISHED
        task.finish_time = self.sim.now
        self._active -= 1
        self._notify_finish(task)
