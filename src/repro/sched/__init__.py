"""Kernel scheduling-class models.

This package implements the OS-level substrates the paper builds on:

* :mod:`repro.sched.rbtree` — a full red-black tree, the data structure
  Linux CFS uses for its per-core runqueues.
* :mod:`repro.sched.cfs` — the Completely Fair Scheduler model
  (vruntime, slices, wakeup placement, wakeup preemption, idle balance).
* :mod:`repro.sched.rt` — the POSIX real-time classes ``SCHED_FIFO``
  and ``SCHED_RR`` which preempt CFS unconditionally.
* :mod:`repro.sched.srtf` — the offline Shortest-Remaining-Time-First
  oracle the paper compares against.
* :mod:`repro.sched.ideal` — the zero-contention IDEAL baseline.
"""

from repro.sched.cfs import CfsParams, CfsRunqueue
from repro.sched.rbtree import RBTree

__all__ = ["RBTree", "CfsRunqueue", "CfsParams"]
