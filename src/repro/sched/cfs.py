"""Completely Fair Scheduler (CFS) runqueue model.

This reproduces the pieces of ``kernel/sched/fair.c`` that matter for
the paper's argument:

* a per-core runqueue ordered by ``vruntime`` in a red-black tree, with
  the kernel's cached-leftmost optimisation;
* ``min_vruntime`` tracking so that sleepers and new tasks cannot hoard
  an arbitrarily small vruntime;
* the targeted-latency slice rule
  ``slice = max(sched_latency / nr_running, min_granularity)``;
* sleeper placement (``vruntime = max(v, min_vruntime - latency/2)``)
  and wakeup preemption gated by ``wakeup_granularity``.

All tasks in the paper's workloads run at nice 0, but the weight math
is kept so priority experiments remain possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.sched.rbtree import RBTree
from repro.sim.task import Task
from repro.sim.units import MS

#: CFS weight of a nice-0 task (kernel's ``NICE_0_LOAD`` >> SCHED_LOAD_SHIFT).
NICE_0_WEIGHT = 1024


@dataclass(frozen=True)
class CfsParams:
    """Tunables mirroring ``/proc/sys/kernel/sched_*`` (microseconds).

    Defaults follow the classic server values (pre-EEVDF kernels, which
    is what the paper's 2022 testbed ran).
    """

    sched_latency: int = 24 * MS
    min_granularity: int = 3 * MS
    wakeup_granularity: int = 4 * MS

    def __post_init__(self) -> None:
        if self.min_granularity <= 0 or self.sched_latency <= 0:
            raise ValueError("latency parameters must be positive")
        if self.min_granularity > self.sched_latency:
            raise ValueError("min_granularity cannot exceed sched_latency")

    def timeslice(self, nr_running: int, weight: int = NICE_0_WEIGHT,
                  total_weight: Optional[int] = None) -> int:
        """The slice a task gets when ``nr_running`` tasks compete.

        With equal weights this is ``max(latency / n, min_granularity)``,
        the rule the paper's §II-B describes ("CFS squeezes the time
        slice for each competing job").
        """
        if nr_running <= 0:
            raise ValueError("nr_running must be >= 1")
        if total_weight is None:
            total_weight = nr_running * NICE_0_WEIGHT
        share = self.sched_latency * weight // max(total_weight, 1)
        return max(share, self.min_granularity)


class CfsRunqueue:
    """One core's fair-class runqueue."""

    def __init__(self, params: CfsParams):
        self.params = params
        self._tree = RBTree()
        self._nodes: dict[int, object] = {}  # tid -> rbtree node
        self.min_vruntime: int = 0
        self._seq = itertools.count()
        self.total_weight: int = 0
        # observability: lifetime enqueue count and peak depth
        self.total_enqueued: int = 0
        self.peak_depth: int = 0
        #: optional repro.obs.hooks.RunqueueObs; the machine attaches it
        #: when a MetricsRegistry is installed (None = zero overhead)
        self.obs = None
        #: optional repro.why.audit.RunqueueAudit; attached the same way
        #: when an AuditLog is installed (None = zero overhead)
        self.audit = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, task: Task) -> bool:
        return task.tid in self._nodes

    @property
    def nr_queued(self) -> int:
        return len(self._tree)

    # ------------------------------------------------------------------
    def enqueue(self, task: Task, wakeup: bool = False) -> None:
        """Insert a runnable task, applying vruntime placement.

        ``wakeup=True`` applies the sleeper credit (half a latency
        period), matching ``place_entity``'s treatment of tasks waking
        from I/O; otherwise the task is clamped to ``min_vruntime`` so a
        fresh or demoted task cannot starve the queue.
        """
        if task.tid in self._nodes:
            raise RuntimeError(f"task {task.tid} already enqueued")
        floor = self.min_vruntime
        if wakeup:
            floor -= self.params.sched_latency // 2
        if task.vruntime < floor:
            task.vruntime = floor
        node = self._tree.insert((task.vruntime, next(self._seq)), task)
        self._nodes[task.tid] = node
        self.total_weight += task.weight
        self.total_enqueued += 1
        depth = len(self._nodes)
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self.obs is not None:
            self.obs.on_enqueue(depth)

    def dequeue(self, task: Task) -> None:
        """Remove a specific task (e.g. promoted to the RT class)."""
        node = self._nodes.pop(task.tid, None)
        if node is None:
            raise RuntimeError(f"task {task.tid} not on this runqueue")
        self._tree.delete(node)
        self.total_weight -= task.weight
        self._refresh_min_vruntime()

    def pick_next(self) -> Optional[Task]:
        """Pop the leftmost (smallest vruntime) task; None if empty."""
        item = self._tree.pop_min()
        if item is None:
            return None
        task = item[1]
        del self._nodes[task.tid]
        self.total_weight -= task.weight
        self._refresh_min_vruntime(curr_vruntime=task.vruntime)
        if self.obs is not None:
            self.obs.on_pick()
        if self.audit is not None:
            self.audit.on_pick(task.tid)
        return task

    def peek_next(self) -> Optional[Task]:
        item = self._tree.min_item()
        return None if item is None else item[1]

    # ------------------------------------------------------------------
    def update_curr(self, curr_vruntime: int) -> None:
        """Advance ``min_vruntime`` as the running task accrues vruntime."""
        self._refresh_min_vruntime(curr_vruntime=curr_vruntime)

    def _refresh_min_vruntime(self, curr_vruntime: Optional[int] = None) -> None:
        candidates = []
        if curr_vruntime is not None:
            candidates.append(curr_vruntime)
        left = self._tree.min_item()
        if left is not None:
            candidates.append(left[1].vruntime)
        if candidates:
            # monotonically non-decreasing, like the kernel
            self.min_vruntime = max(self.min_vruntime, min(candidates))

    # ------------------------------------------------------------------
    def timeslice_for(self, task: Task, nr_extra_running: int = 1) -> int:
        """Slice for ``task`` given the queue plus ``nr_extra_running``
        tasks currently on CPU (normally 1: the task itself)."""
        nr = len(self._tree) + nr_extra_running
        total_w = self.total_weight + nr_extra_running * NICE_0_WEIGHT
        return self.params.timeslice(nr, task.weight, total_w)

    def should_preempt(self, woken: Task, curr: Task) -> bool:
        """Wakeup preemption: does ``woken`` preempt ``curr`` now?

        Mirrors ``wakeup_preempt_entity``: preempt only when the woken
        task's vruntime deficit exceeds ``wakeup_granularity``.
        """
        return curr.vruntime - woken.vruntime > self.params.wakeup_granularity

    def tasks(self) -> list[Task]:
        """Snapshot of queued tasks in vruntime order (for inspection)."""
        return list(self._tree.values())

    # ------------------------------------------------------------------
    def validate(self, deep: bool = False) -> None:
        """Structural soundness for :mod:`repro.invariants`.

        Cheap O(1) bookkeeping checks always run; ``deep=True`` adds the
        full red-black audit plus a per-node key/task cross-check.
        Raises ``AssertionError`` on corruption (wrapped into
        ``InvariantViolation`` by the checker).
        """
        assert len(self._tree) == len(self._nodes), (
            f"tree holds {len(self._tree)} entries but node index has "
            f"{len(self._nodes)}"
        )
        assert self.total_weight >= 0, f"negative total_weight {self.total_weight}"
        left = self._tree.min_item()
        if left is not None:
            key, task = left[0], left[1]
            assert key[0] == task.vruntime, (
                f"leftmost key {key[0]} != task {task.tid} vruntime "
                f"{task.vruntime}"
            )
        if not deep:
            return
        self._tree.check_invariants()
        weight = 0
        for tid, node in self._nodes.items():
            task = node.value
            assert task.tid == tid, f"node index maps {tid} to task {task.tid}"
            assert node.key[0] == task.vruntime, (
                f"task {tid} keyed at vruntime {node.key[0]} but holds "
                f"{task.vruntime}"
            )
            weight += task.weight
        assert weight == self.total_weight, (
            f"total_weight {self.total_weight} != sum of member weights {weight}"
        )
