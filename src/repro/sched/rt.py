"""POSIX real-time scheduling classes (``SCHED_FIFO`` / ``SCHED_RR``).

Semantics per ``sched(7)``:

* RT tasks always preempt ``SCHED_NORMAL`` (CFS) tasks.
* Among RT tasks, higher ``rt_priority`` wins; equal-priority FIFO tasks
  run in arrival order until they block, finish, or are re-classed;
  equal-priority RR tasks additionally rotate on a fixed quantum
  (``/proc/sys/kernel/sched_rr_timeslice_ms``, default 100 ms).
* An arriving equal-priority task does **not** preempt a running one.

We model a single global RT runqueue rather than per-core queues with
push/pull migration: the paper's FILTER pool is itself a single global
queue, and for identical-priority tasks the global queue is
behaviourally equivalent to per-core queues with perfect push/pull (the
kernel aggressively migrates RT tasks to idle cores).  This collapse is
documented in DESIGN.md §5.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from repro.sim.task import SchedPolicy, Task
from repro.sim.units import MS

#: Linux default RR quantum.
DEFAULT_RR_QUANTUM = 100 * MS


class RTRunqueue:
    """Global real-time runqueue: max-priority, FIFO within priority."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []
        self._seq = itertools.count()
        self._members: set[int] = set()
        # observability: lifetime enqueue count and peak depth
        self.total_enqueued: int = 0
        self.peak_depth: int = 0
        #: optional repro.obs.hooks.RunqueueObs; the machine attaches it
        #: when a MetricsRegistry is installed (None = zero overhead)
        self.obs = None
        #: optional repro.why.audit.RunqueueAudit; attached the same way
        #: when an AuditLog is installed (None = zero overhead)
        self.audit = None

    def __len__(self) -> int:
        live = 0
        for _p, _s, task in self._heap:
            if task.tid in self._members:
                live += 1
        return live

    def __bool__(self) -> bool:
        self._scrub()
        return bool(self._heap)

    def enqueue(self, task: Task) -> None:
        if task.policy not in (SchedPolicy.FIFO, SchedPolicy.RR):
            raise ValueError(f"task {task.tid} is not RT class ({task.policy.name})")
        if task.tid in self._members:
            raise RuntimeError(f"task {task.tid} already on the RT runqueue")
        self._members.add(task.tid)
        heapq.heappush(self._heap, (-task.rt_priority, next(self._seq), task))
        self.total_enqueued += 1
        depth = len(self._members)
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self.obs is not None:
            self.obs.on_enqueue(depth)

    def remove(self, task: Task) -> None:
        """Lazy removal (e.g. task re-classed to CFS while queued)."""
        if task.tid not in self._members:
            raise RuntimeError(f"task {task.tid} not on the RT runqueue")
        self._members.discard(task.tid)

    def pop(self) -> Optional[Task]:
        """Highest-priority, earliest-enqueued runnable RT task."""
        self._scrub()
        if not self._heap:
            return None
        _p, _s, task = heapq.heappop(self._heap)
        self._members.discard(task.tid)
        if self.obs is not None:
            self.obs.on_pick()
        if self.audit is not None:
            self.audit.on_pick(task.tid)
        return task

    def peek(self) -> Optional[Task]:
        self._scrub()
        return self._heap[0][2] if self._heap else None

    def peek_priority(self) -> Optional[int]:
        task = self.peek()
        return None if task is None else task.rt_priority

    def _scrub(self) -> None:
        heap = self._heap
        while heap and heap[0][2].tid not in self._members:
            heapq.heappop(heap)

    def tasks(self) -> list[Task]:
        self._scrub()
        return [t for _p, _s, t in sorted(self._heap) if t.tid in self._members]

    # ------------------------------------------------------------------
    def validate(self, deep: bool = False) -> None:
        """Structural soundness for :mod:`repro.invariants`.

        Cheap: every member tid has a heap entry and no member is
        duplicated.  ``deep=True`` re-verifies the heap property and
        that each live entry's priority key matches its task.  Raises
        ``AssertionError`` on corruption.
        """
        live = {}
        for _p, _s, task in self._heap:
            if task.tid in self._members:
                live[task.tid] = live.get(task.tid, 0) + 1
        assert set(live) == self._members, (
            f"member set {sorted(self._members)} != live heap tids "
            f"{sorted(live)}"
        )
        dupes = [tid for tid, n in live.items() if n > 1]
        assert not dupes, f"tids queued more than once: {dupes}"
        if not deep:
            return
        heap = self._heap
        for i in range(1, len(heap)):
            parent = (i - 1) // 2
            assert heap[parent][:2] <= heap[i][:2], (
                f"heap property violated at index {i}"
            )
        for neg_prio, _s, task in heap:
            if task.tid in self._members:
                assert -neg_prio == task.rt_priority, (
                    f"task {task.tid} queued at priority {-neg_prio} but "
                    f"holds {task.rt_priority}"
                )
                assert task.policy in (SchedPolicy.FIFO, SchedPolicy.RR), (
                    f"non-RT task {task.tid} ({task.policy.name}) on the "
                    f"RT runqueue"
                )
