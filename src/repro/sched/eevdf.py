"""EEVDF fair-class runqueue (Linux >= 6.6).

The paper argues (§X, "Why User-Space?") that a user-space scheduler is
future-proof precisely because the kernel's fair class keeps evolving —
and indeed CFS has since been replaced by EEVDF (Earliest Eligible
Virtual Deadline First; Stoica & Abdel-Wahab 1996, merged in 6.6).
This module models EEVDF so the reproduction can *demonstrate* that
claim: SFS runs unchanged on top of either fair class.

Model (per `kernel/sched/fair.c` post-6.6, simplified to flat, equal-
weight entities):

* each entity keeps ``vruntime`` and a virtual deadline
  ``deadline = vruntime + base_slice`` granted one request at a time;
* an entity is **eligible** when its vruntime is at or behind the
  queue's weighted average (``vruntime <= avg_vruntime``) — lag >= 0;
* pick = eligible entity with the earliest virtual deadline;
* when a running entity exhausts its slice its deadline moves one
  ``base_slice`` forward, naturally rotating service.

The class exposes the same interface as
:class:`repro.sched.cfs.CfsRunqueue`, so
:class:`repro.machine.discrete.DiscreteMachine` accepts either via
``MachineParams.fair_class``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.task import Task
from repro.sim.units import MS


@dataclass(frozen=True)
class EevdfParams:
    """EEVDF tunables (microseconds)."""

    #: the per-request slice (kernel default base_slice ~ 0.75-3 ms;
    #: we match the CFS model's min_granularity for comparability).
    base_slice: int = 3 * MS

    def __post_init__(self) -> None:
        if self.base_slice <= 0:
            raise ValueError("base_slice must be positive")


class EevdfRunqueue:
    """One core's EEVDF runqueue (flat, equal-weight entities).

    O(n) pick: runqueue depths in the discrete engine are small, and
    the eligibility filter makes a single scan the clearest faithful
    implementation.  (The kernel uses an augmented rbtree.)
    """

    def __init__(self, params: EevdfParams = EevdfParams()):
        self.params = params
        self._tasks: List[Task] = []
        self.min_vruntime: int = 0  # kept for interface parity
        #: optional repro.obs.hooks.RunqueueObs; the machine attaches it
        #: when a MetricsRegistry is installed (None = zero overhead)
        self.obs = None
        #: optional repro.why.audit.RunqueueAudit; attached the same way
        #: when an AuditLog is installed (None = zero overhead)
        self.audit = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task: Task) -> bool:
        return any(t.tid == task.tid for t in self._tasks)

    @property
    def nr_queued(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    def _avg_vruntime(self, extra: Optional[Task] = None) -> float:
        """Queue-average vruntime (the zero-lag point V)."""
        vs = [t.vruntime for t in self._tasks]
        if extra is not None:
            vs.append(extra.vruntime)
        if not vs:
            return 0.0
        return sum(vs) / len(vs)

    def enqueue(self, task: Task, wakeup: bool = False) -> None:
        if task in self:
            raise RuntimeError(f"task {task.tid} already enqueued")
        # placement: a joining entity gets zero lag (vruntime = V) so it
        # can neither starve the queue nor borrow unearned service.
        v = self._avg_vruntime()
        if task.vruntime < v:
            task.vruntime = int(v)
        if getattr(task, "_eevdf_deadline", None) is None or not wakeup:
            task._eevdf_deadline = task.vruntime + self.params.base_slice  # type: ignore[attr-defined]
        self._tasks.append(task)
        self.min_vruntime = max(
            self.min_vruntime, int(min(t.vruntime for t in self._tasks))
        )
        if self.obs is not None:
            self.obs.on_enqueue(len(self._tasks))

    def dequeue(self, task: Task) -> None:
        for i, t in enumerate(self._tasks):
            if t.tid == task.tid:
                del self._tasks[i]
                return
        raise RuntimeError(f"task {task.tid} not on this runqueue")

    def pick_next(self) -> Optional[Task]:
        """Earliest virtual deadline among eligible entities."""
        if not self._tasks:
            return None
        v = self._avg_vruntime()
        eligible = [t for t in self._tasks if t.vruntime <= v + 1e-9]
        pool = eligible if eligible else self._tasks
        best = min(pool, key=lambda t: (t._eevdf_deadline, t.tid))  # type: ignore[attr-defined]
        self.dequeue(best)
        if self.obs is not None:
            self.obs.on_pick()
        if self.audit is not None:
            self.audit.on_pick(best.tid)
        return best

    def peek_next(self) -> Optional[Task]:
        if not self._tasks:
            return None
        v = self._avg_vruntime()
        eligible = [t for t in self._tasks if t.vruntime <= v + 1e-9]
        pool = eligible if eligible else self._tasks
        return min(pool, key=lambda t: (t._eevdf_deadline, t.tid))  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def update_curr(self, curr_vruntime: int) -> None:
        self.min_vruntime = max(self.min_vruntime, curr_vruntime)

    def timeslice_for(self, task: Task, nr_extra_running: int = 1) -> int:
        """Run until the current virtual deadline (one base_slice of
        service), independent of queue depth — EEVDF's key difference
        from CFS's latency-division rule."""
        deadline = getattr(task, "_eevdf_deadline", None)
        if deadline is None:
            task._eevdf_deadline = task.vruntime + self.params.base_slice  # type: ignore[attr-defined]
            deadline = task._eevdf_deadline  # type: ignore[attr-defined]
        remaining = deadline - task.vruntime
        if remaining <= 0:
            # slice exhausted: grant the next request
            task._eevdf_deadline = task.vruntime + self.params.base_slice  # type: ignore[attr-defined]
            remaining = self.params.base_slice
        return int(remaining)

    def should_preempt(self, woken: Task, curr: Task) -> bool:
        """A woken entity preempts when it is eligible and holds an
        earlier virtual deadline than the running one."""
        v = self._avg_vruntime(extra=curr)
        if woken.vruntime > v:
            return False
        wd = getattr(woken, "_eevdf_deadline", woken.vruntime + self.params.base_slice)
        cd = getattr(curr, "_eevdf_deadline", curr.vruntime + self.params.base_slice)
        return wd < cd

    def tasks(self) -> List[Task]:
        return sorted(
            self._tasks,
            key=lambda t: (getattr(t, "_eevdf_deadline", 0), t.tid),
        )

    # ------------------------------------------------------------------
    def validate(self, deep: bool = False) -> None:
        """Structural soundness for :mod:`repro.invariants`.

        Cheap: no duplicated tids.  ``deep=True`` additionally checks
        that every queued entity has a virtual deadline at or after its
        vruntime (a deadline in the virtual past would let it monopolise
        the pick).  Raises ``AssertionError`` on corruption.
        """
        tids = [t.tid for t in self._tasks]
        assert len(tids) == len(set(tids)), (
            f"duplicated tids on the EEVDF runqueue: {sorted(tids)}"
        )
        if not deep:
            return
        for t in self._tasks:
            deadline = getattr(t, "_eevdf_deadline", None)
            if deadline is not None:
                assert deadline >= t.vruntime, (
                    f"task {t.tid} deadline {deadline} behind vruntime "
                    f"{t.vruntime}"
                )
