"""Measurement: per-request records, RTE, CDFs, percentiles, timelines."""

from repro.metrics.billing import BillingModel, overcharge_report
from repro.metrics.collector import RequestRecord, RunResult, build_records
from repro.metrics.faults import (
    FaultSummary,
    fault_summary,
    goodput_report,
    summarize_faults,
)
from repro.metrics.rte import rte, rte_normalized
from repro.metrics.slo import SLO, slo_report, stretch
from repro.metrics.stats import ecdf, fraction_below, percentile, percentiles

__all__ = [
    "RequestRecord",
    "RunResult",
    "build_records",
    "FaultSummary",
    "fault_summary",
    "summarize_faults",
    "goodput_report",
    "rte",
    "rte_normalized",
    "SLO",
    "slo_report",
    "stretch",
    "BillingModel",
    "overcharge_report",
    "ecdf",
    "percentile",
    "percentiles",
    "fraction_below",
]
