"""Failure-aware run accounting (``repro.faults`` companion).

Under fault injection, raw throughput stops being the honest metric: a
run that completes many requests by burning half its capacity on
retries and abandoning the rest is *worse* than its request rate
suggests.  This module separates the quantities:

* **throughput** — requests leaving the system per second, any outcome;
* **goodput**    — requests producing a *useful response* per second
  (``status == "ok"`` only);
* **retry amplification** — extra attempts the platform paid per
  arriving request;
* terminal-outcome rates (failed / timeout / shed).

Everything derives from :class:`repro.metrics.collector.RequestRecord`
``status`` / ``attempts`` fields, so nominal runs summarise too (100 %
goodput, zero retries) and comparison tables stay uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.metrics.collector import RequestRecord, RunResult
from repro.sim.units import SEC


@dataclass(frozen=True)
class FaultSummary:
    """Outcome accounting for one run."""

    total: int          # every arriving request, any outcome
    ok: int
    failed: int         # retries exhausted (crash / provisioning)
    timeout: int        # deadline expired
    shed: int           # rejected at admission
    attempts: int       # attempts started across all requests
    throughput_rps: float
    goodput_rps: float
    host_lost: int = 0  # died with a failed host, no failover left

    @property
    def goodput_fraction(self) -> float:
        """ok / total — the honest success rate."""
        return self.ok / self.total if self.total else 0.0

    @property
    def retries_per_request(self) -> float:
        """Extra attempts paid per arriving request (0 = no retries)."""
        if self.total == 0:
            return 0.0
        retried = self.attempts - (self.total - self.shed)
        return max(0, retried) / self.total

    @property
    def abandonment_rate(self) -> float:
        """Requests that died without a response (failed + timeout +
        host_lost)."""
        if not self.total:
            return 0.0
        return (self.failed + self.timeout + self.host_lost) / self.total

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0


def summarize_faults(
    records: Iterable[RequestRecord], sim_time: int
) -> FaultSummary:
    """Aggregate outcome counters over ``records`` (``sim_time`` in us)."""
    counts = {"ok": 0, "failed": 0, "timeout": 0, "shed": 0,
              "host_lost": 0}
    attempts = 0
    total = 0
    for r in records:
        total += 1
        attempts += r.attempts
        counts[r.status] = counts.get(r.status, 0) + 1
    seconds = sim_time / SEC if sim_time > 0 else 0.0
    finished = total - counts["shed"]
    return FaultSummary(
        total=total,
        ok=counts["ok"],
        failed=counts["failed"],
        timeout=counts["timeout"],
        shed=counts["shed"],
        attempts=attempts,
        throughput_rps=finished / seconds if seconds else 0.0,
        goodput_rps=counts["ok"] / seconds if seconds else 0.0,
        host_lost=counts["host_lost"],
    )


def fault_summary(result: RunResult) -> FaultSummary:
    """Convenience: summarise a whole :class:`RunResult`."""
    return summarize_faults(result.records, result.sim_time)


def goodput_report(runs: Dict[str, RunResult]) -> List[tuple]:
    """Rows of (run name, goodput rps, throughput rps, goodput fraction,
    retries/req, shed rate) for a comparison table."""
    rows = []
    for name, run in runs.items():
        s = fault_summary(run)
        rows.append((
            name, s.goodput_rps, s.throughput_rps, s.goodput_fraction,
            s.retries_per_request, s.shed_rate,
        ))
    return rows
