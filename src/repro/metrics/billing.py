"""FaaS billing and the overcharge metric (§I, §III).

The paper's economic motivation: providers bill execution *duration*
(AWS Lambda: per-invocation fee plus a GB-second rate with duration
rounded up to 1 ms), so every microsecond a function spends waiting in
a runqueue is money the user pays for CPU time they never received.
RTE measures this as a ratio; this module prices it.

Default constants are the paper's own quote (§I): "$0.02 per 1 million
invocations" and "$0.0000166667 per second for each GB of memory",
rounding duration up to the nearest millisecond.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.metrics.collector import RequestRecord, RunResult
from repro.sim.units import MS


@dataclass(frozen=True)
class BillingModel:
    """AWS-Lambda-style pricing."""

    #: $ per GB-second of billed duration.
    gb_second_rate: float = 0.0000166667
    #: $ per invocation (the paper: $0.02 per million).
    per_invocation: float = 0.02 / 1e6
    #: billing granularity (AWS rounds up to 1 ms).
    granularity_us: int = 1 * MS
    #: configured memory per function instance, GB.
    memory_gb: float = 0.125

    def __post_init__(self) -> None:
        if self.gb_second_rate < 0 or self.per_invocation < 0:
            raise ValueError("rates must be non-negative")
        if self.granularity_us <= 0:
            raise ValueError("granularity must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory must be positive")

    # ------------------------------------------------------------------
    def billed_duration_us(self, duration_us: int) -> int:
        """Round the duration up to the billing granularity."""
        if duration_us < 0:
            raise ValueError("duration must be non-negative")
        g = self.granularity_us
        return int(math.ceil(duration_us / g) * g)

    def charge(self, duration_us: int) -> float:
        """Dollar cost of one invocation of the given duration."""
        seconds = self.billed_duration_us(duration_us) / 1e6
        return self.per_invocation + seconds * self.memory_gb * self.gb_second_rate

    # ------------------------------------------------------------------
    def invoice(self, records: Iterable[RequestRecord]) -> float:
        """Total bill for a run, charging the observed turnaround."""
        return float(sum(self.charge(r.turnaround) for r in records))

    def ideal_invoice(self, records: Iterable[RequestRecord]) -> float:
        """What the same work would cost with zero interference."""
        return float(sum(self.charge(r.ideal_duration) for r in records))

    def overcharge(self, records: Iterable[RequestRecord]) -> float:
        """Dollars billed beyond the zero-interference cost."""
        recs = list(records)
        return self.invoice(recs) - self.ideal_invoice(recs)

    def overcharge_ratio(self, records: Iterable[RequestRecord]) -> float:
        """Overcharge as a fraction of the ideal bill (0 = fair)."""
        recs = list(records)
        ideal = self.ideal_invoice(recs)
        if ideal <= 0:
            return 0.0
        return self.overcharge(recs) / ideal

    def per_request_overcharge(self, records: Sequence[RequestRecord]) -> np.ndarray:
        """Dollar overcharge per request (for distribution plots)."""
        return np.asarray(
            [self.charge(r.turnaround) - self.charge(r.ideal_duration)
             for r in records],
            dtype=float,
        )


def overcharge_report(
    runs: Dict[str, RunResult], model: BillingModel = BillingModel()
) -> Dict[str, Dict[str, float]]:
    """Per-scheduler billing summary for a paired run set."""
    out = {}
    for name, run in runs.items():
        recs = run.records
        out[name] = {
            "invoice": model.invoice(recs),
            "ideal": model.ideal_invoice(recs),
            "overcharge": model.overcharge(recs),
            "overcharge_ratio": model.overcharge_ratio(recs),
        }
    return out
