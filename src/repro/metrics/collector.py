"""Per-request records and whole-run results.

Every engine produces identical :class:`repro.sim.task.Task` accounting,
so a single collector turns (spec, task) pairs into flat records that
the experiment modules slice with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.rte import rte, rte_normalized
from repro.sim.task import Task
from repro.workload.spec import RequestSpec


@dataclass(frozen=True)
class RequestRecord:
    """Everything the evaluation needs to know about one request."""

    req_id: int
    name: str
    app: str
    arrival: int            # invocation time (client side)
    dispatch: int           # spawned into the OS
    finish: int
    cpu_demand: int
    io_demand: int
    cpu_time: int
    wait_time: int
    ctx_involuntary: int
    ctx_voluntary: int
    migrations: int
    bypassed: bool          # overload detector left it in CFS
    demoted: bool           # FILTER slice expired
    slice_granted: Optional[int]  # S at first FILTER promotion
    #: terminal outcome:
    #: "ok" | "failed" | "timeout" | "shed" | "host_lost"
    status: str = "ok"
    #: attempts started (0 = shed before any attempt)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Did the request produce a useful response?"""
        return self.status == "ok"

    @property
    def turnaround(self) -> int:
        """Paper's *execution duration*: OS dispatch to completion."""
        return self.finish - self.dispatch

    @property
    def end_to_end(self) -> int:
        """Client-visible latency including platform overheads."""
        return self.finish - self.arrival

    @property
    def ideal_duration(self) -> int:
        return self.cpu_demand + self.io_demand

    @property
    def rte(self) -> float:
        return rte(self.cpu_demand, max(1, self.turnaround))

    @property
    def rte_normalized(self) -> float:
        return rte_normalized(self.ideal_duration, max(1, self.turnaround))

    @property
    def context_switches(self) -> int:
        return self.ctx_involuntary + self.ctx_voluntary


def build_records(
    pairs: Sequence[Tuple[RequestSpec, Task]],
    faults: Optional[object] = None,
) -> List[RequestRecord]:
    """Turn (spec, finished task) pairs into records.

    ``faults`` is the run's :class:`repro.faults.runtime.FaultRuntime`
    (or None for a nominal run).  Under faults a request may appear in
    ``pairs`` several times — once per attempt that reached ``spawn`` —
    and only the *last* attempt describes the request's outcome; the
    governor additionally knows about requests that never produced a
    task at all (shed at admission, or every attempt died before
    provisioning finished), which get synthesised zero-work records so
    failure accounting sees every arrival exactly once.
    """
    if faults is None:
        return [_record(spec, task) for spec, task in pairs]
    last: Dict[int, Tuple[RequestSpec, Task]] = {}
    for spec, task in pairs:
        if not task.finished:
            raise RuntimeError(f"request {spec.req_id} never finished")
        if task.kill_reason == "hedge":
            continue  # cancelled hedge loser; the winner's pair counts
        # the latest-finishing attempt describes the outcome.  (List
        # order is per-host, not chronological, once a cluster routes
        # retries/failovers across hosts — so compare timestamps.)
        prev = last.get(spec.req_id)
        if prev is None or task.finish_time >= prev[1].finish_time:
            last[spec.req_id] = (spec, task)
    records = []
    for req_id in sorted(last):
        spec, task = last[req_id]
        status, attempts = faults.status_of(req_id)
        records.append(_record(spec, task, status=status, attempts=attempts))
    for spec, status, attempts, end_ts in faults.orphans(set(last)):
        records.append(
            RequestRecord(
                req_id=spec.req_id,
                name=spec.name,
                app=spec.app,
                arrival=spec.arrival,
                dispatch=end_ts,  # never spawned: zero turnaround
                finish=end_ts,
                cpu_demand=spec.cpu_demand,
                io_demand=spec.io_demand,
                cpu_time=0,
                wait_time=0,
                ctx_involuntary=0,
                ctx_voluntary=0,
                migrations=0,
                bypassed=False,
                demoted=False,
                slice_granted=None,
                status=status,
                attempts=attempts,
            )
        )
    return records


def _record(spec: RequestSpec, task: Task, status: str = "ok",
            attempts: int = 1) -> RequestRecord:
    if not task.finished:
        raise RuntimeError(f"request {spec.req_id} never finished")
    return RequestRecord(
        req_id=spec.req_id,
        name=spec.name,
        app=spec.app,
        arrival=spec.arrival,
        dispatch=task.dispatch_time,
        finish=task.finish_time,
        cpu_demand=task.cpu_demand,
        io_demand=task.io_demand,
        cpu_time=task.cpu_time,
        wait_time=task.wait_time,
        ctx_involuntary=task.ctx_involuntary,
        ctx_voluntary=task.ctx_voluntary,
        migrations=task.migrations,
        bypassed=task.sfs_bypassed,
        demoted=task.sfs_demoted,
        slice_granted=task.sfs_slice_granted,
        status=status,
        attempts=attempts,
    )


@dataclass
class RunResult:
    """One scheduler x workload execution."""

    scheduler: str
    engine: str
    records: List[RequestRecord]
    sim_time: int
    busy_time: int
    n_cores: int
    #: SFS extras (None for plain kernel runs)
    sfs_stats: Optional[object] = None
    slice_timeline: Optional[List[Tuple[int, int]]] = None
    queue_delay_samples: Optional[List[Tuple[int, int]]] = None
    overhead: Optional[object] = None
    meta: Dict[str, object] = field(default_factory=dict)
    #: run provenance (:class:`repro.trace.RunManifest`); attached by the
    #: experiment runner so every exported artifact can embed it
    manifest: Optional[object] = None

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=lambda r: r.req_id)

    # ------------------------------------------------------------------
    def array(self, attr: str) -> np.ndarray:
        """Column extraction in req_id order (stable across runs)."""
        return np.asarray([getattr(r, attr) for r in self.records], dtype=float)

    @property
    def turnarounds(self) -> np.ndarray:
        return self.array("turnaround")

    @property
    def rtes(self) -> np.ndarray:
        return self.array("rte")

    @property
    def utilization(self) -> float:
        if self.sim_time <= 0:
            return 0.0
        return self.busy_time / (self.sim_time * self.n_cores)

    def subset(self, predicate) -> List[RequestRecord]:
        return [r for r in self.records if predicate(r)]
