"""Run-Time Effectiveness (RTE), the paper's efficiency metric (Eq. 1).

``RTE = sum(CPU^i) / turnaround``: the aggregate CPU time the function
needs (measured under the IDEAL zero-interference scenario, which for
our task model is exactly its CPU demand) divided by the observed
turnaround.  RTE = 1 means the function ran to completion the moment it
was dispatched, with no preemption; lower values mean waiting — and,
per the paper, overcharging.

For functions with I/O the theoretical maximum is below 1 even in
isolation (the paper notes this); ``rte_normalized`` divides by the
*ideal duration* (CPU + I/O) instead so that 1.0 is always attainable.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def rte(cpu_demand_us: Number, turnaround_us: Number) -> float:
    """Eq. 1 of the paper."""
    if cpu_demand_us < 0:
        raise ValueError("cpu demand must be non-negative")
    if turnaround_us <= 0:
        raise ValueError("turnaround must be positive")
    return cpu_demand_us / turnaround_us


def rte_normalized(ideal_duration_us: Number, turnaround_us: Number) -> float:
    """RTE against the function's full ideal duration (CPU + I/O)."""
    if ideal_duration_us < 0:
        raise ValueError("ideal duration must be non-negative")
    if turnaround_us <= 0:
        raise ValueError("turnaround must be positive")
    return ideal_duration_us / turnaround_us
