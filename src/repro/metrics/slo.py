"""FaaS performance SLOs (the paper's §I proposal).

The paper observes that short-job-dominant FaaS workloads have no
established SLO and sketches one:

    "X% of function invocations must be finished within a soft/hard-
     bounded ratio with respect to the duration that this function
     would observe if running in an ideally isolated environment."

This module makes that definition concrete.  The *stretch* of a request
is ``turnaround / ideal_duration`` (>= 1); an :class:`SLO` asks that at
least ``quantile`` of requests have stretch <= ``bound``.  Because the
simulator knows every request's ideal duration exactly, attainment is
measured without estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.metrics.collector import RequestRecord, RunResult


def stretch(records: Iterable[RequestRecord]) -> np.ndarray:
    """Per-request stretch: turnaround over zero-interference duration."""
    out = []
    for r in records:
        ideal = max(1, r.ideal_duration)
        out.append(r.turnaround / ideal)
    a = np.asarray(out, dtype=float)
    if a.size == 0:
        raise ValueError("no records")
    return a


@dataclass(frozen=True)
class SLO:
    """'``quantile`` of invocations finish within ``bound`` x isolated'."""

    quantile: float  # e.g. 0.95
    bound: float     # e.g. 2.0 (at most twice the isolated duration)
    name: str = ""

    def __post_init__(self) -> None:
        if not (0 < self.quantile <= 1):
            raise ValueError("quantile must be in (0, 1]")
        if self.bound < 1:
            raise ValueError("bound must be >= 1 (stretch cannot beat isolation)")

    def attainment(self, records: Iterable[RequestRecord]) -> float:
        """Fraction of requests meeting the bound (target: >= quantile).

        A request that never produced a useful response (crashed out of
        retries, timed out, shed at admission) can never meet a latency
        SLO, whatever its nominal stretch: failures count as misses
        against the *full* request population.
        """
        records = list(records)
        if not records:
            raise ValueError("no records")
        ok = [r for r in records if r.ok]
        if not ok:
            return 0.0
        s = stretch(ok)
        return float((s <= self.bound).sum()) / len(records)

    def satisfied(self, records: Iterable[RequestRecord]) -> bool:
        return self.attainment(records) >= self.quantile

    def headroom(self, records: Iterable[RequestRecord]) -> float:
        """attainment - quantile: positive means the SLO holds with slack."""
        return self.attainment(records) - self.quantile


#: a reasonable default ladder, from lenient to strict
DEFAULT_SLOS: tuple = (
    SLO(0.50, 1.5, "p50 within 1.5x"),
    SLO(0.90, 2.0, "p90 within 2x"),
    SLO(0.95, 5.0, "p95 within 5x"),
    SLO(0.99, 20.0, "p99 within 20x"),
)


def slo_report(
    runs: Dict[str, RunResult], slos: Sequence[SLO] = DEFAULT_SLOS
) -> List[tuple]:
    """Rows of (slo name, scheduler, attainment, met?) for a run set."""
    rows = []
    for slo in slos:
        for name, run in runs.items():
            att = slo.attainment(run.records)
            rows.append((slo.name, name, att, att >= slo.quantile))
    return rows


def max_stretch_bound(
    records: Iterable[RequestRecord], quantile: float
) -> float:
    """The tightest bound this run could promise at ``quantile``
    (i.e. the stretch at that quantile) — useful for SLO calibration."""
    if not (0 < quantile <= 1):
        raise ValueError("quantile must be in (0, 1]")
    s = stretch(records)
    return float(np.quantile(s, quantile))
