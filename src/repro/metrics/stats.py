"""Distribution statistics: ECDFs, percentiles, paired comparisons.

Everything here is vectorised NumPy working on plain arrays, so the
experiment modules stay free of loops (per the HPC guides: vectorise,
avoid copies, operate on contiguous arrays).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

ArrayLike = Iterable[float]


def _arr(values: ArrayLike) -> np.ndarray:
    a = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                   dtype=float)
    if a.size == 0:
        raise ValueError("empty sample")
    return a


def ecdf(values: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions]."""
    a = np.sort(_arr(values))
    y = np.arange(1, a.size + 1) / a.size
    return a, y


#: the one interpolation method used everywhere a figure computes a
#: percentile: linear interpolation between closest ranks (NumPy's
#: documented default, Hyndman & Fan type 7).  Pinned explicitly so the
#: quantile-sketch tolerance tests compare against a stable definition
#: even if NumPy's default ever moves.
PERCENTILE_METHOD = "linear"


def percentile(values: ArrayLike, q: float) -> float:
    """Single percentile (q in [0, 100]), linear interpolation."""
    return float(np.percentile(_arr(values), q, method=PERCENTILE_METHOD))


def percentiles(values: ArrayLike, qs: Sequence[float] = (50, 90, 95, 99, 99.9)) -> Dict[float, float]:
    """Percentile breakdown used by Figs 8 and 15 (linear method)."""
    a = _arr(values)
    return {q: float(np.percentile(a, q, method=PERCENTILE_METHOD))
            for q in qs}


def fraction_below(values: ArrayLike, bound: float) -> float:
    """P(X < bound) — e.g. 'fraction of requests with RTE < 0.2'."""
    a = _arr(values)
    return float((a < bound).mean())


def fraction_at_least(values: ArrayLike, bound: float) -> float:
    """P(X >= bound) — e.g. 'fraction of requests with RTE >= 0.95'."""
    a = _arr(values)
    return float((a >= bound).mean())


def paired_speedup(baseline: ArrayLike, treatment: ArrayLike) -> np.ndarray:
    """Per-request speedup of treatment over baseline (same workload).

    >1 means the treatment (e.g. SFS) finished the request faster.
    """
    b = _arr(baseline)
    t = _arr(treatment)
    if b.shape != t.shape:
        raise ValueError("paired comparison requires equal-length runs")
    return b / np.maximum(t, 1e-12)


def improvement_summary(baseline: ArrayLike, treatment: ArrayLike) -> Dict[str, float]:
    """The paper's headline decomposition (83 % improved by 49.6x;
    the remaining 17 % run 1.29x longer).

    Returns fraction improved, mean speedup among the improved, and the
    mean slowdown among the rest.
    """
    s = paired_speedup(baseline, treatment)
    improved = s > 1.0
    frac = float(improved.mean())
    mean_speedup = float(s[improved].mean()) if improved.any() else 1.0
    rest = ~improved
    mean_slowdown = float((1.0 / s[rest]).mean()) if rest.any() else 1.0
    return {
        "fraction_improved": frac,
        "mean_speedup_improved": mean_speedup,
        "mean_slowdown_rest": mean_slowdown,
    }


def slowdown_percentiles(
    baseline: ArrayLike, treatment: ArrayLike, qs: Sequence[float] = (40, 70)
) -> Dict[float, float]:
    """Percentiles of baseline/treatment slowdown — Fig 2's '16x at p40,
    24x at p70' comparison of CFS against SRTF."""
    s = paired_speedup(baseline, treatment)  # baseline / treatment: > 1
    return {q: float(np.percentile(s, q, method=PERCENTILE_METHOD))
            for q in qs}
