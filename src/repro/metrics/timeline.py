"""Time-series helpers for the timeline figures (Figs 10, 12a).

Raw samples are ``(time_us, value)`` pairs recorded at irregular
instants (every queue pop, every slice recomputation).  The figures
need them binned onto a regular grid.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def bin_series(
    samples: Sequence[Tuple[int, float]],
    bin_us: int,
    agg: str = "max",
    end_time: int | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate irregular samples into fixed bins.

    ``agg``: "max" (queuing-delay spikes must not be averaged away),
    "mean", or "last" (step series like the time slice S).
    Empty bins hold NaN ("last" carries the previous value forward).
    Returns (bin start times, aggregated values).
    """
    if bin_us <= 0:
        raise ValueError("bin_us must be positive")
    if agg not in ("max", "mean", "last"):
        raise ValueError(f"unknown agg {agg!r}")
    if not samples:
        return np.array([], dtype=np.int64), np.array([])
    ts = np.asarray([s[0] for s in samples], dtype=np.int64)
    vs = np.asarray([s[1] for s in samples], dtype=float)
    horizon = end_time if end_time is not None else int(ts.max()) + 1
    n_bins = max(1, -(-horizon // bin_us))
    out = np.full(n_bins, np.nan)
    idx = np.minimum(ts // bin_us, n_bins - 1)
    if agg == "max":
        # NaN never wins a np.maximum, so seed with -inf and mask after
        out = np.full(n_bins, -np.inf)
        np.maximum.at(out, idx, vs)
        out[np.isinf(out)] = np.nan
    elif agg == "mean":
        sums = np.zeros(n_bins)
        counts = np.zeros(n_bins)
        np.add.at(sums, idx, vs)
        np.add.at(counts, idx, 1)
        with np.errstate(invalid="ignore"):
            out = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    else:  # last
        for t, v in zip(idx, vs):  # samples are few for step series
            out[t] = v
        # forward-fill
        last = np.nan
        for i in range(n_bins):
            if np.isnan(out[i]):
                out[i] = last
            else:
                last = out[i]
    starts = np.arange(n_bins, dtype=np.int64) * bin_us
    return starts, out


def step_value_at(samples: Sequence[Tuple[int, float]], t: int) -> float:
    """Value of a step series (e.g. the slice S) at time ``t``."""
    val = float("nan")
    for ts, v in samples:
        if ts > t:
            break
        val = v
    return val
