"""The runtime invariant checker.

One two-attribute protocol, mirroring :mod:`repro.trace.recorder`:

* ``enabled`` — class-level flag the hot paths branch on;
* ``on_*`` / ``check_*`` — assertion entry points called at event
  boundaries.

:class:`NullChecker` is the default everywhere and makes checking free
when off: instrumented call sites read one cached attribute and skip
the call entirely (``if self._inv_on: self._inv.on_charge(task)``), so
a disabled run pays a pointer load and a predictable branch per site —
the simulation stream is bit-identical to a build without this module.

:class:`InvariantChecker` verifies conservation laws:

* **work conservation** — every finished task was charged exactly the
  CPU/device service it demanded (killed tasks: never more);
* **no lost or duplicated exits** — each tid finishes exactly once;
* **monotone clocks** — virtual time and per-task vruntime never move
  backwards;
* **structural soundness** — CFS/RT/EEVDF runqueues stay internally
  consistent (cheap checks every call, full red-black audits sampled
  every ``deep_every`` calls);
* **keep-alive occupancy** — the warm-container cache never exceeds its
  cap or goes negative;
* **fault-accounting closure** — post-run, every arrival is ok, failed,
  timed out or shed exactly once and the governor's counters agree with
  the per-request records.

A failed check raises :class:`InvariantViolation` carrying the
offending state, the virtual time, and the run's replay coordinates
(workload seed + scheduler/engine label), so the exact event sequence
can be re-executed under a debugger or with tracing enabled.

The checker only ever *reads* simulation state — it never schedules
events, draws randomness, or mutates tasks — so a checked run produces
bit-identical results to an unchecked one.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional


def invariants_enabled_by_default() -> bool:
    """Environment switch: ``REPRO_INVARIANTS=1`` turns checking on
    everywhere a driver does not say otherwise (CI sets it)."""
    return os.environ.get("REPRO_INVARIANTS", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class InvariantViolation(RuntimeError):
    """A conservation law was broken; the simulation state is corrupt.

    Carries everything needed to replay the failure: the invariant
    name, the virtual time, the offending tid (when task-scoped), the
    workload seed and the scheduler/engine label of the run.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        sim_time: Optional[int] = None,
        tid: Optional[int] = None,
        seed: Optional[int] = None,
        label: str = "",
        context: Optional[Dict[str, Any]] = None,
    ):
        self.invariant = invariant
        self.detail = detail
        self.sim_time = sim_time
        self.tid = tid
        self.seed = seed
        self.label = label
        self.context = dict(context or {})
        super().__init__(self.report())

    def report(self) -> str:
        """One-paragraph replayable report."""
        parts = [f"invariant violated: {self.invariant}", self.detail]
        where = []
        if self.sim_time is not None:
            where.append(f"t={self.sim_time}us")
        if self.tid is not None:
            where.append(f"tid={self.tid}")
        if where:
            parts.append("at " + " ".join(where))
        replay = []
        if self.label:
            replay.append(self.label)
        if self.seed is not None:
            replay.append(f"seed={self.seed}")
        if replay:
            parts.append("replay with " + " ".join(replay) +
                         " and REPRO_INVARIANTS=1")
        if self.context:
            ctx = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
            parts.append(f"[{ctx}]")
        return " | ".join(parts)


class NullChecker:
    """Do-nothing checker; the zero-overhead default."""

    __slots__ = ()

    enabled: bool = False

    # hot-path hooks -----------------------------------------------------
    def on_event(self, now: int, prev: int) -> None:  # pragma: no cover
        return None

    def on_charge(self, task: Any) -> None:  # pragma: no cover
        return None

    def on_task_finish(self, task: Any, now: int) -> None:  # pragma: no cover
        return None

    def on_runqueue(self, rq: Any) -> None:  # pragma: no cover
        return None

    def on_fluid_pool(self, machine: Any) -> None:  # pragma: no cover
        return None

    def on_warm_cache(self, cache: Any, app: str) -> None:  # pragma: no cover
        return None

    # post-run hooks -----------------------------------------------------
    def check_accounting(self, workload: Any, records: Any,
                         fault_stats: Optional[Dict[str, int]] = None) -> None:
        return None

    def summary(self) -> Dict[str, int]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullChecker>"


#: shared singleton — every unchecked run points here.
NULL_CHECKER = NullChecker()


class InvariantChecker(NullChecker):
    """In-process conservation-law auditor (see module docstring).

    ``deep_every`` bounds the cost of the expensive structural audits
    (full red-black invariant walks, pool/heap cross-checks): cheap
    O(1) consistency checks run at every boundary, deep O(n) audits on
    every ``deep_every``-th call per site.
    """

    __slots__ = ("seed", "label", "deep_every", "_counts", "_ticks",
                 "_last_now", "_vruntime", "_finished", "_min_vruntime")

    enabled = True

    def __init__(self, seed: Optional[int] = None, label: str = "",
                 deep_every: int = 64):
        if deep_every <= 0:
            raise ValueError("deep_every must be positive")
        self.seed = seed
        self.label = label
        self.deep_every = deep_every
        self._counts: Dict[str, int] = {}
        self._ticks: Dict[str, int] = {}
        self._last_now: int = 0
        self._vruntime: Dict[int, int] = {}      # tid -> last seen vruntime
        self._finished: set = set()              # tids that already exited
        self._min_vruntime: Dict[int, int] = {}  # id(rq) -> last min_vruntime

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _fail(self, invariant: str, detail: str, *, now: Optional[int] = None,
              tid: Optional[int] = None, **context: Any) -> None:
        raise InvariantViolation(
            invariant, detail, sim_time=now if now is not None else self._last_now,
            tid=tid, seed=self.seed, label=self.label, context=context,
        )

    def _count(self, invariant: str) -> None:
        self._counts[invariant] = self._counts.get(invariant, 0) + 1

    def _deep_due(self, site: str) -> bool:
        tick = self._ticks.get(site, 0)
        self._ticks[site] = tick + 1
        return tick % self.deep_every == 0

    def summary(self) -> Dict[str, int]:
        """Checks performed per invariant (diagnostics / tests)."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # hot-path hooks
    # ------------------------------------------------------------------
    def on_event(self, now: int, prev: int) -> None:
        """Monotone virtual clock: events fire in non-decreasing time."""
        self._count("monotone-clock")
        if now < prev:
            self._fail("monotone-clock",
                       f"event at t={now} fired after clock reached {prev}",
                       now=now)
        self._last_now = now

    def on_charge(self, task: Any) -> None:
        """After any CPU-service charge: per-task accounting stays sane."""
        self._count("monotone-vruntime")
        last = self._vruntime.get(task.tid)
        if last is not None and task.vruntime < last:
            self._fail("monotone-vruntime",
                       f"vruntime moved backwards: {last} -> {task.vruntime}",
                       tid=task.tid)
        self._vruntime[task.tid] = task.vruntime
        if task.burst_remaining < 0:
            self._fail("work-conservation",
                       f"negative burst remainder {task.burst_remaining}",
                       tid=task.tid)
        if task.cpu_time > task.cpu_demand:
            self._fail(
                "work-conservation",
                f"service charged ({task.cpu_time}us) exceeds demand "
                f"({task.cpu_demand}us)", tid=task.tid,
            )

    def on_task_finish(self, task: Any, now: int) -> None:
        """Exit boundary: conservation + exactly-once accounting."""
        self._count("work-conservation")
        if task.tid in self._finished:
            self._fail("no-lost-tasks",
                       "task reported finished twice", tid=task.tid, now=now)
        self._finished.add(task.tid)
        if task.finish_time != now:
            self._fail("work-conservation",
                       f"finish_time {task.finish_time} != exit event time {now}",
                       tid=task.tid, now=now)
        if task.dispatch_time is None or task.dispatch_time > now:
            self._fail("work-conservation",
                       f"finished before dispatch ({task.dispatch_time})",
                       tid=task.tid, now=now)
        if task.wait_time < 0 or task.cpu_time < 0 or task.io_time < 0:
            self._fail("work-conservation",
                       f"negative accounting: wait={task.wait_time} "
                       f"cpu={task.cpu_time} io={task.io_time}",
                       tid=task.tid, now=now)
        if task.killed:
            # a killed task is charged at most what it demanded
            if task.cpu_time > task.cpu_demand or task.io_time > task.io_demand:
                self._fail(
                    "work-conservation",
                    f"killed task over-charged: cpu {task.cpu_time}/"
                    f"{task.cpu_demand}us io {task.io_time}/{task.io_demand}us",
                    tid=task.tid, now=now, kill_reason=task.kill_reason,
                )
            return
        if task.cpu_time != task.cpu_demand:
            self._fail(
                "work-conservation",
                f"service charged ({task.cpu_time}us) != service demanded "
                f"({task.cpu_demand}us)", tid=task.tid, now=now, name=task.name,
            )
        if task.io_time != task.io_demand:
            self._fail(
                "work-conservation",
                f"device time ({task.io_time}us) != device demand "
                f"({task.io_demand}us)", tid=task.tid, now=now, name=task.name,
            )
        if task.current_burst is not None or task.burst_remaining != 0:
            self._fail(
                "work-conservation",
                f"finished mid-burst (index {task.burst_index}, "
                f"{task.burst_remaining}us left)", tid=task.tid, now=now,
            )

    def on_runqueue(self, rq: Any) -> None:
        """Structural soundness of a CFS / RT / EEVDF runqueue."""
        self._count("runqueue-soundness")
        deep = self._deep_due(f"rq:{id(rq)}")
        try:
            rq.validate(deep=deep)
        except (AssertionError, RuntimeError) as exc:
            self._fail("runqueue-soundness", str(exc),
                       kind=type(rq).__name__)
        min_vr = getattr(rq, "min_vruntime", None)
        if min_vr is not None:
            last = self._min_vruntime.get(id(rq))
            if last is not None and min_vr < last:
                self._fail(
                    "monotone-vruntime",
                    f"min_vruntime moved backwards: {last} -> {min_vr}",
                    kind=type(rq).__name__,
                )
            self._min_vruntime[id(rq)] = min_vr

    def on_fluid_pool(self, machine: Any) -> None:
        """Fluid-engine pool consistency (sampled deep cross-check)."""
        self._count("fluid-pool")
        if len(machine._rt_running) > machine.n_cores:
            self._fail(
                "runqueue-soundness",
                f"{len(machine._rt_running)} dedicated tasks on "
                f"{machine.n_cores} cores",
            )
        if not self._deep_due(f"pool:{id(machine)}"):
            return
        # lazily-cancelled heap entries are stale by design; a pool
        # member is sound iff its *current* target has a live entry
        heap_entries = {(t.tid, target) for target, _seq, t in machine._heap}
        for tid, task in machine._pool.items():
            if task.state.value != "running":
                self._fail("runqueue-soundness",
                           f"pool task in state {task.state.value}", tid=tid)
            target = getattr(task, "_pool_target", None)
            if (tid, target) not in heap_entries:
                self._fail(
                    "runqueue-soundness",
                    f"pool task missing live heap entry (target {target})",
                    tid=tid,
                )

    def on_warm_cache(self, cache: Any, app: str) -> None:
        """Keep-alive occupancy vs. sandbox lifecycle."""
        self._count("keepalive-occupancy")
        warm = cache.warm_count(app)
        cap = cache.config.max_warm_per_app
        if warm < 0 or warm > cap:
            self._fail(
                "keepalive-occupancy",
                f"app {app!r} holds {warm} warm containers (cap {cap})",
            )
        stats = cache.stats
        if stats.cold_starts < 0 or stats.warm_hits < 0 or stats.expirations < 0:
            self._fail("keepalive-occupancy",
                       f"negative cache counters: {stats}")

    # ------------------------------------------------------------------
    # post-run accounting closure
    # ------------------------------------------------------------------
    def check_accounting(self, workload: Any, records: Any,
                         fault_stats: Optional[Dict[str, int]] = None) -> None:
        """No-lost-tasks + fault-accounting closure over a finished run.

        Every arrival must appear in the records exactly once; statuses
        must partition the arrivals; when a fault governor ran, its
        aggregate counters must agree with the per-request outcomes.
        This is the cluster's *exactly-once* guarantee: no matter how
        attempts were retried, failed over or hedged, each request ends
        with one terminal status and one record.
        """
        self._count("no-lost-tasks")
        self._count("exactly-once")
        want = sorted(spec.req_id for spec in workload)
        got = sorted(r.req_id for r in records)
        if want != got:
            missing = sorted(set(want) - set(got))[:5]
            extra = sorted(set(got) - set(want))[:5]
            dupes = len(got) - len(set(got))
            # a duplicated req_id means a request ended with more than
            # one terminal outcome — the exactly-once guarantee broke
            # (a hedge loser or failover ghost produced its own record)
            name = "exactly-once" if dupes else "no-lost-tasks"
            self._fail(
                name,
                f"records do not cover arrivals exactly once: "
                f"{len(want)} arrivals, {len(got)} records "
                f"(missing {missing}, unexpected {extra}, {dupes} duplicated)",
            )
        by_status: Dict[str, int] = {}
        for r in records:
            by_status[r.status] = by_status.get(r.status, 0) + 1
            if r.status not in ("ok", "failed", "timeout", "shed",
                                "host_lost"):
                self._fail("fault-closure",
                           f"unknown terminal status {r.status!r}",
                           req_id=r.req_id)
            if r.status == "ok" and r.attempts < 1:
                self._fail("fault-closure",
                           f"ok request with {r.attempts} attempts",
                           req_id=r.req_id)
            if r.status == "shed" and r.attempts != 0:
                self._fail("fault-closure",
                           f"shed request with {r.attempts} attempts",
                           req_id=r.req_id)
        if fault_stats is None:
            bad = {k: v for k, v in by_status.items() if k != "ok"}
            if bad:
                self._fail("fault-closure",
                           f"non-ok outcomes without a fault governor: {bad}")
            return
        self._count("fault-closure")
        n = len(records)
        total = sum(by_status.values())
        if total != n:
            self._fail("fault-closure",
                       f"statuses sum to {total}, expected {n}")
        if by_status.get("shed", 0) != fault_stats.get("shed", 0):
            self._fail(
                "fault-closure",
                f"governor shed {fault_stats.get('shed', 0)} but records "
                f"show {by_status.get('shed', 0)}",
            )
        if by_status.get("failed", 0) != fault_stats.get("abandoned", 0):
            self._fail(
                "fault-closure",
                f"governor abandoned {fault_stats.get('abandoned', 0)} but "
                f"records show {by_status.get('failed', 0)} failed",
            )
        if by_status.get("host_lost", 0) != fault_stats.get("host_lost", 0):
            self._fail(
                "fault-closure",
                f"governor lost {fault_stats.get('host_lost', 0)} requests "
                f"to failed hosts but records show "
                f"{by_status.get('host_lost', 0)} host_lost",
            )
        if fault_stats.get("hedge_wins", 0) > fault_stats.get("hedges", 0):
            self._fail(
                "fault-closure",
                f"{fault_stats.get('hedge_wins', 0)} hedge wins exceed "
                f"{fault_stats.get('hedges', 0)} hedges launched",
            )
        # every attempt beyond a request's first was paid for by a
        # scheduled retry, a failover re-dispatch or a hedge launch
        retries = sum(max(0, r.attempts - 1) for r in records)
        budget = (fault_stats.get("retries", 0)
                  + fault_stats.get("failovers", 0)
                  + fault_stats.get("hedges", 0))
        if retries > budget:
            self._fail(
                "fault-closure",
                f"records imply >= {retries} extra attempts but the "
                f"governor paid for {budget} (retries + failovers + "
                f"hedges)",
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(self._counts.values())
        return f"<InvariantChecker {total} checks, label={self.label!r}>"


def resolve_checker(
    explicit: Optional[bool],
    seed: Optional[int] = None,
    label: str = "",
) -> NullChecker:
    """Pick the checker for a run.

    ``explicit`` is a driver/config override: True forces checking on,
    False forces it off, None defers to ``REPRO_INVARIANTS``.
    """
    on = invariants_enabled_by_default() if explicit is None else explicit
    if not on:
        return NULL_CHECKER
    return InvariantChecker(seed=seed, label=label)
