"""Runtime invariant checking (``repro.invariants``).

The reproduction's headline claims are ordering/accounting properties:
a single off-by-one in vruntime or keep-alive state would corrupt them
without any test failing.  This package makes the simulator *detect its
own* miscounting:

* :mod:`repro.invariants.checker` — an opt-in runtime checker threaded
  through the simulator, both machine engines, the CFS/RT/EEVDF
  runqueues and the FaaS layer.  It asserts conservation laws at event
  boundaries (work conservation, no-lost-tasks, monotone clocks and
  vruntime, runqueue structural soundness, keep-alive occupancy,
  fault-accounting closure) and raises a structured
  :class:`InvariantViolation` carrying the offending state, sim time
  and a replay seed.
* :mod:`repro.invariants.diff` — differential validation: the same
  seeded workload through fluid vs. discrete engines and CFS vs. the
  ideal oracle, comparing per-request records within configured
  tolerances (``repro check`` on the command line).

Activation mirrors the ``NullRecorder`` pattern from ``repro.trace``:
the default :data:`NULL_CHECKER` makes every instrumented site cost one
attribute load and a predictable branch, so disabled runs stay on the
exact pre-invariants code path.  Set ``REPRO_INVARIANTS=1`` (CI does)
or pass ``RunConfig(invariants=True)`` to turn checking on.
"""

from repro.invariants.checker import (
    NULL_CHECKER,
    InvariantChecker,
    InvariantViolation,
    NullChecker,
    invariants_enabled_by_default,
    resolve_checker,
)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "NullChecker",
    "NULL_CHECKER",
    "invariants_enabled_by_default",
    "resolve_checker",
]
