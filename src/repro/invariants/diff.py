"""Differential validation: two implementations, one answer.

The reproduction maintains two independent machine engines — the fluid
processor-sharing model and the per-slice discrete reference — plus an
analytically-trivial IDEAL oracle.  Agreement between independently-
built implementations is the strongest correctness evidence short of a
proof, so this module runs the *same seeded workload* through pairs of
them and compares per-request records:

* :func:`diff_engines` — fluid vs. discrete.  Terminal statuses and
  attempt counts must match exactly (fault decisions are pure functions
  of ``(seed, req_id, attempt)``, so any mismatch is a real bug);
  charged CPU service for successful requests must equal demand in
  both; per-request turnarounds may differ by up to one scheduling
  round per residence (the documented model error, ~0.9 relative in
  the worst case) but aggregates must agree tightly.
* :func:`diff_oracle` — a real scheduler vs. IDEAL.  The oracle's
  turnaround is *exactly* the request's intrinsic burst sum, and no
  work-conserving scheduler on finite cores can beat it, so every
  request must satisfy ``turnaround >= ideal`` (checked with
  zero context-switch cost, where the bound is exact).

The first divergence is reported with trace context: the run is
replayed with a :class:`repro.trace.TraceRecorder` and the offending
request's event history is attached to the report.

``repro check`` drives :func:`run_check_battery` from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.experiments.runner import RunConfig, run_workload
from repro.faults.plan import FaultPlan
from repro.faults.policy import RetryPolicy
from repro.machine.base import MachineParams
from repro.trace import TraceRecorder
from repro.trace import events as tev
from repro.workload.faasbench import FaaSBench, FaaSBenchConfig
from repro.workload.spec import Workload


@dataclass(frozen=True)
class DiffTolerance:
    """How much the fluid and discrete engines may disagree.

    Defaults are calibrated against the engine-agreement test suite:
    per-request divergence up to one scheduling round per residence is
    a documented property of the fluid approximation, while aggregate
    statistics track much more tightly.
    """

    #: symmetric per-request bound: |a-b| / max(a, b) for turnarounds.
    per_request_rel: float = 0.95
    #: additive floor so microsecond-scale requests aren't flagged.
    per_request_abs: int = 1000
    #: mean turnaround relative difference.
    mean_rel: float = 0.15
    #: median turnaround relative difference.
    median_rel: float = 0.30
    #: minimum ok-sample size before the mean/median aggregate checks
    #: apply.  The aggregate bounds are calibrated on 150+ request
    #: workloads; on a handful of requests (the fuzzer's shrunk cases)
    #: one request's documented per-round divergence IS the mean, so
    #: small samples are judged per-request only.
    aggregate_min_n: int = 0

    def __post_init__(self) -> None:
        for name in ("per_request_rel", "mean_rel", "median_rel"):
            v = getattr(self, name)
            if not (0.0 < v <= 1.0) or v != v:
                raise ValueError(f"{name} must be in (0, 1], got {v!r}")
        if self.per_request_abs < 0:
            raise ValueError("per_request_abs must be >= 0")
        if self.aggregate_min_n < 0:
            raise ValueError("aggregate_min_n must be >= 0")


@dataclass
class DiffReport:
    """Outcome of one differential comparison."""

    name: str
    n_requests: int = 0
    divergences: List[str] = field(default_factory=list)
    #: req_id of the first per-request divergence (None when clean).
    first_divergence: Optional[int] = None
    #: event history of the diverging request under both runs.
    trace_context: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        head = f"[{'PASS' if self.ok else 'FAIL'}] {self.name} " \
               f"({self.n_requests} requests)"
        if self.ok:
            return head
        lines = [head]
        lines += [f"  divergence: {d}" for d in self.divergences[:10]]
        if len(self.divergences) > 10:
            lines.append(f"  ... and {len(self.divergences) - 10} more")
        if self.trace_context:
            lines.append(f"  trace context for req {self.first_divergence}:")
            lines += [f"    {line}" for line in self.trace_context]
        return "\n".join(lines)


def _records_by_id(result) -> dict:
    return {r.req_id: r for r in result.records}


def _trace_context(workload: Workload, cfg: RunConfig, req_id: int,
                   limit: int = 30) -> List[str]:
    """Replay ``cfg`` with tracing and return the event history of the
    request's task(s) — the debugging breadcrumb for a divergence."""
    trace = TraceRecorder()
    try:
        run_workload(workload, cfg, trace=trace)
    except Exception as exc:  # the replay itself may trip the checker
        return [f"(replay failed: {exc})"]
    tids = {
        ev.tid for ev in trace.events
        if ev.kind == tev.TASK_SPAWN and len(ev.args) >= 2
        and ev.args[1] == req_id
    }
    if not tids:
        return ["(request never spawned a task)"]
    lines = []
    for ev in trace.events:
        if ev.tid in tids:
            lines.append(
                f"t={ev.ts} {ev.kind} tid={ev.tid}"
                + (f" core={ev.core}" if ev.core >= 0 else "")
                + (f" args={ev.args}" if ev.args else "")
            )
    if len(lines) > limit:
        head = limit // 2
        lines = lines[:head] + [f"... {len(lines) - limit} events elided ..."] \
            + lines[-(limit - head):]
    return lines


def diff_engines(
    workload: Workload,
    cfg: RunConfig,
    tol: DiffTolerance = DiffTolerance(),
) -> DiffReport:
    """Run ``workload`` through both engines and compare records."""
    fluid_cfg = replace(cfg, engine="fluid")
    disc_cfg = replace(cfg, engine="discrete")
    fluid = run_workload(workload, fluid_cfg)
    disc = run_workload(workload, disc_cfg)
    f_by, d_by = _records_by_id(fluid), _records_by_id(disc)
    report = DiffReport(
        name=f"engines:{cfg.scheduler}"
             + (":faulted" if cfg.fault_handling else ""),
        n_requests=len(workload),
    )

    def diverge(req_id: Optional[int], msg: str) -> None:
        report.divergences.append(msg)
        if report.first_divergence is None and req_id is not None:
            report.first_divergence = req_id

    if set(f_by) != set(d_by):
        only_f = sorted(set(f_by) - set(d_by))[:5]
        only_d = sorted(set(d_by) - set(f_by))[:5]
        diverge(None, f"record coverage differs: fluid-only {only_f}, "
                      f"discrete-only {only_d}")
    for req_id in sorted(set(f_by) & set(d_by)):
        fr, dr = f_by[req_id], d_by[req_id]
        if (fr.status, fr.attempts) != (dr.status, dr.attempts):
            diverge(req_id,
                    f"req {req_id}: outcome fluid={fr.status}/{fr.attempts} "
                    f"discrete={dr.status}/{dr.attempts}")
            continue
        if fr.status == "ok":
            if fr.cpu_time != fr.cpu_demand or dr.cpu_time != dr.cpu_demand:
                diverge(req_id,
                        f"req {req_id}: service != demand (fluid "
                        f"{fr.cpu_time}/{fr.cpu_demand}, discrete "
                        f"{dr.cpu_time}/{dr.cpu_demand})")
                continue
            gap = abs(fr.turnaround - dr.turnaround)
            bound = tol.per_request_abs + \
                tol.per_request_rel * max(fr.turnaround, dr.turnaround)
            if gap > bound:
                diverge(req_id,
                        f"req {req_id}: turnaround fluid={fr.turnaround}us "
                        f"discrete={dr.turnaround}us (gap {gap} > "
                        f"bound {bound:.0f})")
    ok_f = np.array([r.turnaround for r in fluid.records if r.status == "ok"],
                    dtype=float)
    ok_d = np.array([r.turnaround for r in disc.records if r.status == "ok"],
                    dtype=float)
    if ok_f.size >= max(1, tol.aggregate_min_n) and ok_d.size:
        mean_gap = abs(ok_f.mean() - ok_d.mean()) / max(ok_d.mean(), 1.0)
        if mean_gap > tol.mean_rel:
            diverge(None, f"mean turnaround diverges {mean_gap:.1%} "
                          f"(> {tol.mean_rel:.0%})")
        med_gap = abs(np.median(ok_f) - np.median(ok_d)) / \
            max(float(np.median(ok_d)), 1.0)
        if med_gap > tol.median_rel:
            diverge(None, f"median turnaround diverges {med_gap:.1%} "
                          f"(> {tol.median_rel:.0%})")
    if report.first_divergence is not None:
        report.trace_context = _trace_context(
            workload, disc_cfg, report.first_divergence
        )
    return report


def diff_oracle(
    workload: Workload,
    cfg: RunConfig,
) -> DiffReport:
    """Compare ``cfg.scheduler`` against the IDEAL oracle.

    Two exact laws (with zero context-switch cost and no faults):
    the oracle's turnaround equals the intrinsic burst sum, and no
    scheduler can beat the oracle on any request.
    """
    if cfg.fault_handling:
        raise ValueError("the oracle bound only holds for nominal runs")
    base = replace(cfg, machine=replace(cfg.machine, ctx_switch_cost=0))
    real = run_workload(workload, base)
    ideal = run_workload(workload, base.with_scheduler("ideal"))
    r_by, i_by = _records_by_id(real), _records_by_id(ideal)
    report = DiffReport(
        name=f"oracle:{cfg.scheduler}-vs-ideal", n_requests=len(workload)
    )

    def diverge(req_id: int, msg: str) -> None:
        report.divergences.append(msg)
        if report.first_divergence is None:
            report.first_divergence = req_id

    for req_id in sorted(i_by):
        ir = i_by[req_id]
        if ir.turnaround != ir.ideal_duration:
            diverge(req_id,
                    f"req {req_id}: oracle turnaround {ir.turnaround}us != "
                    f"intrinsic duration {ir.ideal_duration}us")
        rr = r_by.get(req_id)
        if rr is None:
            diverge(req_id, f"req {req_id}: missing from {cfg.scheduler} run")
            continue
        if rr.turnaround < ir.turnaround:
            diverge(req_id,
                    f"req {req_id}: {cfg.scheduler} turnaround "
                    f"{rr.turnaround}us beats the oracle ({ir.turnaround}us)")
        if rr.cpu_time != rr.cpu_demand:
            diverge(req_id,
                    f"req {req_id}: {cfg.scheduler} charged {rr.cpu_time}us "
                    f"for {rr.cpu_demand}us of demand")
    if report.first_divergence is not None:
        report.trace_context = _trace_context(
            workload, base, report.first_divergence
        )
    return report


def run_check_battery(
    quick: bool = False, seed: int = 21
) -> List[DiffReport]:
    """The ``repro check`` battery: engine and oracle diffs over seeded
    workloads, with invariant checking active inside every run.

    ``quick`` shrinks the workloads for CI smoke; the full battery adds
    a second load point and a faulted engine diff.
    """
    n = 150 if quick else 400
    cores = 8
    reports: List[DiffReport] = []

    def make(load: float, seed_: int) -> Workload:
        return FaaSBench(
            FaaSBenchConfig(n_requests=n, n_cores=cores, target_load=load),
            seed=seed_,
        ).generate()

    base = RunConfig(machine=MachineParams(n_cores=cores), invariants=True)
    wl = make(0.9, seed)
    reports.append(diff_engines(wl, replace(base, scheduler="cfs")))
    reports.append(diff_engines(wl, replace(base, scheduler="sfs")))
    reports.append(diff_oracle(wl, replace(base, scheduler="cfs")))
    reports.append(diff_oracle(wl, replace(base, scheduler="sfs")))
    faulted = replace(
        base, scheduler="cfs",
        faults=FaultPlan(seed=seed + 1, crash_prob=0.08),
        retry=RetryPolicy(max_attempts=3),
    )
    reports.append(diff_engines(wl, faulted))
    if not quick:
        heavy = make(1.0, seed + 7)
        reports.append(diff_engines(heavy, replace(base, scheduler="cfs")))
        reports.append(diff_engines(heavy, replace(base, scheduler="sfs")))
        reports.append(diff_oracle(heavy, replace(base, scheduler="srtf")))
    return reports
