"""repro — a full reproduction of *SFS: Smart OS Scheduling for
Serverless Functions* (Fu, Liu, Wang, Cheng, Chen; SC 2022) as a
deterministic discrete-event simulation.

Quick start::

    from repro import (
        FaaSBench, FaaSBenchConfig, RunConfig, run_workload,
    )

    wl = FaaSBench(FaaSBenchConfig(n_requests=5000, n_cores=12,
                                   target_load=1.0), seed=42).generate()
    cfs = run_workload(wl, RunConfig(scheduler="cfs"))
    sfs = run_workload(wl, RunConfig(scheduler="sfs"))
    print(cfs.turnarounds.mean() / sfs.turnarounds.mean())

Packages:

* ``repro.sim``      — discrete-event kernel (virtual time in integer us)
* ``repro.sched``    — CFS / FIFO / RR / SRTF / IDEAL scheduler models
* ``repro.machine``  — multi-core host engines (discrete + fluid)
* ``repro.core``     — SFS itself (FILTER pool, monitor, poller, overload)
* ``repro.workload`` — FaaSBench and the synthetic Azure trace
* ``repro.faas``     — the OpenLambda platform model
* ``repro.faults``   — fault injection, retries, graceful degradation
* ``repro.metrics``  — RTE, CDFs, percentiles, timelines
* ``repro.explore``  — interactive run explorer (one offline HTML)
* ``repro.experiments`` — one module per table/figure of the paper
"""

from repro.core import SFS, SFSConfig
from repro.experiments.runner import (
    RunConfig,
    run_bundled,
    run_many,
    run_workload,
)
from repro.explore import RunBundle, write_explorer
from repro.faas import OpenLambdaConfig, run_openlambda
from repro.faults import AdmissionControl, FaultPlan, RetryPolicy
from repro.machine import DiscreteMachine, FluidMachine, MachineParams
from repro.metrics import RequestRecord, RunResult
from repro.sim import Simulator, Task
from repro.trace import RunManifest, TraceRecorder
from repro.workload import FaaSBench, FaaSBenchConfig, Workload

__version__ = "1.0.0"

__all__ = [
    "SFS",
    "SFSConfig",
    "RunConfig",
    "run_workload",
    "run_many",
    "run_bundled",
    "RunBundle",
    "write_explorer",
    "run_openlambda",
    "OpenLambdaConfig",
    "FaultPlan",
    "RetryPolicy",
    "AdmissionControl",
    "MachineParams",
    "DiscreteMachine",
    "FluidMachine",
    "Simulator",
    "Task",
    "FaaSBench",
    "FaaSBenchConfig",
    "Workload",
    "RunResult",
    "RequestRecord",
    "TraceRecorder",
    "RunManifest",
    "__version__",
]
