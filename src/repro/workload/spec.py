"""Workload containers.

A :class:`Workload` is an immutable list of :class:`RequestSpec`:
absolute arrival time plus a concrete burst profile.  Generators build
specs once (all randomness up front); drivers then turn each spec into
a live :class:`repro.sim.task.Task` at its arrival event, so the same
workload can be replayed against every scheduler bit-for-bit — the
paired-comparison discipline all the paper's figures rely on.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.task import Burst, BurstKind, SchedPolicy, Task


@dataclass(frozen=True)
class RequestSpec:
    """One function invocation request."""

    req_id: int
    arrival: int                      # absolute virtual time, us
    bursts: Tuple[Burst, ...]         # concrete demand of this invocation
    name: str = ""                    # e.g. "fib-24"
    app: str = ""                     # e.g. "fib" | "md" | "sa"

    def __post_init__(self) -> None:
        # float arrivals (incl. NaN, which passes `< 0`) would corrupt
        # the integer event heap — reject at construction
        if isinstance(self.arrival, bool) or not isinstance(
            self.arrival, numbers.Integral
        ):
            raise ValueError(
                f"request {self.req_id}: arrival must be an integer time "
                f"in us, got {self.arrival!r}"
            )
        if self.arrival < 0:
            raise ValueError(
                f"request {self.req_id}: arrival must be non-negative, "
                f"got {self.arrival}"
            )
        if not self.bursts:
            raise ValueError(f"request {self.req_id} needs at least one burst")

    @property
    def cpu_demand(self) -> int:
        return sum(b.duration for b in self.bursts if b.kind is BurstKind.CPU)

    @property
    def io_demand(self) -> int:
        return sum(b.duration for b in self.bursts if b.kind is BurstKind.IO)

    @property
    def ideal_duration(self) -> int:
        return self.cpu_demand + self.io_demand

    def make_task(self, policy: SchedPolicy = SchedPolicy.CFS) -> Task:
        """Instantiate a fresh task for this request."""
        return Task(
            bursts=list(self.bursts), name=self.name, app=self.app, policy=policy
        )


@dataclass
class Workload:
    """An arrival-ordered sequence of requests plus provenance metadata."""

    requests: List[RequestSpec]
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda r: (r.arrival, r.req_id))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RequestSpec]:
        return iter(self.requests)

    @property
    def makespan_lower_bound(self) -> int:
        """Last arrival (a run can never finish before this)."""
        return self.requests[-1].arrival if self.requests else 0

    @property
    def total_cpu_demand(self) -> int:
        return sum(r.cpu_demand for r in self.requests)

    def offered_load(self, n_cores: int) -> float:
        """Average CPU utilisation this workload offers to ``n_cores``.

        rho = lambda * E[CPU demand] / c, computed over the arrival span.
        """
        if len(self.requests) < 2:
            return 0.0
        span = self.requests[-1].arrival - self.requests[0].arrival
        if span <= 0:
            return float("inf")
        return self.total_cpu_demand / (span * n_cores)

    def mean_iat(self) -> float:
        """Mean inter-arrival time (us)."""
        if len(self.requests) < 2:
            return float("inf")
        span = self.requests[-1].arrival - self.requests[0].arrival
        return span / (len(self.requests) - 1)

    def filter(self, predicate) -> "Workload":
        """A new workload keeping requests where ``predicate(spec)``."""
        return Workload([r for r in self.requests if predicate(r)], dict(self.meta))
