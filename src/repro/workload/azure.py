"""Synthetic Azure Functions trace (stand-in for dataset [48]).

The real 2019 Azure Functions dataset is not redistributable, so we
synthesise a trace calibrated to **every statistic the paper quotes
from it**:

* average execution duration spans seven orders of magnitude
  (sub-millisecond to hundreds of seconds);
* 37.2 % of functions average < 300 ms, 57.2 % < 1 s, 99.9 % < 224 s
  (Fig 1's anchors);
* the Day-1 invocation-level duration histogram is multi-modal with
  the Table I bin masses;
* invocation counts across applications are heavy-tailed (a few apps
  dominate traffic), and arrivals are bursty at minute granularity.

The duration model is a three-component log-normal mixture whose
parameters were fit to the three CDF anchors; the calibration tests
assert the anchors within ±4 %.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.sim.units import MS, SEC

#: Log-normal mixture over per-app average durations: (weight,
#: median_us, sigma).  Fit to the Fig 1 anchors (see module docstring).
DURATION_MIXTURE: Tuple[Tuple[float, float, float], ...] = (
    (0.42, 100 * MS, 1.4),   # short, latency-sensitive functions
    (0.33, 900 * MS, 1.0),   # ~second-scale functions
    (0.25, 12 * SEC, 1.15),  # long batch/ETL-style functions
)

#: clamp to the dataset's physical range: 0.1 ms .. 1000 s
MIN_DURATION_US = 100
MAX_DURATION_US = 1000 * SEC

#: the paper's quoted anchors: fraction of functions under each bound
FIG1_ANCHORS: Tuple[Tuple[int, float], ...] = (
    (300 * MS, 0.372),
    (1 * SEC, 0.572),
    (224 * SEC, 0.999),
)


@dataclass(frozen=True)
class AppRecord:
    """Per-application statistics, mirroring the dataset's schema."""

    app_id: str
    avg_duration_us: int
    min_duration_us: int
    max_duration_us: int
    total_invocations: int


@dataclass
class AzureTrace:
    """A synthetic day of Azure Functions traffic."""

    apps: List[AppRecord]
    #: per-minute invocation counts for each *sampled* app (app_id ->
    #: 1440-length array), used for IAT extraction like §VII.
    minute_counts: dict

    def durations(self) -> np.ndarray:
        return np.array([a.avg_duration_us for a in self.apps], dtype=np.int64)

    def duration_cdf(self, bounds_us: Sequence[int]) -> List[float]:
        """Fraction of apps with average duration under each bound."""
        d = self.durations()
        return [float((d < b).mean()) for b in bounds_us]

    # ------------------------------------------------------------------
    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["HashApp", "Average", "Minimum", "Maximum", "Count"])
            for a in self.apps:
                w.writerow(
                    [
                        a.app_id,
                        a.avg_duration_us,
                        a.min_duration_us,
                        a.max_duration_us,
                        a.total_invocations,
                    ]
                )

    @staticmethod
    def read_csv(path: str) -> "AzureTrace":
        apps = []
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                apps.append(
                    AppRecord(
                        app_id=row["HashApp"],
                        avg_duration_us=int(row["Average"]),
                        min_duration_us=int(row["Minimum"]),
                        max_duration_us=int(row["Maximum"]),
                        total_invocations=int(row["Count"]),
                    )
                )
        return AzureTrace(apps, {})


class AzureTraceSynthesizer:
    """Generates :class:`AzureTrace` instances."""

    def __init__(self, n_apps: int = 82_375, seed: SeedLike = None,
                 n_sampled_apps: int = 100):
        if n_apps <= 0:
            raise ValueError("n_apps must be positive")
        self.n_apps = n_apps
        self.n_sampled_apps = min(n_sampled_apps, n_apps)
        self.rng = make_rng(seed)

    # ------------------------------------------------------------------
    def sample_avg_durations(self, count: int) -> np.ndarray:
        """Per-app average durations (us) from the calibrated mixture."""
        rng = self.rng
        weights = np.array([w for w, _m, _s in DURATION_MIXTURE])
        comp = rng.choice(len(DURATION_MIXTURE), size=count, p=weights / weights.sum())
        out = np.empty(count)
        for k, (_w, median, sigma) in enumerate(DURATION_MIXTURE):
            mask = comp == k
            out[mask] = rng.lognormal(np.log(median), sigma, size=mask.sum())
        return np.clip(np.rint(out), MIN_DURATION_US, MAX_DURATION_US).astype(np.int64)

    def generate(self) -> AzureTrace:
        rng = self.rng
        avgs = self.sample_avg_durations(self.n_apps)
        # min/max around the average: real functions show large
        # per-invocation spread (the paper reports > 50x amplification)
        spread_lo = rng.uniform(0.2, 0.9, size=self.n_apps)
        spread_hi = rng.uniform(1.2, 8.0, size=self.n_apps)
        mins = np.maximum((avgs * spread_lo).astype(np.int64), MIN_DURATION_US)
        maxs = np.minimum((avgs * spread_hi).astype(np.int64), MAX_DURATION_US)
        # heavy-tailed per-app popularity (Zipf-like)
        counts = np.minimum(rng.zipf(1.7, size=self.n_apps), 2_000_000)

        apps = [
            AppRecord(
                app_id=f"app{i:06d}",
                avg_duration_us=int(avgs[i]),
                min_duration_us=int(mins[i]),
                max_duration_us=int(maxs[i]),
                total_invocations=int(counts[i]),
            )
            for i in range(self.n_apps)
        ]

        # per-minute invocation counts for the sampled busy apps
        # (bursty: a Dirichlet over minutes concentrated by alpha < 1)
        busy = sorted(range(self.n_apps), key=lambda i: -counts[i])
        minute_counts = {}
        for i in busy[: self.n_sampled_apps]:
            total = max(int(counts[i]), 200)  # paper samples apps with >200/day
            shares = rng.dirichlet(np.full(1440, 0.15))
            minute_counts[apps[i].app_id] = rng.multinomial(total, shares)
        return AzureTrace(apps, minute_counts)

    # ------------------------------------------------------------------
    def day1_iats(self, n_requests: int = 10_000) -> np.ndarray:
        """IATs (us) extracted the way §VII does: sample 100 busy apps,
        superpose their per-minute arrival processes, take the first
        ``n_requests`` inter-arrival gaps."""
        trace = self.generate()
        rng = self.rng
        arrivals: List[int] = []
        for counts in trace.minute_counts.values():
            for minute, c in enumerate(counts):
                if c <= 0:
                    continue
                base = minute * 60 * SEC
                offsets = rng.integers(0, 60 * SEC, size=int(c))
                arrivals.extend((base + offsets).tolist())
                if len(arrivals) > n_requests * 4:
                    break
            if len(arrivals) > n_requests * 4:
                break
        arr = np.sort(np.array(arrivals, dtype=np.int64))[: n_requests + 1]
        iats = np.diff(arr)
        return np.maximum(iats, 1)
