"""Function models: fib, md, sa (§VII, §IX-A).

FaaSBench drives everything with three applications:

* ``fib``: recursively computes Fibonacci — pure CPU.  The cost of the
  naive recursion grows as phi^N, so we calibrate a single constant
  against the paper's anchor "fib with N between 20-26 finishes in
  less than 45 ms" together with Table I's bin edges (N=29 lands in the
  100-200 ms bin, N=30-31 in 200-400 ms, N=34-35 above 1550 ms).
* ``md``: reads a JSON file and renders markdown — I/O-intensive
  (leading read, small CPU burst, trailing write).
* ``sa``: loads a sentiment dictionary then scores a sentence — both
  CPU- and I/O-intensive.

Each builder returns a concrete burst tuple with per-invocation jitter
(real functions are never perfectly deterministic), seeded by the
caller's RNG.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.sim.task import Burst, BurstKind
from repro.sim.units import MS

#: Golden ratio: the growth rate of naive-recursion fib cost.
PHI = (1 + math.sqrt(5.0)) / 2

#: Calibration anchor: fib(29) ~ 150 ms (centre of Table I's 100-200 ms
#: bin).  This puts N=26 at ~35 ms (< 45 ms, matching §VII) and N=34 at
#: ~1.66 s (inside the >= 1550 ms bin).
FIB_ANCHOR_N = 29
FIB_ANCHOR_US = 150 * MS


def fib_duration(n: int) -> int:
    """Expected CPU time (us) of the fib function with knob ``N=n``."""
    if n < 1:
        raise ValueError("fib N must be >= 1")
    return max(1, int(round(FIB_ANCHOR_US * PHI ** (n - FIB_ANCHOR_N))))


def fib_n_for_duration(duration_us: int) -> int:
    """Smallest N whose expected duration is >= ``duration_us``."""
    if duration_us <= 0:
        raise ValueError("duration must be positive")
    n = FIB_ANCHOR_N + math.log(duration_us / FIB_ANCHOR_US) / math.log(PHI)
    n = max(1, math.floor(n))
    # settle float noise against the rounded integer durations
    while fib_duration(n) < duration_us:
        n += 1
    while n > 1 and fib_duration(n - 1) >= duration_us:
        n -= 1
    return n


def _jitter(rng: Optional[np.random.Generator], sigma: float) -> float:
    if rng is None or sigma <= 0:
        return 1.0
    return float(rng.lognormal(0.0, sigma))


def make_fib(
    n: int,
    io: bool = False,
    io_range_us: Tuple[int, int] = (10 * MS, 100 * MS),
    rng: Optional[np.random.Generator] = None,
    jitter_sigma: float = 0.05,
) -> Tuple[Burst, ...]:
    """fib(N) burst profile; ``io=True`` adds the leading I/O of Fig 11."""
    cpu = max(1, int(round(fib_duration(n) * _jitter(rng, jitter_sigma))))
    bursts = []
    if io:
        lo, hi = io_range_us
        wait = int(rng.integers(lo, hi + 1)) if rng is not None else (lo + hi) // 2
        bursts.append(Burst(BurstKind.IO, max(1, wait)))
    bursts.append(Burst(BurstKind.CPU, cpu))
    return tuple(bursts)


def make_md(
    total_us: int,
    rng: Optional[np.random.Generator] = None,
    jitter_sigma: float = 0.05,
) -> Tuple[Burst, ...]:
    """Markdown generation: I/O-intensive (read, convert, write).

    Split: 45 % read I/O, 25 % CPU conversion, 30 % write I/O.
    """
    j = _jitter(rng, jitter_sigma)
    read = max(1, int(total_us * 0.45 * j))
    cpu = max(1, int(total_us * 0.25 * j))
    write = max(1, int(total_us * 0.30 * j))
    return (
        Burst(BurstKind.IO, read),
        Burst(BurstKind.CPU, cpu),
        Burst(BurstKind.IO, write),
    )


def make_sa(
    total_us: int,
    rng: Optional[np.random.Generator] = None,
    jitter_sigma: float = 0.05,
) -> Tuple[Burst, ...]:
    """Sentiment analysis: dictionary load (I/O) then scoring (CPU).

    Split: 30 % dictionary read I/O, 70 % CPU prediction.
    """
    j = _jitter(rng, jitter_sigma)
    read = max(1, int(total_us * 0.30 * j))
    cpu = max(1, int(total_us * 0.70 * j))
    return (Burst(BurstKind.IO, read), Burst(BurstKind.CPU, cpu))


APP_BUILDERS = {
    "fib": make_fib,
    "md": make_md,
    "sa": make_sa,
}
