"""The Azure Functions 2019 dataset schema, and workloads built from it.

The paper samples the public *Azure Functions Trace 2019* [48], which
ships as three CSV families per day:

* ``invocations_per_function_md.anon.dXX.csv`` — per-function trigger
  type and 1440 per-minute invocation counts;
* ``function_durations_percentiles.anon.dXX.csv`` — per-function
  average/min/max duration (ms) plus percentile breakdowns;
* ``app_memory_percentiles.anon.dXX.csv`` — per-app allocated memory.

This module implements that exact schema so that a user who *has* the
real dataset can load it and replay it through the simulator, and so
that our synthetic stand-in can be written in the same format.  The
loader implements §VII's recipe: sample functions weighted by daily
invocation count, take the median duration as the expected execution
time (ruling out outliers, as the paper does), fit per-invocation
spread from the percentile columns, and draw arrivals from the
per-minute counts rescaled to a target load.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.sim.task import Burst, BurstKind
from repro.sim.units import MS, SEC
from repro.workload.spec import RequestSpec, Workload

MINUTES_PER_DAY = 1440

#: duration-percentile columns of the official schema, in order
DURATION_PCT_COLUMNS = (
    "percentile_Average_0",
    "percentile_Average_1",
    "percentile_Average_25",
    "percentile_Average_50",
    "percentile_Average_75",
    "percentile_Average_99",
    "percentile_Average_100",
)


@dataclass(frozen=True)
class FunctionInvocations:
    """One row of ``invocations_per_function_md``."""

    owner: str
    app: str
    function: str
    trigger: str
    per_minute: Tuple[int, ...]  # length 1440

    def __post_init__(self) -> None:
        if len(self.per_minute) != MINUTES_PER_DAY:
            raise ValueError("per_minute must have 1440 entries")

    @property
    def total(self) -> int:
        return int(sum(self.per_minute))


@dataclass(frozen=True)
class FunctionDurations:
    """One row of ``function_durations_percentiles`` (milliseconds)."""

    owner: str
    app: str
    function: str
    average_ms: float
    count: int
    minimum_ms: float
    maximum_ms: float
    percentiles_ms: Tuple[float, ...]  # the 7 columns above

    def __post_init__(self) -> None:
        if len(self.percentiles_ms) != len(DURATION_PCT_COLUMNS):
            raise ValueError("need all 7 duration percentiles")

    @property
    def median_ms(self) -> float:
        """p50 — what §VII takes as the expected execution time."""
        return self.percentiles_ms[3]

    def lognormal_sigma(self) -> float:
        """Shape fitted from the p25/p75 spread (robust to outliers).

        For a log-normal, ln(p75/p25) = 2 * 0.6745 * sigma.
        """
        p25, p75 = self.percentiles_ms[2], self.percentiles_ms[4]
        if p25 <= 0 or p75 <= p25:
            return 0.0
        return math.log(p75 / p25) / (2 * 0.6745)


@dataclass(frozen=True)
class AppMemory:
    """One row of ``app_memory_percentiles``."""

    owner: str
    app: str
    sample_count: int
    average_mb: float


@dataclass
class AzureDataset:
    """One day of the trace in the official schema."""

    invocations: List[FunctionInvocations]
    durations: List[FunctionDurations]
    memory: List[AppMemory] = field(default_factory=list)

    def durations_by_function(self) -> Dict[Tuple[str, str], FunctionDurations]:
        return {(d.app, d.function): d for d in self.durations}

    # ------------------------------------------------------------------
    # CSV round trip (official column names)
    # ------------------------------------------------------------------
    def write_csv(self, invocations_path: str, durations_path: str,
                  memory_path: Optional[str] = None) -> None:
        with open(invocations_path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(
                ["HashOwner", "HashApp", "HashFunction", "Trigger"]
                + [str(m) for m in range(1, MINUTES_PER_DAY + 1)]
            )
            for row in self.invocations:
                w.writerow(
                    [row.owner, row.app, row.function, row.trigger]
                    + list(row.per_minute)
                )
        with open(durations_path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(
                ["HashOwner", "HashApp", "HashFunction", "Average", "Count",
                 "Minimum", "Maximum"] + list(DURATION_PCT_COLUMNS)
            )
            for d in self.durations:
                w.writerow(
                    [d.owner, d.app, d.function, d.average_ms, d.count,
                     d.minimum_ms, d.maximum_ms] + list(d.percentiles_ms)
                )
        if memory_path is not None:
            with open(memory_path, "w", newline="") as fh:
                w = csv.writer(fh)
                w.writerow(["HashOwner", "HashApp", "SampleCount",
                            "AverageAllocatedMb"])
                for m in self.memory:
                    w.writerow([m.owner, m.app, m.sample_count, m.average_mb])

    @staticmethod
    def read_csv(invocations_path: str, durations_path: str,
                 memory_path: Optional[str] = None) -> "AzureDataset":
        invocations = []
        with open(invocations_path, newline="") as fh:
            for row in csv.DictReader(fh):
                per_minute = tuple(
                    int(float(row[str(m)])) for m in range(1, MINUTES_PER_DAY + 1)
                )
                invocations.append(
                    FunctionInvocations(
                        owner=row["HashOwner"],
                        app=row["HashApp"],
                        function=row["HashFunction"],
                        trigger=row.get("Trigger", ""),
                        per_minute=per_minute,
                    )
                )
        durations = []
        with open(durations_path, newline="") as fh:
            for row in csv.DictReader(fh):
                durations.append(
                    FunctionDurations(
                        owner=row["HashOwner"],
                        app=row["HashApp"],
                        function=row["HashFunction"],
                        average_ms=float(row["Average"]),
                        count=int(float(row["Count"])),
                        minimum_ms=float(row["Minimum"]),
                        maximum_ms=float(row["Maximum"]),
                        percentiles_ms=tuple(
                            float(row[c]) for c in DURATION_PCT_COLUMNS
                        ),
                    )
                )
        memory = []
        if memory_path is not None:
            with open(memory_path, newline="") as fh:
                for row in csv.DictReader(fh):
                    memory.append(
                        AppMemory(
                            owner=row["HashOwner"],
                            app=row["HashApp"],
                            sample_count=int(float(row["SampleCount"])),
                            average_mb=float(row["AverageAllocatedMb"]),
                        )
                    )
        return AzureDataset(invocations, durations, memory)


# ---------------------------------------------------------------------------
# synthesis in the official schema
# ---------------------------------------------------------------------------
def synthesize_dataset(
    n_functions: int = 400,
    seed: SeedLike = None,
) -> AzureDataset:
    """A synthetic day in the official schema, calibrated like
    :mod:`repro.workload.azure` (anchors, heavy-tailed popularity,
    bursty minute counts)."""
    from repro.workload.azure import AzureTraceSynthesizer

    rng = make_rng(seed)
    synth = AzureTraceSynthesizer(n_apps=n_functions, seed=rng)
    medians_us = synth.sample_avg_durations(n_functions)
    counts = np.minimum(rng.zipf(1.7, size=n_functions) * 10, 500_000)

    invocations, durations, memory = [], [], []
    for i in range(n_functions):
        owner = f"owner{i % max(1, n_functions // 8):04d}"
        app = f"app{i % max(1, n_functions // 2):05d}"
        fn = f"fn{i:06d}"
        total = int(counts[i])
        shares = rng.dirichlet(np.full(MINUTES_PER_DAY, 0.15))
        per_minute = tuple(int(x) for x in rng.multinomial(total, shares))
        trigger = str(rng.choice(["http", "queue", "timer", "event"]))
        invocations.append(
            FunctionInvocations(owner, app, fn, trigger, per_minute)
        )
        median_ms = medians_us[i] / MS
        sigma = float(rng.uniform(0.2, 0.8))
        z = 0.6745  # quartile z-score
        pcts = (
            median_ms * math.exp(-3.0 * sigma),
            median_ms * math.exp(-2.326 * sigma),
            median_ms * math.exp(-z * sigma),
            median_ms,
            median_ms * math.exp(z * sigma),
            median_ms * math.exp(2.326 * sigma),
            median_ms * math.exp(3.5 * sigma),
        )
        durations.append(
            FunctionDurations(
                owner, app, fn,
                average_ms=median_ms * math.exp(sigma ** 2 / 2),
                count=total,
                minimum_ms=pcts[0],
                maximum_ms=pcts[-1],
                percentiles_ms=pcts,
            )
        )
    seen_apps = set()
    for inv in invocations:
        if inv.app not in seen_apps:
            seen_apps.add(inv.app)
            memory.append(
                AppMemory(inv.owner, inv.app,
                          sample_count=int(rng.integers(10, 1000)),
                          average_mb=float(rng.lognormal(np.log(170), 0.7)))
            )
    return AzureDataset(invocations, durations, memory)


# ---------------------------------------------------------------------------
# dataset -> workload (§VII's recipe)
# ---------------------------------------------------------------------------
def workload_from_dataset(
    dataset: AzureDataset,
    n_requests: int,
    n_cores: int,
    target_load: float,
    seed: SeedLike = None,
    min_invocations: int = 1,
) -> Workload:
    """Build a replayable workload from a (real or synthetic) dataset.

    Functions are sampled proportionally to their daily invocation
    count; each invocation's CPU demand is drawn log-normally around
    the function's median with the spread fitted from its percentile
    columns; arrivals follow the superposed per-minute counts, rescaled
    so the offered CPU load hits ``target_load`` on ``n_cores``.
    """
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    if target_load <= 0:
        raise ValueError("target_load must be positive")
    rng = make_rng(seed)
    by_fn = dataset.durations_by_function()
    rows = [
        inv for inv in dataset.invocations
        if inv.total >= min_invocations and (inv.app, inv.function) in by_fn
    ]
    if not rows:
        raise ValueError("dataset has no usable functions")
    weights = np.array([r.total for r in rows], dtype=float)
    weights /= weights.sum()

    # per-request function choice + duration
    choices = rng.choice(len(rows), size=n_requests, p=weights)
    demands = np.empty(n_requests, dtype=np.int64)
    names = []
    for j, idx in enumerate(choices):
        inv = rows[idx]
        d = by_fn[(inv.app, inv.function)]
        sigma = d.lognormal_sigma()
        median_us = max(1.0, d.median_ms * MS)
        draw = median_us * math.exp(rng.normal(0.0, sigma)) if sigma > 0 else median_us
        lo, hi = max(1.0, d.minimum_ms * MS), max(1.0, d.maximum_ms * MS)
        demands[j] = int(np.clip(draw, lo, hi))
        names.append(inv.function)

    # arrivals: superpose the chosen functions' minute profiles
    minute_weights = np.zeros(MINUTES_PER_DAY)
    for idx in set(choices.tolist()):
        minute_weights += np.asarray(rows[idx].per_minute, dtype=float)
    if minute_weights.sum() <= 0:
        minute_weights[:] = 1.0
    minute_probs = minute_weights / minute_weights.sum()
    minutes = rng.choice(MINUTES_PER_DAY, size=n_requests, p=minute_probs)
    offsets = rng.integers(0, 60 * SEC, size=n_requests)
    arrivals = np.sort(minutes.astype(np.int64) * 60 * SEC + offsets)
    # rescale the arrival span so the offered load hits the target
    span = max(1, int(arrivals[-1] - arrivals[0]))
    mean_demand = float(demands.mean())
    desired_span = mean_demand * n_requests / (n_cores * target_load)
    scale = desired_span / span
    arrivals = ((arrivals - arrivals[0]) * scale).astype(np.int64) + 1
    arrivals = np.maximum.accumulate(arrivals)  # keep sorted under rounding

    requests = [
        RequestSpec(
            req_id=j,
            arrival=int(arrivals[j]),
            bursts=(Burst(BurstKind.CPU, int(demands[j])),),
            name=names[j],
            app=rows[choices[j]].app,
        )
        for j in range(n_requests)
    ]
    return Workload(
        requests,
        meta={
            "generator": "AzureDataset",
            "n_functions": len(rows),
            "target_load": target_load,
            "n_cores": n_cores,
        },
    )
