"""Lazy seeded request streams (ROADMAP item 1, `repro.stream`).

The materialized generators (:mod:`repro.workload.faasbench`,
:mod:`repro.workload.azure`) draw all randomness up front and return a
:class:`repro.workload.spec.Workload` list — perfect for the paper's
paired comparisons, hopeless for a 10M-request 14-day replay where the
trace alone would dwarf the machine state.

This module generates the same *kind* of traffic lazily: every request
is a pure function of ``(seed, index)``, produced in virtual-time order
without ever materializing the trace.  Internally requests are drawn in
fixed-size chunks, each chunk from its own :class:`numpy.random.
SeedSequence` child keyed by the chunk index — random access by chunk,
vectorized draws inside a chunk, and a stream that does **not** depend
on how the consumer batches its reads.  The chunk size is a module
constant, not a knob, precisely so the sample path is a function of
``(seed, index)`` alone.

The cursor over a stream is an explicit, **picklable** iterator: its
state is ``(config, seed, next_index, chunk base arrival)``.  A cursor
restored from a checkpoint regenerates only its current chunk and
continues bit-for-bit — the foundation of the crash-proof long-horizon
replay in :mod:`repro.stream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.task import Burst, BurstKind
from repro.sim.units import MS
from repro.workload.azure import (
    DURATION_MIXTURE,
    MAX_DURATION_US,
    MIN_DURATION_US,
)
from repro.workload.distributions import (
    PoissonIAT,
    TableIDurations,
    UniformIAT,
    mean_iat_for_load,
)
from repro.workload.functions import fib_duration, make_fib, make_md, make_sa
from repro.workload.spec import RequestSpec, Workload

#: Internal generation granularity.  Deliberately **not** configurable:
#: the stream must be a pure function of ``(seed, index)``, so the
#: batching of the underlying draws can never be a knob that changes
#: the sample path.
CHUNK = 4096

#: sources a stream can draw durations from
SOURCES = ("faasbench", "azure")

#: IAT processes that can be sampled chunk-locally (a bursty MMPP needs
#: whole-trace spike placement, which contradicts lazy generation; use
#: the materialized FaaSBench for Fig-12-style spikes).
IAT_KINDS = ("poisson", "uniform")

# expected CPU fraction per app, mirroring FaaSBench._arrivals
_CPU_FRACTION = {"fib": 1.0, "md": 0.25, "sa": 0.70}


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of a lazy request stream.

    Mirrors :class:`repro.workload.faasbench.FaaSBenchConfig` where the
    knobs overlap; ``source="azure"`` swaps Table I durations for the
    Azure log-normal duration mixture (single CPU burst per request),
    covering the full seven-orders-of-magnitude duration range of the
    2019 dataset.
    """

    n_requests: int = 1_000_000
    n_cores: int = 12
    target_load: float = 0.8
    source: str = "faasbench"
    iat_kind: str = "poisson"
    io_fraction: float = 0.0
    io_range: Tuple[int, int] = (10 * MS, 100 * MS)
    app_mix: Tuple[Tuple[str, float], ...] = (("fib", 1.0),)
    jitter_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.target_load <= 0:
            raise ValueError("target_load must be positive")
        if self.source not in SOURCES:
            raise ValueError(f"unknown source {self.source!r} "
                             f"(expected one of {SOURCES})")
        if self.iat_kind not in IAT_KINDS:
            raise ValueError(f"unknown iat_kind {self.iat_kind!r} "
                             f"(streaming supports {IAT_KINDS})")
        if not (0 <= self.io_fraction <= 1):
            raise ValueError("io_fraction must be in [0, 1]")
        total = sum(p for _n, p in self.app_mix)
        if total <= 0:
            raise ValueError("app_mix probabilities must sum > 0")
        for name, _p in self.app_mix:
            if name not in ("fib", "md", "sa"):
                raise ValueError(f"unknown app {name!r}")

    # ------------------------------------------------------------------
    def mean_cpu_demand(self) -> float:
        """Expected CPU demand per request (us), for load scaling."""
        if self.source == "azure":
            # mean of the (unclamped) log-normal mixture; clamping at
            # [0.1 ms, 1000 s] shifts this by well under the calibration
            # tolerance, and load scaling only needs the expectation
            return float(sum(
                w * median * np.exp(sigma * sigma / 2.0)
                for w, median, sigma in DURATION_MIXTURE
            ))
        mean_cpu = TableIDurations().mean_duration()
        if self.app_mix != (("fib", 1.0),):
            total_p = sum(p for _n, p in self.app_mix)
            mean_cpu *= sum(
                (p / total_p) * _CPU_FRACTION[name]
                for name, p in self.app_mix
            )
        return mean_cpu

    def mean_iat(self) -> float:
        """Mean inter-arrival time (us) offering ``target_load``."""
        return mean_iat_for_load(
            self.mean_cpu_demand(), self.n_cores, self.target_load)


def _chunk_rng(seed: int, chunk_index: int) -> np.random.Generator:
    """Independent generator for one chunk: random access by index."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(chunk_index,)))


def _sample_iats(cfg: StreamConfig, rng: np.random.Generator,
                 count: int) -> np.ndarray:
    mean_iat = cfg.mean_iat()
    if cfg.iat_kind == "poisson":
        return PoissonIAT(mean_iat).sample(rng, count)
    return UniformIAT(mean_iat * 0.5, mean_iat * 1.5).sample(rng, count)


def _generate_chunk(cfg: StreamConfig, seed: int, chunk_index: int,
                    base_arrival: int) -> Tuple[List[RequestSpec], int]:
    """Requests of one chunk plus the chunk's total IAT span (us).

    Pure function of ``(cfg, seed, chunk_index, base_arrival)`` — and
    ``base_arrival`` itself is determined by the earlier chunks, so the
    whole stream is a pure function of ``(cfg, seed)``.
    """
    start = chunk_index * CHUNK
    count = min(CHUNK, cfg.n_requests - start)
    if count <= 0:
        return [], 0
    rng = _chunk_rng(seed, chunk_index)
    # fixed draw order (IATs, apps, durations, io flags, per-request
    # jitter) so the sample path is stable across releases of this file
    iats = _sample_iats(cfg, rng, count)
    arrivals = base_arrival + np.cumsum(iats)

    if cfg.source == "azure":
        weights = np.array([w for w, _m, _s in DURATION_MIXTURE])
        comp = rng.choice(len(DURATION_MIXTURE), size=count,
                          p=weights / weights.sum())
        medians = np.array([m for _w, m, _s in DURATION_MIXTURE])
        sigmas = np.array([s for _w, _m, s in DURATION_MIXTURE])
        draws = rng.lognormal(np.log(medians[comp]), sigmas[comp])
        durs = np.clip(np.rint(draws), MIN_DURATION_US,
                       MAX_DURATION_US).astype(np.int64)
        io_flags = rng.random(count) < cfg.io_fraction
        out = []
        for i in range(count):
            bursts: Tuple[Burst, ...]
            cpu = Burst(BurstKind.CPU, int(durs[i]))
            if io_flags[i]:
                lo, hi = cfg.io_range
                wait = int(rng.integers(lo, hi + 1))
                bursts = (Burst(BurstKind.IO, max(1, wait)), cpu)
            else:
                bursts = (cpu,)
            out.append(RequestSpec(
                req_id=start + i, arrival=int(arrivals[i]), bursts=bursts,
                name=f"az-{int(comp[i])}", app="azure",
            ))
        return out, int(iats.sum())

    app_names = [name for name, _p in cfg.app_mix]
    app_probs = np.array([p for _n, p in cfg.app_mix], dtype=float)
    app_probs /= app_probs.sum()
    app_idx = rng.choice(len(app_names), size=count, p=app_probs)
    ns = TableIDurations().sample_many(rng, count)
    io_flags = rng.random(count) < cfg.io_fraction
    out = []
    for i in range(count):
        app = app_names[app_idx[i]]
        fib_n = int(ns[i])
        if app == "fib":
            bursts = make_fib(fib_n, io=bool(io_flags[i]),
                              io_range_us=cfg.io_range, rng=rng,
                              jitter_sigma=cfg.jitter_sigma)
            name = f"fib-{fib_n}"
        elif app == "md":
            bursts = make_md(fib_duration(fib_n), rng=rng,
                             jitter_sigma=cfg.jitter_sigma)
            name = f"md-{fib_n}"
        else:
            bursts = make_sa(fib_duration(fib_n), rng=rng,
                             jitter_sigma=cfg.jitter_sigma)
            name = f"sa-{fib_n}"
        out.append(RequestSpec(
            req_id=start + i, arrival=int(arrivals[i]), bursts=bursts,
            name=name, app=app,
        ))
    return out, int(iats.sum())


class StreamCursor:
    """Explicit, picklable iterator over a request stream.

    Yields :class:`RequestSpec` in strictly increasing arrival order
    (IATs are >= 1 us, so arrivals never tie).  The pickled state is a
    few integers; the current chunk's cache is dropped on pickle and
    regenerated on the first ``next`` after restore, bit-for-bit.
    """

    def __init__(self, config: StreamConfig, seed: int):
        self.config = config
        self.seed = seed
        self.next_index = 0
        #: arrival offset at the start of the current chunk
        self._base_arrival = 0
        self._chunk_index = 0
        self._chunk: Optional[List[RequestSpec]] = None
        self._chunk_span = 0

    # ------------------------------------------------------------------
    def __iter__(self) -> "StreamCursor":
        return self

    def __next__(self) -> RequestSpec:
        cfg = self.config
        if self.next_index >= cfg.n_requests:
            raise StopIteration
        chunk_index, offset = divmod(self.next_index, CHUNK)
        if self._chunk is None or chunk_index != self._chunk_index:
            if chunk_index != self._chunk_index:  # pragma: no cover
                raise RuntimeError(
                    f"cursor desync: at chunk {self._chunk_index}, "
                    f"need {chunk_index}")
            self._chunk, self._chunk_span = _generate_chunk(
                cfg, self.seed, chunk_index, self._base_arrival)
        spec = self._chunk[offset]
        self.next_index += 1
        if offset == len(self._chunk) - 1:
            # chunk consumed: roll the base forward *now* so the pickled
            # state never needs a previous chunk to restore
            self._base_arrival += self._chunk_span
            self._chunk_index += 1
            self._chunk = None
            self._chunk_span = 0
        return spec

    @property
    def exhausted(self) -> bool:
        return self.next_index >= self.config.n_requests

    @property
    def remaining(self) -> int:
        return self.config.n_requests - self.next_index

    # ------------------------------------------------------------------
    # pickling: drop the chunk cache, keep the integers
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "config": self.config,
            "seed": self.seed,
            "next_index": self.next_index,
            "_base_arrival": self._base_arrival,
            "_chunk_index": self._chunk_index,
        }

    def __setstate__(self, state):
        self.config = state["config"]
        self.seed = state["seed"]
        self.next_index = state["next_index"]
        self._base_arrival = state["_base_arrival"]
        self._chunk_index = state["_chunk_index"]
        self._chunk = None
        self._chunk_span = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StreamCursor {self.next_index}/"
                f"{self.config.n_requests} seed={self.seed}>")


class RequestStream:
    """A lazily generated workload: config + seed, no materialization."""

    def __init__(self, config: StreamConfig, seed: int = 0):
        if not isinstance(seed, int):
            raise ValueError(
                "streams need an explicit integer seed (every request "
                f"must be a pure function of (seed, index)); got {seed!r}")
        self.config = config
        self.seed = seed

    def cursor(self) -> StreamCursor:
        """A fresh cursor positioned at request 0."""
        return StreamCursor(self.config, self.seed)

    def __iter__(self) -> Iterator[RequestSpec]:
        return self.cursor()

    def __len__(self) -> int:
        return self.config.n_requests

    @property
    def meta(self) -> dict:
        cfg = self.config
        return {
            "generator": "RequestStream",
            "source": cfg.source,
            "target_load": cfg.target_load,
            "iat_kind": cfg.iat_kind,
            "n_cores": cfg.n_cores,
            "io_fraction": cfg.io_fraction,
            "seed": self.seed,
        }

    def materialize(self) -> Workload:
        """The equivalent materialized workload (small streams only).

        Defined as ``Workload(list(self))`` — the byte-equivalence
        anchor the property suite pins: however a consumer batches,
        pickles, or resumes a cursor, it sees exactly this sequence.
        """
        return Workload(list(self), dict(self.meta))
