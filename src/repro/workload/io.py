"""Workload serialization: save and replay exact request sequences.

The paper stresses paired comparisons ("we ran each test multiple
times"); persisting the concrete workload lets a run be replayed
bit-for-bit across processes, machines, and schedulers.  Format: one
CSV row per request with the burst list packed as ``kind:us`` segments,
and the workload metadata in ``#``-prefixed header comments.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterator, List, Optional

from repro.sim.task import Burst, BurstKind
from repro.workload.spec import RequestSpec, Workload

_KIND_CODE = {BurstKind.CPU: "cpu", BurstKind.IO: "io"}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def pack_bursts(bursts) -> str:
    """``cpu:25000;io:1000;cpu:400`` — order-preserving, lossless."""
    return ";".join(f"{_KIND_CODE[b.kind]}:{b.duration}" for b in bursts)


def unpack_bursts(packed: str):
    out: List[Burst] = []
    for seg in packed.split(";"):
        if not seg:
            continue
        kind, sep, dur = seg.partition(":")
        if kind not in _CODE_KIND:
            raise ValueError(
                f"unknown burst kind {kind!r} in segment {seg!r} "
                f"(expected one of {sorted(_CODE_KIND)})"
            )
        if not sep:
            raise ValueError(f"malformed burst segment {seg!r} "
                             f"(expected 'kind:us')")
        try:
            duration = int(dur)
        except ValueError:
            raise ValueError(
                f"burst duration must be integer us, got {dur!r} in "
                f"segment {seg!r}"
            ) from None
        out.append(Burst(_CODE_KIND[kind], duration))
    if not out:
        raise ValueError("empty burst list")
    return tuple(out)


def save_workload(workload: Workload, path: str) -> None:
    """Write the workload to ``path`` (CSV + commented JSON metadata)."""
    with open(path, "w", newline="") as fh:
        meta = {k: v for k, v in workload.meta.items()
                if isinstance(v, (str, int, float, bool, type(None)))}
        fh.write(f"# repro-workload v1\n# meta: {json.dumps(meta)}\n")
        w = csv.writer(fh)
        w.writerow(["req_id", "arrival_us", "name", "app", "bursts"])
        for r in workload:
            w.writerow([r.req_id, r.arrival, r.name, r.app, pack_bursts(r.bursts)])


_COLUMNS = ("req_id", "arrival_us", "name", "app", "bursts")


def _data_lines(fh, path: str, meta: Dict[str, object]) -> Iterator[str]:
    """Filter ``#`` header comments out of the line stream, folding
    ``# meta:`` headers into ``meta`` as they are encountered."""
    for line in fh:
        if not line.startswith("#"):
            yield line
            continue
        if line.startswith("# meta: "):
            try:
                parsed = json.loads(line[len("# meta: "):])
            except ValueError as exc:
                raise ValueError(
                    f"{path}: malformed '# meta:' header: {exc}"
                ) from None
            if not isinstance(parsed, dict):
                raise ValueError(
                    f"{path}: '# meta:' header must be a JSON object, "
                    f"got {type(parsed).__name__}"
                )
            meta.clear()
            meta.update(parsed)


def iter_workload(path: str,
                  meta: Optional[Dict[str, object]] = None,
                  ) -> Iterator[RequestSpec]:
    """Yield a saved workload's requests lazily, one row at a time.

    The streaming counterpart of :func:`load_workload`: one CSV row is
    in memory at a time, so a multi-gigabyte trace replays in constant
    space.  Pass a dict as ``meta`` to receive the ``# meta:`` header
    contents (filled in by the time the iterator is exhausted).

    Malformed input fails with the offending row number and field —
    the identical message :func:`load_workload` raises — but note the
    per-file checks that need the whole row set (at least one request,
    no duplicate req_ids) live in :func:`load_workload` only: a
    streaming consumer sees rows before later rows are validated.
    """
    sink: Dict[str, object] = meta if meta is not None else {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(_data_lines(fh, path, sink))
        if reader.fieldnames is not None:
            missing = [c for c in _COLUMNS if c not in reader.fieldnames]
            unknown = [c for c in reader.fieldnames if c not in _COLUMNS]
            if missing or unknown:
                raise ValueError(
                    f"{path}: bad header: missing columns {missing}, "
                    f"unknown columns {unknown} (expected {list(_COLUMNS)})"
                )
        for lineno, row in enumerate(reader, start=2):
            try:
                yield RequestSpec(
                    req_id=int(row["req_id"]),
                    arrival=int(row["arrival_us"]),
                    bursts=unpack_bursts(row["bursts"]),
                    name=row["name"],
                    app=row["app"],
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}: data row {lineno}: {exc}") from None


def load_workload(path: str) -> Workload:
    """Read a workload written by :func:`save_workload`.

    Malformed input fails with the offending row number and field, not
    a downstream KeyError/ValueError deep inside a run.  Parsing
    streams through :func:`iter_workload`; only the materialized
    request list is held here.
    """
    meta: Dict[str, object] = {}
    rows = list(iter_workload(path, meta))
    if not rows:
        raise ValueError(f"no requests found in {path}")
    # whole-file validation stays after the parse loop: a malformed row
    # anywhere outranks a duplicate id earlier in the file
    seen = set()
    for spec in rows:
        if spec.req_id in seen:
            raise ValueError(f"{path}: duplicated req_id {spec.req_id}")
        seen.add(spec.req_id)
    return Workload(rows, meta)
