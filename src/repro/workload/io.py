"""Workload serialization: save and replay exact request sequences.

The paper stresses paired comparisons ("we ran each test multiple
times"); persisting the concrete workload lets a run be replayed
bit-for-bit across processes, machines, and schedulers.  Format: one
CSV row per request with the burst list packed as ``kind:us`` segments,
and the workload metadata in ``#``-prefixed header comments.
"""

from __future__ import annotations

import csv
import json
from typing import List

from repro.sim.task import Burst, BurstKind
from repro.workload.spec import RequestSpec, Workload

_KIND_CODE = {BurstKind.CPU: "cpu", BurstKind.IO: "io"}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def pack_bursts(bursts) -> str:
    """``cpu:25000;io:1000;cpu:400`` — order-preserving, lossless."""
    return ";".join(f"{_KIND_CODE[b.kind]}:{b.duration}" for b in bursts)


def unpack_bursts(packed: str):
    out: List[Burst] = []
    for seg in packed.split(";"):
        if not seg:
            continue
        kind, sep, dur = seg.partition(":")
        if kind not in _CODE_KIND:
            raise ValueError(
                f"unknown burst kind {kind!r} in segment {seg!r} "
                f"(expected one of {sorted(_CODE_KIND)})"
            )
        if not sep:
            raise ValueError(f"malformed burst segment {seg!r} "
                             f"(expected 'kind:us')")
        try:
            duration = int(dur)
        except ValueError:
            raise ValueError(
                f"burst duration must be integer us, got {dur!r} in "
                f"segment {seg!r}"
            ) from None
        out.append(Burst(_CODE_KIND[kind], duration))
    if not out:
        raise ValueError("empty burst list")
    return tuple(out)


def save_workload(workload: Workload, path: str) -> None:
    """Write the workload to ``path`` (CSV + commented JSON metadata)."""
    with open(path, "w", newline="") as fh:
        meta = {k: v for k, v in workload.meta.items()
                if isinstance(v, (str, int, float, bool, type(None)))}
        fh.write(f"# repro-workload v1\n# meta: {json.dumps(meta)}\n")
        w = csv.writer(fh)
        w.writerow(["req_id", "arrival_us", "name", "app", "bursts"])
        for r in workload:
            w.writerow([r.req_id, r.arrival, r.name, r.app, pack_bursts(r.bursts)])


_COLUMNS = ("req_id", "arrival_us", "name", "app", "bursts")


def load_workload(path: str) -> Workload:
    """Read a workload written by :func:`save_workload`.

    Malformed input fails with the offending row number and field, not
    a downstream KeyError/ValueError deep inside a run.
    """
    meta = {}
    rows = []
    with open(path, newline="") as fh:
        lines = fh.readlines()
    data_lines = []
    for line in lines:
        if line.startswith("#"):
            if line.startswith("# meta: "):
                try:
                    meta = json.loads(line[len("# meta: "):])
                except ValueError as exc:
                    raise ValueError(
                        f"{path}: malformed '# meta:' header: {exc}"
                    ) from None
                if not isinstance(meta, dict):
                    raise ValueError(
                        f"{path}: '# meta:' header must be a JSON object, "
                        f"got {type(meta).__name__}"
                    )
        else:
            data_lines.append(line)
    reader = csv.DictReader(data_lines)
    if reader.fieldnames is not None:
        missing = [c for c in _COLUMNS if c not in reader.fieldnames]
        unknown = [c for c in reader.fieldnames if c not in _COLUMNS]
        if missing or unknown:
            raise ValueError(
                f"{path}: bad header: missing columns {missing}, "
                f"unknown columns {unknown} (expected {list(_COLUMNS)})"
            )
    for lineno, row in enumerate(reader, start=2):
        try:
            rows.append(
                RequestSpec(
                    req_id=int(row["req_id"]),
                    arrival=int(row["arrival_us"]),
                    bursts=unpack_bursts(row["bursts"]),
                    name=row["name"],
                    app=row["app"],
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: data row {lineno}: {exc}") from None
    if not rows:
        raise ValueError(f"no requests found in {path}")
    seen = set()
    for spec in rows:
        if spec.req_id in seen:
            raise ValueError(f"{path}: duplicated req_id {spec.req_id}")
        seen.add(spec.req_id)
    return Workload(rows, meta)
