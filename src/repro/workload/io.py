"""Workload serialization: save and replay exact request sequences.

The paper stresses paired comparisons ("we ran each test multiple
times"); persisting the concrete workload lets a run be replayed
bit-for-bit across processes, machines, and schedulers.  Format: one
CSV row per request with the burst list packed as ``kind:us`` segments,
and the workload metadata in ``#``-prefixed header comments.
"""

from __future__ import annotations

import csv
import json
from typing import List

from repro.sim.task import Burst, BurstKind
from repro.workload.spec import RequestSpec, Workload

_KIND_CODE = {BurstKind.CPU: "cpu", BurstKind.IO: "io"}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def pack_bursts(bursts) -> str:
    """``cpu:25000;io:1000;cpu:400`` — order-preserving, lossless."""
    return ";".join(f"{_KIND_CODE[b.kind]}:{b.duration}" for b in bursts)


def unpack_bursts(packed: str):
    out: List[Burst] = []
    for seg in packed.split(";"):
        if not seg:
            continue
        kind, _, dur = seg.partition(":")
        if kind not in _CODE_KIND:
            raise ValueError(f"unknown burst kind {kind!r}")
        out.append(Burst(_CODE_KIND[kind], int(dur)))
    if not out:
        raise ValueError("empty burst list")
    return tuple(out)


def save_workload(workload: Workload, path: str) -> None:
    """Write the workload to ``path`` (CSV + commented JSON metadata)."""
    with open(path, "w", newline="") as fh:
        meta = {k: v for k, v in workload.meta.items()
                if isinstance(v, (str, int, float, bool, type(None)))}
        fh.write(f"# repro-workload v1\n# meta: {json.dumps(meta)}\n")
        w = csv.writer(fh)
        w.writerow(["req_id", "arrival_us", "name", "app", "bursts"])
        for r in workload:
            w.writerow([r.req_id, r.arrival, r.name, r.app, pack_bursts(r.bursts)])


def load_workload(path: str) -> Workload:
    """Read a workload written by :func:`save_workload`."""
    meta = {}
    rows = []
    with open(path, newline="") as fh:
        lines = fh.readlines()
    data_lines = []
    for line in lines:
        if line.startswith("#"):
            if line.startswith("# meta: "):
                meta = json.loads(line[len("# meta: "):])
        else:
            data_lines.append(line)
    for row in csv.DictReader(data_lines):
        rows.append(
            RequestSpec(
                req_id=int(row["req_id"]),
                arrival=int(row["arrival_us"]),
                bursts=unpack_bursts(row["bursts"]),
                name=row["name"],
                app=row["app"],
            )
        )
    if not rows:
        raise ValueError(f"no requests found in {path}")
    return Workload(rows, meta)
