"""Duration and inter-arrival-time distributions (§VII, Table I).

Two families live here:

* :class:`TableIDurations` — the paper's multi-modal duration model:
  five probability bins, each mapped to a fib-N range (Table I).
* IAT processes — Poisson, uniform, and a bursty (Markov-modulated
  Poisson) process that reproduces the Azure trace's transient
  overload spikes used by Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.units import MS
from repro.workload.functions import fib_duration


@dataclass(frozen=True)
class DurationBin:
    """One Table I row: probability, duration range (us), fib-N range."""

    probability: float
    low_us: int
    high_us: Optional[int]  # None = open-ended (the >= 1550 ms bin)
    n_low: int
    n_high: int

    def contains(self, duration_us: int) -> bool:
        if duration_us < self.low_us:
            return False
        return self.high_us is None or duration_us < self.high_us


#: Table I of the paper, verbatim.  Note the ranges are non-contiguous:
#: each missing range carries < 1 % probability in the Azure Day-1 data.
TABLE_I: Tuple[DurationBin, ...] = (
    DurationBin(0.406, 0, 50 * MS, 20, 26),
    DurationBin(0.098, 50 * MS, 100 * MS, 27, 28),
    DurationBin(0.068, 100 * MS, 200 * MS, 29, 29),
    DurationBin(0.227, 200 * MS, 400 * MS, 30, 31),
    DurationBin(0.157, 1550 * MS, None, 34, 35),
)


class TableIDurations:
    """Samples (fib_n, expected_duration) pairs following Table I."""

    def __init__(self, bins: Sequence[DurationBin] = TABLE_I):
        probs = np.array([b.probability for b in bins], dtype=float)
        if (probs <= 0).any():
            raise ValueError("bin probabilities must be positive")
        self.bins = tuple(bins)
        self._probs = probs / probs.sum()

    def sample_n(self, rng: np.random.Generator) -> int:
        """Draw a fib-N knob value."""
        idx = rng.choice(len(self.bins), p=self._probs)
        b = self.bins[idx]
        return int(rng.integers(b.n_low, b.n_high + 1))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        idxs = rng.choice(len(self.bins), size=count, p=self._probs)
        out = np.empty(count, dtype=np.int64)
        for i, idx in enumerate(idxs):
            b = self.bins[idx]
            out[i] = rng.integers(b.n_low, b.n_high + 1)
        return out

    def mean_duration(self) -> float:
        """Expected CPU demand (us) under this table — used to scale load."""
        total = 0.0
        for p, b in zip(self._probs, self.bins):
            ns = range(b.n_low, b.n_high + 1)
            total += p * float(np.mean([fib_duration(n) for n in ns]))
        return total


# ---------------------------------------------------------------------------
# IAT processes
# ---------------------------------------------------------------------------
class PoissonIAT:
    """Exponential IATs with a fixed mean (us)."""

    def __init__(self, mean_us: float):
        if mean_us <= 0:
            raise ValueError("mean IAT must be positive")
        self.mean_us = mean_us

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        draw = rng.exponential(self.mean_us, size=count)
        return np.maximum(np.rint(draw), 1).astype(np.int64)


class UniformIAT:
    """Uniform IATs on [low, high] us."""

    def __init__(self, low_us: float, high_us: float):
        if not (0 < low_us <= high_us):
            raise ValueError("require 0 < low <= high")
        self.low_us = low_us
        self.high_us = high_us

    @property
    def mean_us(self) -> float:
        return (self.low_us + self.high_us) / 2

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        draw = rng.uniform(self.low_us, self.high_us, size=count)
        return np.maximum(np.rint(draw), 1).astype(np.int64)


class BurstyIAT:
    """Markov-modulated Poisson: normal rate with transient spikes.

    Reproduces the Azure trace's "transient spikes of concurrent
    invocations" (§V-E): with probability ``spike_every`` per request,
    the process enters a spike of ``spike_len`` requests whose arrival
    rate is ``spike_factor`` times the base rate.  Alternatively pass
    ``n_spikes`` to place spikes evenly (Fig 12 shows exactly five).
    """

    def __init__(
        self,
        mean_us: float,
        spike_factor: float = 20.0,
        spike_len: int = 120,
        n_spikes: Optional[int] = 5,
        spike_every: Optional[float] = None,
    ):
        if mean_us <= 0 or spike_factor < 1 or spike_len <= 0:
            raise ValueError("invalid bursty-IAT parameters")
        self.mean_us = mean_us
        self.spike_factor = spike_factor
        self.spike_len = spike_len
        self.n_spikes = n_spikes
        self.spike_every = spike_every

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        iats = rng.exponential(self.mean_us, size=count)
        spike_mask = np.zeros(count, dtype=bool)
        if self.n_spikes:
            # deterministic placement: n spikes spread over the run,
            # jittered a little so they do not alias with window edges
            for k in range(self.n_spikes):
                centre = int((k + 0.5) * count / self.n_spikes)
                centre += int(rng.integers(-self.spike_len, self.spike_len + 1))
                lo = max(0, centre)
                hi = min(count, lo + self.spike_len)
                spike_mask[lo:hi] = True
        elif self.spike_every:
            starts = np.flatnonzero(rng.random(count) < self.spike_every)
            for s in starts:
                spike_mask[s : s + self.spike_len] = True
        iats[spike_mask] /= self.spike_factor
        return np.maximum(np.rint(iats), 1).astype(np.int64)


class ReplayIAT:
    """Replays an explicit IAT sequence (trace-driven mode, §VII)."""

    def __init__(self, iats_us: Sequence[int]):
        arr = np.asarray(iats_us, dtype=np.int64)
        if len(arr) == 0 or (arr <= 0).any():
            raise ValueError("replay IATs must be positive and non-empty")
        self._iats = arr

    @property
    def mean_us(self) -> float:
        return float(self._iats.mean())

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # tile/truncate, preserving the trace's local pattern
        reps = -(-count // len(self._iats))
        return np.tile(self._iats, reps)[:count]


def mean_iat_for_load(mean_cpu_demand_us: float, n_cores: int, load: float) -> float:
    """Invert rho = E[D] / (IAT * c): the IAT that offers ``load``."""
    if not (0 < load):
        raise ValueError("load must be positive")
    return mean_cpu_demand_us / (n_cores * load)
