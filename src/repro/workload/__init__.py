"""Workload generation: FaaSBench and the Azure Functions trace model.

* :mod:`repro.workload.functions` — the fib/md/sa function models and
  the fib-N → duration calibration (Table I).
* :mod:`repro.workload.distributions` — duration mixtures and
  inter-arrival-time processes (Poisson, uniform, trace-like bursty).
* :mod:`repro.workload.faasbench` — FaaSBench, the paper's workload
  generator, rebuilt with the same knobs.
* :mod:`repro.workload.azure` — a synthetic stand-in for the Azure
  Functions 2019 dataset [48], calibrated to every statistic the paper
  quotes from it.
"""

from repro.workload.faasbench import FaaSBench, FaaSBenchConfig
from repro.workload.spec import RequestSpec, Workload

__all__ = ["FaaSBench", "FaaSBenchConfig", "Workload", "RequestSpec"]
