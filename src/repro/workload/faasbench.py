"""FaaSBench: the paper's configurable FaaS workload generator (§VII).

Knobs (matching the paper one-to-one):

1. per-function behaviour: fib's integer knob ``N`` (compute time) and
   the boolean ``IO`` knob (leading I/O operation, Fig 11);
2. the function-duration distribution (Table I by default);
3. the IAT distribution (Poisson / uniform / bursty / replay), scaled
   to a target overall CPU load.

For the OpenLambda end-to-end workload (§IX-A), FaaSBench mixes three
applications — fib (CPU-heavy), md (I/O-heavy), sa (CPU+I/O) — reusing
the same duration and IAT distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.sim.units import MS
from repro.workload.distributions import (
    BurstyIAT,
    PoissonIAT,
    ReplayIAT,
    TableIDurations,
    UniformIAT,
    mean_iat_for_load,
)
from repro.workload.functions import fib_duration, make_fib, make_md, make_sa
from repro.workload.spec import RequestSpec, Workload


@dataclass(frozen=True)
class FaaSBenchConfig:
    """Workload-generation parameters."""

    n_requests: int = 10_000
    #: cores of the target machine (for load scaling).
    n_cores: int = 12
    #: target average CPU utilisation across all cores (0.5 .. 1.0+).
    target_load: float = 0.8
    #: IAT process: "poisson" | "uniform" | "bursty" | "replay".
    iat_kind: str = "poisson"
    #: explicit IATs (us) for ``iat_kind="replay"``.
    replay_iats: Optional[Tuple[int, ...]] = None
    #: fraction of requests with the leading-I/O knob set (Fig 11).
    io_fraction: float = 0.0
    #: range of the injected I/O duration (us), X ~ U[10 ms, 100 ms].
    io_range: Tuple[int, int] = (10 * MS, 100 * MS)
    #: application mix: name -> probability.  fib-only by default;
    #: the OpenLambda workload uses all three.
    app_mix: Tuple[Tuple[str, float], ...] = (("fib", 1.0),)
    #: per-invocation duration jitter (lognormal sigma).
    jitter_sigma: float = 0.05
    #: bursty-IAT spike shape (Fig 12).
    spike_factor: float = 20.0
    spike_len: int = 120
    n_spikes: int = 5

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if not (0 <= self.io_fraction <= 1):
            raise ValueError("io_fraction must be in [0, 1]")
        if self.iat_kind not in ("poisson", "uniform", "bursty", "replay"):
            raise ValueError(f"unknown iat_kind {self.iat_kind!r}")
        if self.iat_kind == "replay" and not self.replay_iats:
            raise ValueError("replay mode needs replay_iats")
        total = sum(p for _n, p in self.app_mix)
        if total <= 0:
            raise ValueError("app_mix probabilities must sum > 0")
        for name, _p in self.app_mix:
            if name not in ("fib", "md", "sa"):
                raise ValueError(f"unknown app {name!r}")


#: §IX-A's comprehensive OpenLambda mix (fib / md / sa, uniform-ish
#: with fib dominating as the motivating workload).
OPENLAMBDA_MIX: Tuple[Tuple[str, float], ...] = (
    ("fib", 0.5),
    ("md", 0.25),
    ("sa", 0.25),
)


class FaaSBench:
    """Generates :class:`repro.workload.spec.Workload` objects."""

    def __init__(self, config: FaaSBenchConfig, seed: SeedLike = None):
        self.config = config
        self.seed = seed
        self.rng = make_rng(seed)
        self.durations = TableIDurations()

    # ------------------------------------------------------------------
    def generate(self) -> Workload:
        cfg = self.config
        rng = self.rng
        n = cfg.n_requests

        arrivals = self._arrivals(n)
        app_names = [name for name, _p in cfg.app_mix]
        app_probs = np.array([p for _n, p in cfg.app_mix], dtype=float)
        app_probs /= app_probs.sum()
        app_idx = rng.choice(len(app_names), size=n, p=app_probs)
        ns = self.durations.sample_many(rng, n)
        io_flags = rng.random(n) < cfg.io_fraction

        requests = []
        for i in range(n):
            app = app_names[app_idx[i]]
            fib_n = int(ns[i])
            if app == "fib":
                bursts = make_fib(
                    fib_n,
                    io=bool(io_flags[i]),
                    io_range_us=cfg.io_range,
                    rng=rng,
                    jitter_sigma=cfg.jitter_sigma,
                )
                name = f"fib-{fib_n}"
            elif app == "md":
                bursts = make_md(fib_duration(fib_n), rng=rng,
                                 jitter_sigma=cfg.jitter_sigma)
                name = f"md-{fib_n}"
            else:
                bursts = make_sa(fib_duration(fib_n), rng=rng,
                                 jitter_sigma=cfg.jitter_sigma)
                name = f"sa-{fib_n}"
            requests.append(
                RequestSpec(
                    req_id=i,
                    arrival=int(arrivals[i]),
                    bursts=bursts,
                    name=name,
                    app=app,
                )
            )
        meta = {
            "generator": "FaaSBench",
            "target_load": cfg.target_load,
            "iat_kind": cfg.iat_kind,
            "n_cores": cfg.n_cores,
            "io_fraction": cfg.io_fraction,
            "seed": self.seed if isinstance(self.seed, int) else None,
        }
        return Workload(requests, meta)

    # ------------------------------------------------------------------
    def _arrivals(self, n: int) -> np.ndarray:
        cfg = self.config
        # Load scaling targets *CPU* demand: I/O overlaps with other
        # work and does not occupy cores.
        mean_cpu = self.durations.mean_duration()
        if cfg.app_mix != (("fib", 1.0),):
            # md uses 25 % CPU, sa 70 %: adjust expected CPU per request
            frac = {"fib": 1.0, "md": 0.25, "sa": 0.70}
            mix_probs = dict(cfg.app_mix)
            total_p = sum(mix_probs.values())
            mean_cpu *= sum(
                (p / total_p) * frac[name] for name, p in cfg.app_mix
            )
        mean_iat = mean_iat_for_load(mean_cpu, cfg.n_cores, cfg.target_load)

        if cfg.iat_kind == "poisson":
            proc = PoissonIAT(mean_iat)
        elif cfg.iat_kind == "uniform":
            proc = UniformIAT(mean_iat * 0.5, mean_iat * 1.5)
        elif cfg.iat_kind == "bursty":
            proc = BurstyIAT(
                mean_iat,
                spike_factor=cfg.spike_factor,
                spike_len=cfg.spike_len,
                n_spikes=cfg.n_spikes,
            )
        else:
            proc = ReplayIAT(cfg.replay_iats)
        iats = proc.sample(self.rng, n)
        if cfg.iat_kind == "replay":
            # §VIII-A: "We adjusted the IAT of the generated workload
            # proportionally to simulate different loads" — replayed
            # traces keep their *pattern* but are rescaled to the target.
            scale = mean_iat / float(np.mean(iats))
            iats = np.maximum(np.rint(iats * scale), 1).astype(np.int64)
        return np.cumsum(iats)
