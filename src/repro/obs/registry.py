"""Metric registries: the zero-overhead null default and the real one.

Mirrors the :mod:`repro.trace.recorder` contract exactly:

* ``enabled`` — class-level flag the hot paths branch on;
* ``counter`` / ``gauge`` / ``histogram`` — get-or-create instruments.

:class:`NullRegistry` is the default everywhere: instrumented layers
cache ``sim.metrics`` (and its ``enabled`` flag) at construction time
and guard every hook with ``if self._metrics_on:``, so a disabled run
pays one attribute load and a predictable branch per site.  The null
registry also hands back a shared do-nothing instrument from the
get-or-create methods so that mistakenly unguarded calls degrade to
no-ops instead of crashing.

:class:`MetricsRegistry` keys instruments by ``(name, labels)``; the
same call site can therefore be labelled per core, per scheduling
class, or per function class without bookkeeping at the call site.

Registries are installed on the :class:`repro.sim.engine.Simulator`
(``Simulator(metrics=...)``) **before** machines and schedulers are
constructed, exactly like trace recorders.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.instruments import (
    DEFAULT_GAMMA,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    _label_suffix,
)


class _NullInstrument:
    """Accepts any instrument write and discards it."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, value: float, ts: Optional[int] = None) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Do-nothing registry; the zero-overhead default."""

    __slots__ = ()

    enabled: bool = False
    #: gauge sampling period (us) honoured when a sampler is attached.
    gauge_interval: int = 10_000
    #: host-side self-profiler; never present on the null registry.
    profiler = None

    def counter(self, name: str, help: str = "", unit: str = "",
                labels: Optional[Dict[str, str]] = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", unit: str = "",
              labels: Optional[Dict[str, str]] = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", unit: str = "",
                  labels: Optional[Dict[str, str]] = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRegistry>"


#: shared singleton — every unmetered run points here.
NULL_REGISTRY = NullRegistry()


class MetricsRegistry(NullRegistry):
    """In-memory instrument registry.

    ``gauge_interval`` (integer microseconds) sets how often the gauge
    sampler (:func:`repro.trace.gauges.attach_gauge_sampler`) snapshots
    queue depths while a run is live.

    ``profile`` attaches a :class:`repro.obs.profiler.HostProfiler` so
    the simulator also records *wall-clock* time per dispatch site.
    Profiler data is host-dependent and therefore kept out of the
    deterministic snapshot — exporters opt into it explicitly.
    """

    __slots__ = ("_instruments", "gauge_interval", "profiler", "gamma")

    enabled = True

    def __init__(self, gauge_interval: int = 10_000, profile: bool = False,
                 gamma: float = DEFAULT_GAMMA):
        if gauge_interval <= 0:
            raise ValueError("gauge_interval must be positive")
        self._instruments: Dict[Tuple[str, str], object] = {}
        self.gauge_interval = gauge_interval
        self.gamma = gamma
        if profile:
            from repro.obs.profiler import HostProfiler

            self.profiler = HostProfiler()
        else:
            self.profiler = None

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, unit: str,
             labels: Optional[Dict[str, str]], **kw):
        key = (name, _label_suffix(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, help=help, unit=unit, labels=labels, **kw)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "", unit: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, help, unit, labels)

    def gauge(self, name: str, help: str = "", unit: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, help, unit, labels)

    def histogram(self, name: str, help: str = "", unit: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  quantiles: Tuple[float, ...] = DEFAULT_QUANTILES) -> Histogram:
        return self._get(Histogram, name, help, unit, labels,
                         gamma=self.gamma, quantiles=quantiles)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[object]:
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[object]:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _label_suffix(labels)))

    def find(self, name: str) -> List[object]:
        """All instruments sharing ``name`` across label sets."""
        return [inst for (n, _), inst in sorted(self._instruments.items())
                if n == name]

    def snapshot(self) -> Dict[str, object]:
        """Deterministic name→state mapping (no wall-clock data).

        Keys are ``name`` or ``name{k="v"}``; same seed → same snapshot,
        byte for byte once JSON-encoded.
        """
        out: Dict[str, object] = {}
        for (name, suffix), inst in sorted(self._instruments.items()):
            out[name + suffix] = {"kind": inst.kind, **inst.snapshot()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._instruments)} instruments>"
