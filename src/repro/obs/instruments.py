"""Streaming metric instruments: counter, gauge, quantile histogram.

Three instrument kinds cover everything the observability layer needs:

* :class:`Counter` — a monotone total (events, promotions, boost-us);
* :class:`Gauge`   — a sampled level (queue depth, pool occupancy),
  keeping last/min/max plus a bounded, deterministically decimated
  time series for timeline rendering;
* :class:`Histogram` — a distribution summarised by a
  :class:`QuantileSketch`, so P50/P99/P99.9 are available in O(1)
  memory without ever retaining the full sample list.

The sketch is DDSketch-style (Masson et al., VLDB'19 — the same family
as P²/t-digest): values land in logarithmically spaced buckets with
ratio ``γ̄ = (1+α)/(1-α)``, which guarantees every quantile estimate is
within *relative* error ``α`` of the exact order statistic it targets.
That guarantee is what the hypothesis property suite pins down.

Everything here is driven by virtual-time events only, so two runs with
the same seed produce byte-identical snapshots (the host-side
wall-clock profiler lives in :mod:`repro.obs.profiler` and is exported
separately for exactly this reason).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

#: quantiles every histogram snapshot reports (the paper's headline set).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99, 0.999)

#: default relative accuracy: P99 within 1 % of the exact order statistic.
DEFAULT_GAMMA = 0.01

#: values below this are indistinguishable from zero (durations are
#: integer microseconds, so anything sub-microsecond is noise).
MIN_TRACKABLE = 1e-6


def _label_suffix(labels: Optional[Dict[str, str]]) -> str:
    """Canonical ``{k="v",...}`` suffix; empty string when unlabelled."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "help", "unit", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{_label_suffix(self.labels)}={self.value}>"


class Gauge:
    """Sampled level with last/min/max and a bounded time series.

    The series is decimated deterministically: once ``max_points``
    samples accumulate, every other retained point is dropped and the
    keep-stride doubles, so memory stays O(max_points) while the series
    still spans the whole run.  Two identical runs decimate identically.
    """

    __slots__ = ("name", "help", "unit", "labels", "last", "min", "max",
                 "samples", "series", "_stride", "_countdown", "max_points")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 max_points: int = 512):
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.last: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: int = 0
        self.series: List[Tuple[int, float]] = []
        self.max_points = max_points
        self._stride = 1
        self._countdown = 1

    def set(self, value: float, ts: Optional[int] = None) -> None:
        self.last = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if ts is None:
            return
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._stride
        self.series.append((ts, value))
        if len(self.series) >= self.max_points:
            self.series = self.series[::2]
            self._stride *= 2
            self._countdown = self._stride

    def snapshot(self) -> Dict[str, object]:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{_label_suffix(self.labels)}={self.last}>"


class QuantileSketch:
    """DDSketch-style log-bucketed quantile sketch.

    ``gamma`` is the relative-accuracy bound α: for any quantile ``q``
    the estimate returned by :meth:`quantile` is within ``α`` (relative)
    of the exact sample at the targeted rank — the property suite
    asserts exactly this sandwich.  Memory is O(log(max/min) / log γ̄)
    buckets, independent of how many values are observed.

    Only non-negative values are accepted (the instruments measure
    durations, depths and counts); values below :data:`MIN_TRACKABLE`
    share an exact zero bucket.
    """

    __slots__ = ("gamma", "_gbar", "_log_gbar", "count", "zero_count",
                 "buckets")

    def __init__(self, gamma: float = DEFAULT_GAMMA):
        if not (0.0 < gamma < 1.0):
            raise ValueError("gamma must be in (0, 1)")
        self.gamma = gamma
        self._gbar = (1.0 + gamma) / (1.0 - gamma)
        self._log_gbar = math.log(self._gbar)
        self.count: int = 0
        self.zero_count: int = 0
        self.buckets: Dict[int, int] = {}

    def add(self, value: float, n: int = 1) -> None:
        if value < 0:
            raise ValueError(f"sketch values must be >= 0, got {value}")
        self.count += n
        if value < MIN_TRACKABLE:
            self.zero_count += n
            return
        idx = math.ceil(math.log(value) / self._log_gbar)
        self.buckets[idx] = self.buckets.get(idx, 0) + n

    def merge(self, other: "QuantileSketch") -> None:
        if other.gamma != self.gamma:
            raise ValueError("cannot merge sketches with different gamma")
        self.count += other.count
        self.zero_count += other.zero_count
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def _representative(self, idx: int) -> float:
        # midpoint of (γ̄^(i-1), γ̄^i] in relative terms: within α of
        # every value that mapped to bucket i
        return 2.0 * self._gbar ** idx / (self._gbar + 1.0)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (q in [0, 1]).

        Targets the nearest-rank order statistic ``round(q * (n - 1))``;
        the estimate is within relative error ``gamma`` of that exact
        sample.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            raise ValueError("empty sketch")
        rank = int(q * (self.count - 1) + 0.5)
        if rank < self.zero_count:
            return 0.0
        cum = self.zero_count
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum > rank:
                return self._representative(idx)
        # numerically impossible unless counts were corrupted
        raise AssertionError("rank beyond total count")  # pragma: no cover

    def __len__(self) -> int:
        return self.count


class Histogram:
    """Distribution summary: count/sum/min/max + quantile sketch."""

    __slots__ = ("name", "help", "unit", "labels", "sketch", "sum",
                 "min", "max", "quantiles")

    kind = "histogram"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 labels: Optional[Dict[str, str]] = None,
                 gamma: float = DEFAULT_GAMMA,
                 quantiles: Tuple[float, ...] = DEFAULT_QUANTILES):
        self.name = name
        self.help = help
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.sketch = QuantileSketch(gamma)
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.quantiles = quantiles

    def observe(self, value: float) -> None:
        self.sketch.add(value)
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def mean(self) -> float:
        return self.sum / self.sketch.count if self.sketch.count else 0.0

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        if self.count:
            snap["quantiles"] = {
                f"{q:g}": self.sketch.quantile(q) for q in self.quantiles
            }
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name}{_label_suffix(self.labels)} "
                f"n={self.count}>")
