"""Virtual-time attribution: where did the latency go?

The paper's distributional claims (Figs 6-16) say *that* SFS moves the
P99; attribution says *why*.  Every finished request already carries
exact virtual-time accounting on its :class:`RequestRecord`, so the
end-to-end latency decomposes, microsecond for microsecond, into:

========  ==========================================================
queue     arrival -> OS dispatch: platform overheads, admission
          backoff and container provisioning (cold starts; the
          ``repro_coldstart_us`` histogram isolates that share)
run       on-CPU time (``cpu_time``)
block     I/O / off-CPU voluntary blocking (``io_demand``)
wait      runnable but not running — the scheduler's contribution,
          the quantity SFS exists to shrink for short functions
overhead  the residual: context-switch cost, slice rounding and
          retry gaps (zero on ideal hardware)
========  ==========================================================

Records split into the paper's *short*/*long* function classes at
400 ms of CPU demand (Table I's empty band between the 400 ms and
1550 ms bins).  The threshold lives in :mod:`repro.constants` — a
dependency-free module — so obs stays importable without the
experiment stack while agreeing with it on the boundary.

Per-core utilization and queue-depth timelines come from the gauge
series a :class:`repro.obs.MetricsRegistry` collected during the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constants import SHORT_CPU_BOUND_US  # noqa: F401  (re-export)

#: decomposition order used by every table/exporter
COMPONENTS = ("queue", "run", "block", "wait", "overhead")


@dataclass
class ClassBreakdown:
    """Latency decomposition for one function class."""

    label: str
    n: int = 0
    total: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in COMPONENTS})
    end_to_end: int = 0

    def add(self, queue: int, run: int, block: int, wait: int,
            overhead: int, e2e: int) -> None:
        t = self.total
        t["queue"] += queue
        t["run"] += run
        t["block"] += block
        t["wait"] += wait
        t["overhead"] += overhead
        self.end_to_end += e2e
        self.n += 1

    def mean(self, component: str) -> float:
        return self.total[component] / self.n if self.n else 0.0

    def share(self, component: str) -> float:
        """Fraction of total end-to-end latency spent in ``component``."""
        return (self.total[component] / self.end_to_end
                if self.end_to_end else 0.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "end_to_end_us": self.end_to_end,
            "total_us": dict(self.total),
            "mean_us": {c: round(self.mean(c), 1) for c in COMPONENTS},
            "share": {c: round(self.share(c), 4) for c in COMPONENTS},
        }


def _decompose(rec) -> Tuple[int, int, int, int, int, int]:
    e2e = rec.end_to_end
    queue = rec.dispatch - rec.arrival
    run = rec.cpu_time
    block = rec.io_demand
    wait = rec.wait_time
    overhead = e2e - queue - run - block - wait
    return queue, run, block, wait, overhead, e2e


def attribute_records(
    records: Sequence[object],
    short_bound: int = SHORT_CPU_BOUND_US,
) -> Dict[str, ClassBreakdown]:
    """Decompose end-to-end latency per function class.

    Returns ``{"short": ..., "long": ..., "all": ...}``; requests that
    never produced useful work (shed/failed synthetics with zero
    turnaround) are attributed too — their latency is all "queue",
    which is exactly where it was spent.
    """
    out = {
        "short": ClassBreakdown("short"),
        "long": ClassBreakdown("long"),
        "all": ClassBreakdown("all"),
    }
    for rec in records:
        parts = _decompose(rec)
        cls = "short" if rec.cpu_demand < short_bound else "long"
        out[cls].add(*parts)
        out["all"].add(*parts)
    return out


def latency_table(
    records: Sequence[object],
    short_bound: int = SHORT_CPU_BOUND_US,
) -> str:
    """Render the "where did the latency go" table (ms, mean/request)."""
    br = attribute_records(records, short_bound)
    classes = [br["short"], br["long"], br["all"]]
    header = ["class", "n"] + [f"{c} (ms)" for c in COMPONENTS] + ["e2e (ms)"]
    rows: List[List[str]] = []
    for b in classes:
        if b.n == 0:
            continue
        row = [b.label, str(b.n)]
        for c in COMPONENTS:
            row.append(f"{b.mean(c) / 1e3:.1f} ({b.share(c):.0%})")
        row.append(f"{b.end_to_end / b.n / 1e3:.1f}")
        rows.append(row)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = ["where did the latency go (mean per request, share of e2e)",
             fmt.format(*header),
             "  ".join("-" * w for w in widths)]
    lines += [fmt.format(*r) for r in rows]
    return "\n".join(lines)


def sfs_accounting(registry) -> Dict[str, object]:
    """SFS boost/demote counters as one flat dict (empty without SFS)."""
    names = {
        "submitted": "repro_sfs_submitted_total",
        "resubmitted": "repro_sfs_resubmitted_total",
        "promoted": "repro_sfs_promotions_total",
        "finished_in_slice": "repro_sfs_filter_finishes_total",
        "bypassed_overload": "repro_sfs_overload_bypass_total",
        "boost_us": "repro_sfs_boost_us_total",
    }
    out: Dict[str, object] = {}
    for key, name in names.items():
        inst = registry.get(name)
        if inst is not None:
            out[key] = inst.value
    for reason in ("slice", "io"):
        inst = registry.get("repro_sfs_demotions_total",
                            labels={"reason": reason})
        if inst is not None:
            out[f"demoted_{reason}"] = inst.value
    delay = registry.get("repro_sfs_queue_delay_us")
    if delay is not None and delay.count:
        out["queue_delay_p50_us"] = round(delay.sketch.quantile(0.5), 1)
        out["queue_delay_p99_us"] = round(delay.sketch.quantile(0.99), 1)
    return out


def utilization_timeline(
    registry, n_cores: int,
) -> List[Tuple[int, float]]:
    """(virtual ts, machine utilization in [0,1]) from the idle-cores
    gauge series the registry sampled during the run."""
    gauge = registry.get("repro_idle_cores")
    if gauge is None or n_cores <= 0:
        return []
    return [(ts, (n_cores - idle) / n_cores) for ts, idle in gauge.series]


def core_depth_timelines(registry) -> Dict[int, List[Tuple[int, float]]]:
    """Per-core fair-runqueue depth series, keyed by core index."""
    out: Dict[int, List[Tuple[int, float]]] = {}
    for inst in registry.find("repro_runqueue_depth"):
        core = int(inst.labels.get("core", -1))
        out[core] = list(inst.series)
    return out
