"""Host-side self-profiler: where does the *simulator* spend wall time?

Virtual-time metrics describe the modelled system; this module times
the model itself.  :class:`HostProfiler` keeps one accumulator per
named site (event dispatch, runqueue picks, fluid advances) and derives
an events/second throughput figure, so "the discrete engine got slower"
shows up as a number instead of a feeling — this is what ``repro
bench`` builds on.

Wall-clock data is host-dependent by definition, so it is **never**
part of the deterministic metrics snapshot; exporters pull it via
:meth:`HostProfiler.report` only when explicitly asked.

The hot-path API is deliberately tiny: callers bracket a region with
``t0 = perf_counter()`` … ``prof.add(site, perf_counter() - t0)``.  A
context-manager or decorator would cost an allocation per event, which
at millions of events per run is the difference between a profiler and
a heisenberg.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

perf_counter = time.perf_counter


class _SiteStats:
    """Accumulated wall time for one profiled site."""

    __slots__ = ("calls", "total_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_us": (self.total_s / self.calls * 1e6) if self.calls else 0.0,
            "max_us": self.max_s * 1e6,
        }


class HostProfiler:
    """Per-site wall-clock accumulators + run-level throughput."""

    __slots__ = ("sites", "run_wall_s", "events_executed")

    def __init__(self) -> None:
        self.sites: Dict[str, _SiteStats] = {}
        self.run_wall_s: float = 0.0
        self.events_executed: int = 0

    def add(self, site: str, elapsed_s: float) -> None:
        st = self.sites.get(site)
        if st is None:
            st = self.sites[site] = _SiteStats()
        st.calls += 1
        st.total_s += elapsed_s
        if elapsed_s > st.max_s:
            st.max_s = elapsed_s

    def note_run(self, wall_s: float, events_executed: int) -> None:
        """Record one completed ``Simulator.run`` span."""
        self.run_wall_s += wall_s
        self.events_executed += events_executed

    @property
    def events_per_sec(self) -> float:
        if self.run_wall_s <= 0.0:
            return 0.0
        return self.events_executed / self.run_wall_s

    def report(self) -> Dict[str, object]:
        """Host-dependent profile — kept out of deterministic dumps."""
        return {
            "run_wall_s": self.run_wall_s,
            "events_executed": self.events_executed,
            "events_per_sec": self.events_per_sec,
            "sites": {name: self.sites[name].as_dict()
                      for name in sorted(self.sites)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HostProfiler {len(self.sites)} sites "
                f"{self.events_per_sec:.0f} ev/s>")
