"""repro.obs — unified observability: metrics, attribution, profiling.

Layering (mirrors ``repro.trace`` / ``repro.invariants``):

* :mod:`repro.obs.instruments` — counter / gauge / quantile-sketch
  histogram primitives;
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` and the
  zero-overhead :data:`NULL_REGISTRY` default installed on every
  simulator;
* :mod:`repro.obs.profiler` — host-side wall-clock self-profiler;
* :mod:`repro.obs.hooks` — gauge fanout + runqueue observer glue;
* :mod:`repro.obs.attribution` — virtual-time latency breakdown
  ("where did the latency go") and per-core utilization timelines;
* :mod:`repro.obs.export` — Prometheus text / JSONL / HTML exporters;
* :mod:`repro.obs.bench` — the ``repro bench`` perf-trajectory harness.

Only the leaf modules are imported here: ``sim.engine`` imports this
package for :data:`NULL_REGISTRY`, so pulling in attribution / export /
bench (which import machines and experiments) at package init would
cycle.  Import those submodules explicitly.
"""

from repro.obs.hooks import GaugeSink, RunqueueObs
from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    QuantileSketch,
)
from repro.obs.profiler import HostProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, NullRegistry

__all__ = [
    "Counter",
    "Gauge",
    "GaugeSink",
    "Histogram",
    "HostProfiler",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "QuantileSketch",
    "RunqueueObs",
]
