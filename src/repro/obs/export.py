"""Metric exporters: Prometheus text, JSONL dump, HTML report.

Three formats, one registry:

* :func:`to_prometheus` — the text exposition format scrapers expect
  (``# HELP`` / ``# TYPE`` + sample lines; histograms exported as
  summaries with ``quantile`` labels);
* :func:`to_jsonl` — one JSON object per line under the
  ``repro.metrics/1`` schema.  Deterministic by construction: sorted
  instruments, virtual timestamps only; the wall-clock profiler is
  excluded unless explicitly requested, so the same seed produces a
  byte-identical dump;
* :func:`to_html` — a single self-contained page (inline CSS + SVG, no
  external assets) combining the instrument tables with the latency
  attribution and utilization timeline from
  :mod:`repro.obs.attribution`.

All three accept any registry; the null registry just exports nothing.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.attribution import (
    attribute_records,
    sfs_accounting,
    utilization_timeline,
)
from repro.obs.instruments import _label_suffix

METRICS_SCHEMA = "repro.metrics/1"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def to_prometheus(registry) -> str:
    """Render the registry in the Prometheus text format."""
    by_name: Dict[str, List[object]] = {}
    for inst in registry:
        by_name.setdefault(inst.name, []).append(inst)
    lines: List[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        first = group[0]
        kind = "summary" if first.kind == "histogram" else first.kind
        if first.help:
            lines.append(f"# HELP {name} {first.help}")
        lines.append(f"# TYPE {name} {kind}")
        for inst in group:
            suffix = _label_suffix(inst.labels)
            if inst.kind == "counter":
                lines.append(f"{name}{suffix} {inst.value}")
            elif inst.kind == "gauge":
                lines.append(f"{name}{suffix} {_num(inst.last)}")
            else:  # histogram -> summary
                for q in inst.quantiles:
                    labels = dict(inst.labels)
                    labels["quantile"] = f"{q:g}"
                    val = inst.quantile(q) if inst.count else "NaN"
                    lines.append(
                        f"{name}{_label_suffix(labels)} {_num(val)}")
                lines.append(f"{name}_sum{suffix} {_num(inst.sum)}")
                lines.append(f"{name}_count{suffix} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _num(v) -> str:
    if isinstance(v, str):
        return v
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


# ----------------------------------------------------------------------
# JSONL dump
# ----------------------------------------------------------------------
def metrics_lines(registry, include_profile: bool = False,
                  include_series: bool = False) -> List[str]:
    """The ``repro.metrics/1`` dump as a list of JSON lines.

    Header line, then one line per instrument in sorted order.  Gauge
    time series (virtual timestamps) ride along under ``series`` when
    ``include_series`` is set; the host profiler — wall-clock, hence
    non-deterministic — only with ``include_profile``.
    """
    insts = list(registry)
    header: Dict[str, object] = {
        "schema": METRICS_SCHEMA,
        "instruments": len(insts),
    }
    lines = [json.dumps(header, sort_keys=True)]
    for inst in insts:
        rec: Dict[str, object] = {
            "type": "instrument",
            "name": inst.name,
            "kind": inst.kind,
        }
        if inst.labels:
            rec["labels"] = dict(sorted(inst.labels.items()))
        if inst.unit:
            rec["unit"] = inst.unit
        if inst.help:
            rec["help"] = inst.help
        rec.update(inst.snapshot())
        if include_series and inst.kind == "gauge" and inst.series:
            rec["series"] = [[ts, v] for ts, v in inst.series]
        lines.append(json.dumps(rec, sort_keys=True))
    profiler = getattr(registry, "profiler", None)
    if include_profile and profiler is not None:
        lines.append(json.dumps(
            {"type": "profile", **profiler.report()}, sort_keys=True))
    return lines


def to_jsonl(registry, include_profile: bool = False,
             include_series: bool = False) -> str:
    return "\n".join(
        metrics_lines(registry, include_profile, include_series)) + "\n"


def write_metrics(path: str, registry, include_profile: bool = False,
                  include_series: bool = False) -> None:
    """Write the JSONL dump (or Prometheus text for ``.prom`` paths)."""
    if path.endswith(".prom") or path.endswith(".txt"):
        text = to_prometheus(registry)
    else:
        text = to_jsonl(registry, include_profile, include_series)
    with open(path, "w") as fh:
        fh.write(text)


def read_metrics(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load a JSONL dump back: (header, instrument records)."""
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines or lines[0].get("schema") != METRICS_SCHEMA:
        raise ValueError(f"{path} is not a {METRICS_SCHEMA} dump")
    return lines[0], lines[1:]


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 70em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th { background: #f0f0f0; } td:first-child, th:first-child { text-align: left; }
.muted { color: #777; font-size: 0.85em; }
svg { border: 1px solid #ddd; background: #fafafa; }
"""


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(str(c))}</td>" for c in row)
        + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _sparkline(series: Sequence[Tuple[int, float]], width: int = 640,
               height: int = 80, y_max: Optional[float] = None) -> str:
    series = list(series)
    if not series:
        return "<p class=muted>no samples for a timeline</p>"
    ys = [v for _, v in series]
    top = y_max if y_max is not None else max(ys)
    if top is None or top <= 0:
        top = 1.0
    if len(series) == 1:
        y = height - min(ys[0], top) / top * height
        return (
            f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<circle cx="2.0" cy="{y:.1f}" r="2.5" fill="#3366cc"/></svg>'
        )
    xs = [ts for ts, _ in series]
    x0, x1 = xs[0], xs[-1]
    span = (x1 - x0) or 1
    pts = " ".join(
        f"{(x - x0) / span * width:.1f},"
        f"{height - min(y, top) / top * height:.1f}"
        for x, y in series
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{pts}" fill="none" stroke="#3366cc" '
        f'stroke-width="1.5"/></svg>'
    )


#: public name — the explorer's ``<noscript>`` fallback reuses this
sparkline = _sparkline


def _fmt_quantiles(inst) -> str:
    if not inst.count:
        return "-"
    return ", ".join(
        f"p{q * 100:g}={inst.quantile(q):,.0f}" for q in inst.quantiles)


def to_html(registry, records: Optional[Sequence[object]] = None,
            n_cores: int = 0, title: str = "repro metrics report") -> str:
    """One self-contained HTML page: instruments + attribution."""
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
    ]

    if records:
        parts.append("<h2>Where did the latency go</h2>")
        br = attribute_records(records)
        rows = []
        for cls in ("short", "long", "all"):
            b = br[cls]
            if not b.n:
                continue
            rows.append(
                [b.label, b.n]
                + [f"{b.mean(c) / 1e3:,.1f} ({b.share(c):.0%})"
                   for c in ("queue", "run", "block", "wait", "overhead")]
                + [f"{b.end_to_end / b.n / 1e3:,.1f}"]
            )
        parts.append(_table(
            ["class", "n", "queue (ms)", "run (ms)", "block (ms)",
             "wait (ms)", "overhead (ms)", "e2e (ms)"], rows))
        parts.append("<p class=muted>mean per request; share of "
                     "end-to-end latency in parentheses</p>")

    util = utilization_timeline(registry, n_cores) if n_cores else []
    if util:
        parts.append("<h2>Machine utilization</h2>")
        parts.append(_sparkline(util, y_max=1.0))
        mean_util = sum(v for _, v in util) / len(util)
        parts.append(f"<p class=muted>mean {mean_util:.1%} over "
                     f"{len(util)} samples (virtual time)</p>")

    sfs = sfs_accounting(registry) if registry.enabled else {}
    if sfs:
        parts.append("<h2>SFS boost/demote accounting</h2>")
        parts.append(_table(["counter", "value"],
                            [(k, f"{v:,}" if isinstance(v, int) else v)
                             for k, v in sfs.items()]))

    counters, gauges, histograms = [], [], []
    for inst in registry:
        label = inst.name + _label_suffix(inst.labels)
        if inst.kind == "counter":
            counters.append((label, f"{inst.value:,}"))
        elif inst.kind == "gauge":
            gauges.append((label, inst.last,
                           inst.min if inst.min is not None else "-",
                           inst.max if inst.max is not None else "-",
                           inst.samples))
        else:
            histograms.append((label, inst.count, f"{inst.mean:,.1f}",
                               _fmt_quantiles(inst)))
    if counters:
        parts.append("<h2>Counters</h2>")
        parts.append(_table(["name", "total"], counters))
    if histograms:
        parts.append("<h2>Histograms</h2>")
        parts.append(_table(["name", "count", "mean", "quantiles"],
                            histograms))
    if gauges:
        parts.append("<h2>Gauges</h2>")
        parts.append(_table(["name", "last", "min", "max", "samples"],
                            gauges))

    profiler = getattr(registry, "profiler", None)
    if profiler is not None and profiler.events_executed:
        rep = profiler.report()
        parts.append("<h2>Simulator self-profile (wall clock)</h2>")
        parts.append(_table(
            ["", "value"],
            [("events executed", f"{rep['events_executed']:,}"),
             ("wall time (s)", f"{rep['run_wall_s']:.3f}"),
             ("events/sec", f"{rep['events_per_sec']:,.0f}")]))
        rows = [
            (site, s["calls"], f"{s['total_s']:.3f}", f"{s['mean_us']:.2f}",
             f"{s['max_us']:.1f}")
            for site, s in sorted(rep["sites"].items())
        ]
        if rows:
            parts.append(_table(
                ["site", "calls", "total (s)", "mean (us)", "max (us)"],
                rows))
        parts.append("<p class=muted>host-dependent; excluded from "
                     "deterministic dumps</p>")

    parts.append("</body></html>")
    return "".join(parts)


def write_html(path: str, registry,
               records: Optional[Sequence[object]] = None,
               n_cores: int = 0, title: str = "repro metrics report") -> None:
    with open(path, "w") as fh:
        fh.write(to_html(registry, records=records, n_cores=n_cores,
                         title=title))
