"""Headless perf-trajectory harness behind ``repro bench``.

The ROADMAP's "measurably faster" north-star needs numbers to measure
against.  This module runs a fixed set of scenarios — the same shapes
the ``benchmarks/`` suite exercises interactively — without pytest,
times them with the host profiler's clock, and emits one schema'd
snapshot (``repro.bench/1``) per invocation::

    {
      "schema": "repro.bench/1",
      "host": {"python": "3.11.7", "platform": "linux"},
      "scenarios": {
        "micro_fluid": {"wall_s": 0.12, "events": 4093,
                         "events_per_sec": 33523.1, "peak_rss_kb": 81234},
        ...
      }
    }

Committed snapshots are named ``BENCH_PR<N>.json``; the newest one is
the baseline the next run compares against, and an events/sec drop
beyond :data:`REGRESSION_THRESHOLD` on any shared scenario fails the
run (``--report-only`` downgrades that to a report, which is what CI
uses on machines with unknown noise floors).

``peak_rss_kb`` is process-wide high-water mark (``ru_maxrss``), so
within one invocation it is monotone across scenarios — compare it
between snapshots per scenario, not between scenarios of one snapshot.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import re
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

BENCH_SCHEMA = "repro.bench/1"
REGRESSION_THRESHOLD = 0.20

#: scenario name -> (description, factory); the factory returns a
#: zero-argument callable that executes the scenario once and returns
#: the number of simulator events it drove.
_SCENARIOS: Dict[str, Tuple[str, Callable[[bool], Callable[[], int]]]] = {}


def _scenario(name: str, desc: str):
    def register(factory):
        _SCENARIOS[name] = (desc, factory)
        return factory
    return register


def scenario_names() -> List[str]:
    return list(_SCENARIOS)


# ----------------------------------------------------------------------
# scenarios (deterministic workloads, sized for seconds not minutes)
# ----------------------------------------------------------------------
def _micro_tasks(n: int, seed: int = 1):
    from repro.sim.units import MS

    rng = np.random.default_rng(seed)
    out, at = [], 0
    for _ in range(n):
        at += int(rng.exponential(8 * MS))
        out.append((at, int(rng.uniform(5 * MS, 60 * MS))))
    return out


def _drive_machine(machine_cls, n_tasks: int):
    from repro.machine.base import MachineParams
    from repro.sim.engine import Simulator
    from repro.sim.task import Burst, BurstKind, Task

    specs = _micro_tasks(n_tasks)

    def run() -> int:
        sim = Simulator()
        m = machine_cls(sim, MachineParams(n_cores=4))
        for at, dur in specs:
            sim.schedule_at(at, m.spawn, Task(bursts=[Burst(BurstKind.CPU, dur)]))
        sim.run()
        return sim.events_executed

    return run


@_scenario("micro_fluid", "bare fluid engine, 400 CPU tasks / 4 cores")
def _micro_fluid(quick: bool):
    from repro.machine.fluid import FluidMachine

    return _drive_machine(FluidMachine, 200 if quick else 400)


@_scenario("micro_discrete", "bare discrete engine, 400 CPU tasks / 4 cores")
def _micro_discrete(quick: bool):
    from repro.machine.discrete import DiscreteMachine

    return _drive_machine(DiscreteMachine, 200 if quick else 400)


def _run_workload_scenario(scheduler: str, engine: str, n_requests: int):
    from repro.experiments.runner import RunConfig, run_workload
    from repro.machine.base import MachineParams
    from repro.workload.faasbench import FaaSBench, FaaSBenchConfig

    wl = FaaSBench(
        FaaSBenchConfig(n_requests=n_requests, n_cores=8, target_load=0.9),
        seed=7,
    ).generate()
    cfg = RunConfig(scheduler=scheduler, engine=engine,
                    machine=MachineParams(n_cores=8), invariants=False)
    events = [0]

    def run() -> int:
        res = run_workload(wl, cfg)
        events[0] = res.manifest.events_executed if res.manifest else 0
        return events[0]

    return run


@_scenario("fluid_cfs", "FaaSBench under plain CFS, fluid engine")
def _fluid_cfs(quick: bool):
    return _run_workload_scenario("cfs", "fluid", 800 if quick else 3000)


@_scenario("fluid_sfs", "FaaSBench under SFS, fluid engine")
def _fluid_sfs(quick: bool):
    return _run_workload_scenario("sfs", "fluid", 800 if quick else 3000)


@_scenario("discrete_sfs", "FaaSBench under SFS, discrete engine")
def _discrete_sfs(quick: bool):
    return _run_workload_scenario("sfs", "discrete", 300 if quick else 1000)


@_scenario("openlambda", "OpenLambda platform pipeline under SFS")
def _openlambda(quick: bool):
    from repro.faas.openlambda import OpenLambdaConfig, run_openlambda
    from repro.workload.faasbench import (
        OPENLAMBDA_MIX, FaaSBench, FaaSBenchConfig,
    )

    wl = FaaSBench(
        FaaSBenchConfig(n_requests=400 if quick else 1500, n_cores=8,
                        target_load=0.9, app_mix=OPENLAMBDA_MIX),
        seed=7,
    ).generate()
    cfg = OpenLambdaConfig(scheduler="sfs")

    def run() -> int:
        res = run_openlambda(wl, cfg)
        return res.meta["events_executed"]

    return run


def _pool_scenario(workers: int, quick: bool):
    from repro.experiments import chaos
    from repro.pool import PoolConfig, run_pool

    cfg = chaos.Config(n_requests=120 if quick else 500, n_hosts=2,
                       cores_per_host=4)
    items = chaos.shards(cfg, seed=7)
    pool_cfg = PoolConfig(workers=workers)

    def run() -> int:
        report = run_pool(items, chaos.run_shard, pool_cfg)
        return sum(json.loads(t)["events_executed"]
                   for t in report.results)

    return run


@_scenario("pool_serial", "chaos mini-grid through repro.pool, inline")
def _pool_serial(quick: bool):
    return _pool_scenario(0, quick)


# NB: the serial-vs-4-workers ratio is host-dependent: on a multi-core
# host it records the parallel speedup, on a single-core host (CI
# containers) it records pure supervision overhead.  The snapshot's
# host.cpus field says which one you are looking at.
@_scenario("pool_workers4", "chaos mini-grid through repro.pool, 4 workers")
def _pool_workers4(quick: bool):
    return _pool_scenario(4, quick)


def _replay_stream_config(quick: bool):
    from repro.workload.stream import StreamConfig

    return StreamConfig(n_requests=800 if quick else 2000, n_cores=8,
                        target_load=0.9)


@_scenario("replay_stream", "streaming replay driver under SFS (repro.stream)")
def _replay_stream(quick: bool):
    from repro.machine.base import MachineParams
    from repro.stream import ReplayConfig, StreamReplayDriver
    from repro.workload.stream import RequestStream

    scfg = _replay_stream_config(quick)
    rcfg = ReplayConfig(scheduler="sfs", machine=MachineParams(n_cores=8),
                        checkpoint_every=None)

    def run() -> int:
        doc = StreamReplayDriver(RequestStream(scfg, seed=7), rcfg).run()
        return doc["events_executed"]

    return run


# same workload as replay_stream, executed through the materialized
# path — the rss_kb gap between this pair is the streaming win
@_scenario("replay_materialized", "identical workload, materialized runner")
def _replay_materialized(quick: bool):
    from repro.experiments.runner import RunConfig, run_workload
    from repro.machine.base import MachineParams
    from repro.workload.stream import RequestStream

    wl = RequestStream(_replay_stream_config(quick), seed=7).materialize()
    cfg = RunConfig(scheduler="sfs", engine="fluid",
                    machine=MachineParams(n_cores=8), invariants=False)

    def run() -> int:
        res = run_workload(wl, cfg)
        return res.manifest.events_executed if res.manifest else 0

    return run


@_scenario("cluster", "4-host cluster, least-loaded placement")
def _cluster(quick: bool):
    from repro.faas.cluster import ClusterConfig, run_cluster
    from repro.workload.faasbench import FaaSBench, FaaSBenchConfig

    wl = FaaSBench(
        FaaSBenchConfig(n_requests=600 if quick else 2000, n_cores=32,
                        target_load=0.9),
        seed=7,
    ).generate()
    cfg = ClusterConfig(n_hosts=4)

    def run() -> int:
        res = run_cluster(wl, cfg)
        return res.meta["events_executed"]

    return run


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def _current_rss_kb() -> int:
    """Current-RSS gauge (``/proc`` based; 0 where unsupported)."""
    import gc

    from repro.stream.watchdog import rss_kb

    gc.collect()  # drop the scenario's garbage before gauging
    return rss_kb()


def _peak_rss_kb() -> int:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX host
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes
    return rss // 1024 if sys.platform == "darwin" else rss


def run_scenarios(names: Optional[List[str]] = None, quick: bool = False,
                  rounds: int = 3,
                  progress: Optional[Callable[[str], None]] = None,
                  ) -> Dict[str, object]:
    """Execute the scenarios and return a ``repro.bench/1`` snapshot.

    ``wall_s`` is best-of-``rounds`` (min is the standard noise filter
    for throughput benches); ``events`` comes from the last round.
    """
    chosen = names or scenario_names()
    unknown = [n for n in chosen if n not in _SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; available: {scenario_names()}")
    scenarios: Dict[str, object] = {}
    for name in chosen:
        desc, factory = _SCENARIOS[name]
        fn = factory(quick)
        best, events = float("inf"), 0
        for _ in range(max(1, rounds)):
            t0 = time.perf_counter()
            events = fn()
            best = min(best, time.perf_counter() - t0)
        scenarios[name] = {
            "desc": desc,
            "wall_s": round(best, 4),
            "events": events,
            "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
            "peak_rss_kb": _peak_rss_kb(),
            # current (not high-water) RSS after the scenario's objects
            # are dropped: unlike peak_rss_kb this CAN go down, so it is
            # the field that exposes retained-memory differences (e.g.
            # replay_stream vs replay_materialized)
            "rss_kb": _current_rss_kb(),
        }
        if progress is not None:
            s = scenarios[name]
            progress(f"  {name:<16} {s['wall_s']:>8.3f}s "
                     f"{s['events_per_sec']:>12,.0f} ev/s")
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpus": os.cpu_count() or 1,
        },
        "scenarios": scenarios,
    }


def validate_snapshot(doc: Dict[str, object]) -> None:
    """Raise ValueError unless ``doc`` is a well-formed snapshot."""
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"expected schema {BENCH_SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError("snapshot has no scenarios")
    for name, s in scenarios.items():
        for key in ("wall_s", "events", "events_per_sec", "peak_rss_kb"):
            if not isinstance(s.get(key), (int, float)):
                raise ValueError(f"scenario {name!r} missing numeric {key!r}")


# ----------------------------------------------------------------------
# baselines and regression comparison
# ----------------------------------------------------------------------
def _pr_number(path: str) -> int:
    m = re.search(r"BENCH_PR(\d+)\.json$", os.path.basename(path))
    return int(m.group(1)) if m else -1


def find_baseline(root: str = ".",
                  exclude: Optional[str] = None) -> Optional[str]:
    """Newest committed ``BENCH_*.json`` (numeric PR order), if any."""
    paths = [
        p for p in glob.glob(os.path.join(root, "BENCH_*.json"))
        if exclude is None
        or os.path.abspath(p) != os.path.abspath(exclude)
    ]
    if not paths:
        return None
    return max(paths, key=lambda p: (_pr_number(p), p))


def compare(current: Dict[str, object], baseline: Dict[str, object],
            threshold: float = REGRESSION_THRESHOLD,
            ) -> List[Dict[str, object]]:
    """Per-scenario events/sec deltas vs a baseline snapshot.

    Returns one row per scenario present in both, flagging
    ``regressed`` when throughput dropped more than ``threshold``.
    Quick and full snapshots run different sizes, so comparison is
    refused across the ``quick`` flag.
    """
    if current.get("quick") != baseline.get("quick"):
        raise ValueError("cannot compare quick and full snapshots")
    rows = []
    cur, base = current["scenarios"], baseline["scenarios"]
    for name in cur:
        if name not in base:
            continue
        b, c = base[name]["events_per_sec"], cur[name]["events_per_sec"]
        ratio = c / b if b else 1.0
        rows.append({
            "scenario": name,
            "baseline_eps": b,
            "current_eps": c,
            "ratio": round(ratio, 3),
            "regressed": ratio < (1.0 - threshold),
        })
    return rows


def write_snapshot(path: str, doc: Dict[str, object]) -> None:
    validate_snapshot(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: str) -> Dict[str, object]:
    with open(path) as fh:
        doc = json.load(fh)
    validate_snapshot(doc)
    return doc
