"""Glue between instrumented layers and the metrics registry.

Two pieces live here:

* :class:`GaugeSink` — an ``emit``-compatible fanout that the periodic
  gauge sampler (:func:`repro.trace.gauges.attach_gauge_sampler`) hands
  to ``sample_gauges`` in place of the bare trace recorder.  Every
  ``gauge.*`` event is routed to a registry :class:`Gauge` (named per
  :data:`GAUGE_METRICS`, labelled per core where applicable) and, when
  tracing is on, forwarded verbatim to the trace recorder — the old
  trace track is now a thin adapter over this path, byte-identical to
  what it recorded before.

* :class:`RunqueueObs` — a per-scheduling-class instrument bundle the
  machine engines attach to their runqueues (``rq.obs``).  Runqueue hot
  paths guard with ``if self.obs is not None:`` so the null-registry
  case costs one attribute load and a predictable branch, exactly like
  the trace guards.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.trace import events as tev

#: gauge trace kind -> (metric name, help text, labelled per core?)
GAUGE_METRICS: Dict[str, Tuple[str, str, bool]] = {
    tev.GAUGE_RUNNABLE: (
        "repro_runnable_tasks", "ready-but-not-running tasks, machine-wide",
        False),
    tev.GAUGE_IDLE_CORES: (
        "repro_idle_cores", "cores with nothing to run", False),
    tev.GAUGE_RUNQUEUE: (
        "repro_runqueue_depth", "per-core fair-class runqueue depth", True),
    tev.GAUGE_RT_QUEUE: (
        "repro_rt_queue_depth", "global RT runqueue length", False),
    tev.GAUGE_POOL: (
        "repro_pool_occupancy", "fluid CFS pool occupancy", False),
    tev.GAUGE_RT_RUNNING: (
        "repro_rt_running", "fluid dedicated-core count", False),
    tev.GAUGE_GLOBAL_QUEUE: (
        "repro_sfs_global_queue", "SFS global queue length", False),
    tev.GAUGE_WATCH_LIST: (
        "repro_sfs_watch_list", "SFS blocked watch-list size", False),
    tev.GAUGE_BUSY_WORKERS: (
        "repro_sfs_busy_workers", "occupied FILTER workers", False),
    # core carries the cluster host index for platform-level gauges
    # (matching fault.host_* events); -1 = standalone, unlabelled
    tev.GAUGE_KEEPALIVE: (
        "repro_keepalive_warm", "warm containers in the keep-alive cache",
        True),
    tev.GAUGE_OUTSTANDING: (
        "repro_outstanding_requests", "invocations in flight on the platform",
        True),
    tev.GAUGE_UNHEALTHY: (
        "repro_cluster_unhealthy_hosts",
        "hosts the dispatcher's health view excludes from placement",
        False),
    tev.GAUGE_RETRY_TOKENS: (
        "repro_cluster_retry_tokens",
        "whole tokens left in the global retry budget", False),
}


class GaugeSink:
    """Fanout for periodic ``gauge.*`` samples: registry + trace."""

    __slots__ = ("_registry", "_trace", "_trace_on", "_gauges")

    def __init__(self, registry, trace) -> None:
        self._registry = registry
        self._trace = trace
        self._trace_on = trace.enabled
        self._gauges: Dict[Tuple[str, int], object] = {}

    def emit(self, ts: int, kind: str, tid: int = -1, core: int = -1,
             args: Tuple = ()) -> None:
        # trace first: the adapter must preserve the recorder's exact
        # pre-registry event stream (order included)
        if self._trace_on:
            self._trace.emit(ts, kind, tid, core, args)
        if not self._registry.enabled or not args:
            return
        gauge = self._gauges.get((kind, core))
        if gauge is None:
            spec = GAUGE_METRICS.get(kind)
            if spec is None:
                return  # a non-gauge kind slipped through; trace keeps it
            name, help, per_core = spec
            labels = {"core": str(core)} if per_core and core >= 0 else None
            gauge = self._registry.gauge(name, help=help, labels=labels)
            self._gauges[(kind, core)] = gauge
        gauge.set(args[0], ts=ts)


class RunqueueObs:
    """Enqueue/pick counters + depth histogram for one scheduling class.

    One instance is shared by every runqueue of the same class on a
    machine (per-core depth is covered by the periodic gauges; lifetime
    operation counts aggregate naturally).
    """

    __slots__ = ("enqueues", "picks", "depth")

    def __init__(self, registry, sched_class: str) -> None:
        labels = {"class": sched_class}
        self.enqueues = registry.counter(
            "repro_rq_enqueues_total", help="runqueue insertions",
            labels=labels)
        self.picks = registry.counter(
            "repro_rq_picks_total", help="runqueue pick_next/pop hits",
            labels=labels)
        self.depth = registry.histogram(
            "repro_rq_depth_at_enqueue", help="queue depth seen at enqueue",
            labels=labels)

    def on_enqueue(self, depth: int) -> None:
        self.enqueues.inc()
        self.depth.observe(depth)

    def on_pick(self) -> None:
        self.picks.inc()
