"""Command-line interface.

The subcommands cover the common flows without writing Python::

    python -m repro run --scheduler sfs --load 1.0 --requests 5000
    python -m repro compare --schedulers cfs sfs srtf --load 0.9
    python -m repro replay --requests 1000000 --checkpoint-dir ckpt/
    python -m repro replay --requests 1000000 --checkpoint-dir ckpt/ --resume
    python -m repro trace out.json --scheduler sfs --requests 500
    python -m repro experiment fig6 headline ext-eevdf
    python -m repro experiment chaos headline --out results/ --resume
    python -m repro experiment chaos --out results/ --workers 4
    python -m repro check --quick
    python -m repro fuzz --budget 200 --seed 0 --out findings/ --workers 4
    python -m repro fuzz replay tests/corpus/case.json
    python -m repro pool replay results/quarantine.json
    python -m repro report out.html --explore explore.html --bundle runA/
    python -m repro explore runA/ runB/ -o diff.html
    python -m repro list

``run`` and ``compare`` generate a FaaSBench workload and print the
duration/RTE summary; both accept ``--trace PATH`` to also capture the
structured event stream (Chrome trace-event JSON for ``.json`` paths —
open in ui.perfetto.dev — or JSONL for ``.jsonl``).  ``trace`` is the
capture-first spelling of ``run``; ``experiment`` executes registry
entries at their scaled configurations and prints the rendered paper
artifact.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis.report import format_cdf_probes, format_table
from repro.experiments.registry import REGISTRY
from repro.experiments.runner import SCHEDULERS, RunConfig, run_workload
from repro.machine.base import MachineParams
from repro.metrics.stats import improvement_summary, percentile
from repro.workload.faasbench import OPENLAMBDA_MIX, FaaSBench, FaaSBenchConfig


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--requests", type=int, default=5000)
    p.add_argument("--cores", type=int, default=12)
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iat", choices=("poisson", "uniform", "bursty"),
                   default="poisson")
    p.add_argument("--io-fraction", type=float, default=0.0)
    p.add_argument("--mix", choices=("fib", "openlambda"), default="fib")
    p.add_argument("--engine", choices=("fluid", "discrete"), default="fluid")
    p.add_argument("--ctx-cost", type=int, default=500,
                   help="context-switch cost in us (0 = ideal hardware)")
    p.add_argument("--workload", metavar="PATH",
                   help="replay a saved workload instead of generating one")
    p.add_argument("--save-workload", metavar="PATH",
                   help="save the generated workload for later replay")
    p.add_argument("--trace", metavar="PATH", dest="trace",
                   help="record a structured trace (.json = Chrome "
                        "trace-event for Perfetto, .jsonl = JSON lines)")
    p.add_argument("--metrics", metavar="PATH", dest="metrics",
                   help="dump aggregated metrics (.jsonl = repro.metrics/1, "
                        ".prom/.txt = Prometheus text, .html = report)")
    p.add_argument("--gauge-interval", type=int, default=10_000,
                   help="trace gauge sampling period in us")
    p.add_argument("--faults", metavar="PLAN.json",
                   help="inject faults from a FaultPlan JSON file")
    p.add_argument("--timeout", type=int, metavar="US",
                   help="per-request deadline in us (expired = killed)")
    p.add_argument("--retries", type=int, metavar="N",
                   help="retry failed attempts up to N total attempts")
    p.add_argument("--shed", type=int, metavar="N",
                   help="shed arrivals beyond N outstanding requests")
    p.add_argument("--invariants", action="store_const", const=True,
                   default=None,
                   help="force runtime invariant checking on for this run "
                        "(default: follow REPRO_INVARIANTS)")


def _workload(args):
    from repro.workload.io import load_workload, save_workload

    if getattr(args, "workload", None):
        return load_workload(args.workload)
    mix = OPENLAMBDA_MIX if args.mix == "openlambda" else (("fib", 1.0),)
    cfg = FaaSBenchConfig(
        n_requests=args.requests,
        n_cores=args.cores,
        target_load=args.load,
        iat_kind=args.iat,
        io_fraction=args.io_fraction,
        app_mix=mix,
    )
    wl = FaaSBench(cfg, seed=args.seed).generate()
    if getattr(args, "save_workload", None):
        save_workload(wl, args.save_workload)
        print(f"saved workload to {args.save_workload}")
    return wl


def _trace_path_for(base: str, scheduler: str, multi: bool) -> str:
    """Per-scheduler artifact path: ``out.json`` -> ``out-sfs.json``."""
    if not multi:
        return base
    root, dot, ext = base.rpartition(".")
    if not dot:
        return f"{base}-{scheduler}"
    return f"{root}-{scheduler}.{ext}"


def _fault_config(args) -> dict:
    """RunConfig kwargs for the ``--faults/--timeout/--retries/--shed``
    flags (empty dict = nominal run, exact pre-fault code path)."""
    from repro.faults import AdmissionControl, FaultPlan, RetryPolicy

    kwargs = {}
    if getattr(args, "faults", None):
        kwargs["faults"] = FaultPlan.load(args.faults)
    if getattr(args, "timeout", None) is not None:
        kwargs["timeout"] = args.timeout
    if getattr(args, "retries", None) is not None:
        kwargs["retry"] = RetryPolicy(max_attempts=args.retries, seed=args.seed)
    if getattr(args, "shed", None) is not None:
        kwargs["admission"] = AdmissionControl(max_outstanding=args.shed)
    return kwargs


def _check_parent(path: str, what: str) -> None:
    parent = os.path.dirname(path)
    if parent and not os.path.isdir(parent):
        # fail before the (possibly long) run, not at write time
        print(f"error: {what} directory does not exist: {parent}",
              file=sys.stderr)
        raise SystemExit(2)


def _run(args, scheduler: str, trace_path: Optional[str] = None,
         registry=None, recorder=None):
    from repro.trace import TraceRecorder, write_trace

    machine = MachineParams(n_cores=args.cores, ctx_switch_cost=args.ctx_cost)
    cfg = RunConfig(scheduler=scheduler, engine=args.engine, machine=machine,
                    invariants=getattr(args, "invariants", None),
                    **_fault_config(args))
    if trace_path:
        _check_parent(trace_path, "trace")
        if recorder is None:
            recorder = TraceRecorder(gauge_interval=args.gauge_interval)
    metrics_path = getattr(args, "metrics", None)
    if registry is None and metrics_path:
        from repro.obs import MetricsRegistry

        _check_parent(metrics_path, "metrics")
        registry = MetricsRegistry(gauge_interval=args.gauge_interval)
    res = run_workload(_workload(args), cfg, trace=recorder, metrics=registry)
    if trace_path:
        write_trace(trace_path, recorder, res.manifest)
        print(f"wrote {len(recorder)} trace events to {trace_path}")
    if metrics_path and registry is not None:
        from repro.obs.export import write_html, write_metrics

        if metrics_path.endswith(".html"):
            write_html(metrics_path, registry, records=res.records,
                       n_cores=args.cores,
                       title=f"{scheduler} on {args.cores} cores")
        else:
            write_metrics(metrics_path, registry)
        print(f"wrote {len(registry)} instruments to {metrics_path}")
    return res


def cmd_run(args) -> int:
    t0 = time.time()
    res = _run(args, args.scheduler, trace_path=args.trace)
    t = res.turnarounds
    rows = [
        ("requests", len(res.records)),
        ("utilization", f"{res.utilization:.2f}"),
        ("p50 (ms)", f"{percentile(t, 50) / 1e3:.1f}"),
        ("p99 (ms)", f"{percentile(t, 99) / 1e3:.1f}"),
        ("mean (ms)", f"{t.mean() / 1e3:.1f}"),
        ("median RTE", f"{np.median(res.rtes):.3f}"),
        ("wall time (s)", f"{time.time() - t0:.1f}"),
    ]
    if res.sfs_stats is not None:
        s = res.sfs_stats
        rows += [
            ("SFS promoted", s.promoted),
            ("SFS finished in slice", s.completed_in_filter),
            ("SFS demoted (slice)", s.demoted_slice),
            ("SFS bypassed (overload)", s.bypassed_overload),
        ]
    if "fault_stats" in res.meta:
        from repro.metrics.faults import fault_summary

        fs = fault_summary(res)
        rows += [
            ("goodput (r/s)", f"{fs.goodput_rps:.1f}"),
            ("goodput fraction", f"{fs.goodput_fraction:.1%}"),
            ("retries/request", f"{fs.retries_per_request:.3f}"),
            ("shed", fs.shed),
            ("abandoned (failed+timeout)", fs.failed + fs.timeout),
        ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.scheduler} on {args.cores} cores, "
                             f"load {args.load:.0%}"))
    return 0


def cmd_compare(args) -> int:
    multi = len(args.schedulers) > 1
    runs = {
        s: _run(args, s,
                trace_path=_trace_path_for(args.trace, s, multi)
                if args.trace else None)
        for s in args.schedulers
    }
    print(format_cdf_probes(
        {name: r.turnarounds for name, r in runs.items()},
        title=f"execution duration (ms), load {args.load:.0%}, "
              f"{args.cores} cores",
    ))
    if "cfs" in runs and "sfs" in runs:
        s = improvement_summary(runs["cfs"].turnarounds, runs["sfs"].turnarounds)
        print(
            f"\nSFS vs CFS: {s['fraction_improved']:.1%} improved "
            f"(x{s['mean_speedup_improved']:.1f} mean), rest "
            f"x{s['mean_slowdown_rest']:.2f} slower"
        )
    return 0


def cmd_trace(args) -> int:
    """Run one scheduler with tracing on and write the artifact."""
    args.trace = args.output
    rc = cmd_run(args)
    if rc == 0 and args.summary:
        import json

        with open(args.output) as fh:
            if args.output.endswith(".jsonl"):
                kinds = {}
                for line in fh:
                    rec = json.loads(line)
                    if rec.get("type") == "event":
                        k = rec["kind"]
                        kinds[k] = kinds.get(k, 0) + 1
            else:
                doc = json.load(fh)
                kinds = {}
                phase_names = {"C": "counter", "M": "metadata"}
                for ev in doc["traceEvents"]:
                    cat = ev.get("cat") or phase_names.get(
                        ev.get("ph"), ev.get("ph", "?")
                    )
                    kinds[cat] = kinds.get(cat, 0) + 1
        rows = sorted(kinds.items())
        print(format_table(["kind", "events"], rows, title="trace summary"))
    return rc


def cmd_replay(args) -> int:
    """Streaming long-horizon replay (repro.stream)."""
    import json

    from repro.sim.units import SEC
    from repro.stream import (
        CheckpointError,
        CheckpointStore,
        MemoryBudgetExceeded,
        MemoryWatchdog,
        ReplayConfig,
        StreamReplayDriver,
        StreamSummary,
        rss_kb,
    )
    from repro.workload.stream import RequestStream, StreamConfig

    # fail on unwritable destinations before the (long) run, exit 2
    for path, what in ((args.output, "replay output"),
                       (args.spill, "spill"),
                       (args.stats, "stats")):
        if path:
            _check_parent(path, what)
    if args.checkpoint_dir:
        _check_parent(os.path.normpath(args.checkpoint_dir), "checkpoint")
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    checkpointer = (CheckpointStore(args.checkpoint_dir)
                    if args.checkpoint_dir else None)
    watchdog = (MemoryWatchdog(args.mem_budget * 1024)
                if args.mem_budget else None)
    # checkpoint ticks exist to serve the checkpointer and the
    # watchdog; with neither, drop them from the event stream entirely
    every = None
    if checkpointer is not None or watchdog is not None:
        every = int(args.checkpoint_every * SEC)

    scfg = StreamConfig(
        n_requests=args.requests,
        n_cores=args.cores,
        target_load=args.load,
        source=args.source,
        iat_kind=args.iat,
        io_fraction=args.io_fraction,
    )
    rcfg = ReplayConfig(
        scheduler=args.scheduler,
        engine=args.engine,
        machine=MachineParams(n_cores=args.cores),
        horizon=int(args.horizon * SEC) if args.horizon else None,
        checkpoint_every=every,
    )
    driver = StreamReplayDriver(
        RequestStream(scfg, seed=args.seed),
        rcfg,
        aggregator=StreamSummary(spill_path=args.spill),
        checkpointer=checkpointer,
        watchdog=watchdog,
    )
    if args.resume:
        try:
            driver = checkpointer.load(expect_config=driver.config_dict())
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if watchdog is not None:
            # RSS is process state: budget the new process, keep nothing
            driver.watchdog = watchdog
        print(f"resumed from t={driver.resumed_from}us "
              f"({driver.done} requests done)", file=sys.stderr)

    wall0 = time.perf_counter()
    try:
        doc = driver.run()
    except MemoryBudgetExceeded as exc:
        report = dict(exc.report)
        report["wall_s"] = round(time.perf_counter() - wall0, 3)
        text = json.dumps(report, sort_keys=True, indent=2) + "\n"
        if args.stats:
            with open(args.stats, "w") as fh:
                fh.write(text)
        print(f"error: {exc}", file=sys.stderr)
        if report.get("checkpoint"):
            print(f"checkpoint saved: {report['checkpoint']}",
                  file=sys.stderr)
        return 1
    wall = time.perf_counter() - wall0

    text = StreamSummary.to_json(doc)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    # run stats are wall-clock/host facts, deliberately OUTSIDE the
    # deterministic summary document
    stats = {
        "wall_s": round(wall, 3),
        "rss_kb": rss_kb(),
        "peak_rss_kb": (driver.watchdog.peak_kb
                        if driver.watchdog is not None else rss_kb()),
        "requests": doc["requests"],
        "events_executed": doc["events_executed"],
        "checkpoints_written": driver.checkpoints_written,
        "resumed_from_us": driver.resumed_from,
    }
    if args.stats:
        with open(args.stats, "w") as fh:
            fh.write(json.dumps(stats, sort_keys=True, indent=2) + "\n")
    print(f"{doc['requests']} requests in {wall:.1f}s wall "
          f"({stats['rss_kb']} KiB RSS, "
          f"{driver.checkpoints_written} checkpoints)", file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    """Run once with metrics on and render the observability report."""
    from repro.obs import MetricsRegistry
    from repro.obs.attribution import latency_table, sfs_accounting
    from repro.obs.export import write_html, write_metrics

    _check_parent(args.output, "report")
    if args.explore:
        _check_parent(args.explore, "explorer")
    if args.bundle:
        # the bundle path may itself name a directory to create
        _check_parent(os.path.normpath(args.bundle), "bundle")
    registry = MetricsRegistry(gauge_interval=args.gauge_interval,
                               profile=args.profile)
    recorder = None
    if args.explore or args.bundle:
        from repro.trace import TraceRecorder

        recorder = TraceRecorder(gauge_interval=args.gauge_interval)
    t0 = time.time()
    res = _run(args, args.scheduler, trace_path=args.trace,
               registry=registry, recorder=recorder)
    print(latency_table(res.records))
    sfs = sfs_accounting(registry)
    if sfs:
        rows = sorted(sfs.items())
        print()
        print(format_table(["SFS counter", "value"], rows))
    if recorder is not None:
        from repro.explore import RunBundle, write_explorer

        bundle = RunBundle.capture(res, recorder, metrics=registry)
        if args.bundle:
            saved = bundle.save(args.bundle)
            print(f"\nwrote run bundle to {saved}")
        if args.explore:
            n = write_explorer(args.explore, [bundle], metrics=registry)
            print(f"\nwrote explorer to {args.explore} ({n / 1e6:.2f} MB)")
    if args.profile and registry.profiler is not None:
        rep = registry.profiler.report()
        print(f"\nself-profile: {rep['events_executed']:,} events in "
              f"{rep['run_wall_s']:.2f}s wall "
              f"({rep['events_per_sec']:,.0f} ev/s)")
    if args.output.endswith((".jsonl", ".prom", ".txt")):
        write_metrics(args.output, registry,
                      include_profile=args.profile)
    else:
        write_html(args.output, registry, records=res.records,
                   n_cores=args.cores,
                   title=f"{args.scheduler} on {args.cores} cores, "
                         f"load {args.load:.0%}")
    print(f"\nwrote {args.output} ({len(registry)} instruments, "
          f"{time.time() - t0:.1f}s)")
    return 0


def cmd_explore(args) -> int:
    """Render saved run bundles into one interactive offline page."""
    from repro.explore import RunBundle, write_explorer

    if len(args.bundles) > 2:
        print("error: explore takes one bundle (single view) or two "
              "(A/B diff)", file=sys.stderr)
        return 2
    _check_parent(args.output, "explorer")
    bundles = []
    for path in args.bundles:
        try:
            bundles.append(RunBundle.load(path))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    n = write_explorer(args.output, bundles, title=args.title)
    labels = " vs ".join(b.label for b in bundles)
    print(f"wrote explorer ({labels}) to {args.output} ({n / 1e6:.2f} MB)")
    return 0


def _why_rows(req: dict) -> List[tuple]:
    """Segment table rows from one stored why-document request entry."""
    rows = []
    for seg in req.get("segments", ()):
        rows.append((
            seg["t0"], seg["dur"], seg["kind"], seg.get("reason", ""),
            seg.get("core", ""), seg.get("actor", ""),
        ))
    return rows


def cmd_why(args) -> int:
    """Per-request critical-path attribution (repro.why)."""
    from repro.why import (AuditLog, build_timelines, build_why_doc,
                           render_flamegraph, why_json)

    if args.output:
        _check_parent(args.output, "why report")
    if args.flame:
        _check_parent(args.flame, "flamegraph")

    if args.bundle:
        from repro.explore import RunBundle

        try:
            bundle = RunBundle.load(args.bundle)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        doc = bundle.why
        if doc is None:
            print("error: bundle predates repro.why (no embedded why "
                  "section); re-capture the run or use the fresh-run "
                  "form (repro why --scheduler ...)", file=sys.stderr)
            return 2
        label = bundle.label
    else:
        if args.scheduler in ("srtf", "ideal"):
            # the oracle machines emit no task.* trace events, so there
            # is nothing to reconstruct a timeline from
            print("error: scheduler must be one of cfs/fifo/rr/sfs for "
                  "why (srtf/ideal emit no task trace)", file=sys.stderr)
            return 2
        from repro.trace import TraceRecorder

        machine = MachineParams(n_cores=args.cores,
                                ctx_switch_cost=args.ctx_cost)
        cfg = RunConfig(scheduler=args.scheduler, engine=args.engine,
                        machine=machine,
                        invariants=getattr(args, "invariants", None),
                        **_fault_config(args))
        recorder = TraceRecorder(gauge_interval=args.gauge_interval)
        audit = AuditLog()
        res = run_workload(_workload(args), cfg, trace=recorder,
                           audit=audit)
        timelines = build_timelines(res.records, recorder, audit=audit)
        # embed every request when a specific one is asked for, so the
        # drill-down never misses; aggregates are identical either way
        top = 0 if args.request is not None else args.top_blamed
        doc = build_why_doc(timelines, top_blamed=top)
        label = f"{args.scheduler}/{args.engine}"

    totals = doc["totals"]
    inexact = [rid for rid, r in doc["requests"].items()
               if not r.get("exact", True)]
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(why_json(doc))
        print(f"wrote {args.output} ({doc['schema']})")
    if args.flame:
        with open(args.flame, "w") as fh:
            fh.write(render_flamegraph(doc["flame"],
                                       title=f"blame — {label}"))
        print(f"wrote {args.flame}")

    if args.request is not None:
        req = doc["requests"].get(str(args.request))
        if req is None:
            print(f"error: request {args.request} is not in this "
                  f"document (only the top {len(doc['requests'])} blamed "
                  "requests are embedded); raise --top-blamed when "
                  "capturing, or use the fresh-run form",
                  file=sys.stderr)
            return 2
        print(f"request {args.request} ({req['name']}, app={req['app']}) "
              f"— {req['status']}, {req['attempts']} attempt(s)")
        print(f"end-to-end {req['end_to_end_us'] / 1e3:.3f} ms, blamed "
              f"{req['blamed_us'] / 1e3:.3f} ms "
              f"({req['blamed_us'] / max(1, req['end_to_end_us']):.1%})")
        print(format_table(
            ["t0 (us)", "dur (us)", "kind", "reason", "core", "actor"],
            _why_rows(req), title="causal timeline"))
        return 0

    e2e = max(1, totals["end_to_end_us"])
    print(f"why: {label} — {totals['requests']} requests")
    print(f"blamed {totals['blamed_us'] / 1e6:.3f}s of "
          f"{e2e / 1e6:.3f}s end-to-end "
          f"({totals['blamed_us'] / e2e:.1%})")
    kinds = " | ".join(f"{k} {v / 1e6:.3f}s"
                       for k, v in totals["by_kind"].items())
    print(f"by kind: {kinds or '-'}")
    reason_rows = sorted(totals["by_reason"].items(),
                         key=lambda kv: (-kv[1], kv[0]))
    if reason_rows:
        print(format_table(
            ["kind/reason", "blamed (ms)"],
            [(k, f"{v / 1e3:.3f}") for k, v in reason_rows],
            title="blame by deschedule reason"))
    actor_rows = sorted(totals["by_actor"].items(),
                        key=lambda kv: (-kv[1], kv[0]))
    if actor_rows:
        print(format_table(
            ["decision-maker", "blamed (ms)"],
            [(k, f"{v / 1e3:.3f}") for k, v in actor_rows],
            title="blame by audited decision-maker"))
    top_rows = []
    for rid in doc["top_blamed"][:args.top_blamed]:
        r = doc["requests"].get(str(rid))
        if r is None:
            continue
        top_rows.append((
            rid, r["name"], r["app"], r["status"],
            f"{r['blamed_us'] / 1e3:.3f}",
            f"{r['end_to_end_us'] / 1e3:.3f}",
            f"{r['blamed_us'] / max(1, r['end_to_end_us']):.0%}",
        ))
    if top_rows:
        print(format_table(
            ["req", "name", "app", "status", "blamed (ms)", "e2e (ms)",
             "share"],
            top_rows, title=f"top {len(top_rows)} blamed requests "
                            "(drill down with --request ID)"))
    if inexact:
        print(f"warning: {len(inexact)} request(s) failed the exact-sum "
              f"invariant: {inexact[:5]}", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    """Headless perf snapshot + regression gate (repro.obs.bench)."""
    from repro.obs import bench as obench

    names = args.scenarios or None
    print(f"running {len(names or obench.scenario_names())} scenarios "
          f"({'quick' if args.quick else 'full'} sizing, "
          f"best of {args.rounds})...")
    doc = obench.run_scenarios(names=names, quick=args.quick,
                               rounds=args.rounds, progress=print)
    baseline_path = args.baseline or obench.find_baseline(
        exclude=args.out)
    rc = 0
    if baseline_path:
        base = obench.load_snapshot(baseline_path)
        try:
            rows = obench.compare(doc, base)
        except ValueError as exc:
            print(f"skipping comparison vs {baseline_path}: {exc}")
            rows = []
        if rows:
            print(f"\nvs {baseline_path}:")
            for r in rows:
                flag = "  REGRESSED" if r["regressed"] else ""
                print(f"  {r['scenario']:<16} {r['baseline_eps']:>12,.0f} "
                      f"-> {r['current_eps']:>12,.0f} ev/s "
                      f"(x{r['ratio']:.2f}){flag}")
            regressed = [r for r in rows if r["regressed"]]
            if regressed and not args.report_only:
                print(f"\n{len(regressed)} scenario(s) regressed more than "
                      f"{obench.REGRESSION_THRESHOLD:.0%}", file=sys.stderr)
                rc = 1
    else:
        print("\nno committed BENCH_*.json baseline; this snapshot seeds "
              "the trajectory")
    if args.out:
        obench.write_snapshot(args.out, doc)
        print(f"wrote {args.out}")
    return rc


def cmd_experiment(args) -> int:
    unknown = [e for e in args.ids if e not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(REGISTRY))}", file=sys.stderr)
        return 2
    if args.resume and not args.out:
        print("error: --resume requires --out DIR", file=sys.stderr)
        return 2
    if args.out:
        rc = (_experiment_pool_sweep(args) if args.workers > 0
              else _experiment_sweep(args))
    else:
        rc = 0
        for exp_id in args.ids:
            entry = REGISTRY[exp_id]
            t0 = time.time()
            result = entry.run_scaled(seed=args.seed, workers=args.workers)
            print(f"\n=== {exp_id}: {entry.title} "
                  f"({time.time() - t0:.1f}s) ===")
            print(entry.render(result))
    if args.explore_points:
        _emit_point_explorers(args)
    return rc


def _emit_point_explorers(args) -> None:
    """``--explore-points DIR``: per-point interactive explorers for
    every requested experiment that exposes ``emit_explorers``."""
    os.makedirs(args.explore_points, exist_ok=True)
    for exp_id in args.ids:
        module = REGISTRY[exp_id].module
        if not hasattr(module, "emit_explorers"):
            continue
        paths = module.emit_explorers(
            args.explore_points, module.Config.scaled(), seed=args.seed)
        print(f"{exp_id}: wrote {len(paths)} explorer page(s) to "
              f"{args.explore_points}")


def _experiment_sweep(args) -> int:
    """Crash-safe sweep: one atomic artifact + manifest per experiment,
    ``--resume`` skipping shards whose artifacts verify."""
    from repro.experiments.artifacts import ArtifactStore, run_sweep

    store = ArtifactStore(args.out)

    def produce(exp_id: str):
        entry = REGISTRY[exp_id]
        return lambda: entry.render(entry.run_scaled(seed=args.seed))

    outcomes = run_sweep(
        shards=[(exp_id, produce(exp_id)) for exp_id in args.ids],
        store=store,
        config_for=lambda exp_id: {"exp_id": exp_id, "seed": args.seed},
        resume=args.resume,
        watchdog_seconds=args.watchdog,
        progress=print,
    )
    bad = [o for o in outcomes if o.status in ("timeout", "failed")]
    done = sum(1 for o in outcomes if o.status == "done")
    skipped = sum(1 for o in outcomes if o.status == "skipped")
    print(f"\nsweep: {done} run, {skipped} resumed, {len(bad)} failed")
    for o in bad:
        print(f"  {o.exp_id}: {o.status} ({o.detail})", file=sys.stderr)
    return 1 if bad else 0


def _experiment_pool_sweep(args) -> int:
    """``--workers N`` sweep: cell-granular pool items for shardable
    experiments (e.g. every chaos grid cell), whole-experiment items
    otherwise, all under one :func:`repro.pool.run_pool` supervisor.
    The per-experiment merged artifacts carry the same manifest config
    as the serial sweep's, so ``--resume`` interoperates both ways and
    the merged bytes are worker-count-independent.
    """
    from repro.experiments.artifacts import ArtifactStore
    from repro.pool import PoolConfig, run_pool
    from repro.pool.tasks import experiment_item, shardable_items

    store = ArtifactStore(args.out)
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        _check_parent(args.metrics, "metrics")
        registry = MetricsRegistry()

    items = []
    configs = {}
    sharded = {}  # exp_id -> (module, scaled config, ordered item ids)
    n_resumed = 0
    for exp_id in args.ids:
        entry = REGISTRY[exp_id]
        exp_cfg = {"exp_id": exp_id, "seed": args.seed}
        if args.resume and store.verify(exp_id, exp_cfg):
            n_resumed += 1
            print(f"  [skip] {exp_id} (artifact verifies)")
            continue
        if entry.shardable:
            scaled = entry.module.Config.scaled()
            ids = []
            for item_id, payload in shardable_items(
                    exp_id, scaled, args.seed):
                items.append((item_id, payload))
                configs[item_id] = {"exp_id": exp_id, "shard": item_id,
                                    "seed": args.seed}
                ids.append(item_id)
            sharded[exp_id] = (entry.module, scaled, ids)
        else:
            items.append((exp_id, {"exp_id": exp_id, "seed": args.seed}))
            configs[exp_id] = exp_cfg

    report = None
    if items:
        report = run_pool(
            items,
            experiment_item,
            PoolConfig(workers=args.workers, max_retries=args.max_retries,
                       item_seconds=args.watchdog,
                       chaos_kill=args.chaos_kill),
            store=store,
            config_for=configs.__getitem__,
            resume=args.resume,
            quarantine_path=args.quarantine,
            metrics=registry,
            progress=print,
        )
        result_of = dict(zip((item_id for item_id, _ in items),
                             report.results))
        for exp_id, (module, scaled, ids) in sharded.items():
            texts = [result_of[i] for i in ids]
            if all(t is not None for t in texts):
                store.write(exp_id, module.render_shards(texts, scaled),
                            {"exp_id": exp_id, "seed": args.seed})

    if registry is not None:
        from repro.obs.export import write_metrics

        write_metrics(args.metrics, registry)
        print(f"wrote {len(registry)} instruments to {args.metrics}")
    if report is None:
        print(f"\npool sweep: nothing to do ({n_resumed} resumed)")
        return 0
    print(f"\npool sweep: {report.n_ok} ok, "
          f"{report.n_skipped + n_resumed} resumed, "
          f"{report.n_retried} retried, "
          f"{len(report.quarantined)} quarantined")
    if report.quarantined:
        for o in report.quarantined:
            print(f"  {o.item_id}: {o.errors[-1] if o.errors else '?'}",
                  file=sys.stderr)
        print(f"  quarantine report: {report.quarantine_path} "
              f"(replay with `repro pool replay`)", file=sys.stderr)
    return 1 if report.quarantined else 0


def cmd_pool(args) -> int:
    """``repro pool replay REPORT.json [--only ITEM]``: re-run
    quarantined items single-process, where a debugger can reach."""
    from repro.pool import replay_quarantine

    try:
        results = replay_quarantine(
            args.report, only=args.only,
            progress=lambda line: print(line, file=sys.stderr))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not results:
        print("no matching quarantined items", file=sys.stderr)
        return 2
    dirty = False
    for item_id, ok, detail in results:
        print(f"{item_id}: {'clean' if ok else detail}")
        dirty = dirty or not ok
    return 1 if dirty else 0


def cmd_check(args) -> int:
    """Differential validation: fluid vs discrete, scheduler vs oracle."""
    from repro.invariants.diff import run_check_battery

    reports = run_check_battery(quick=args.quick, seed=args.seed)
    for report in reports:
        print(report.render())
    failed = [r for r in reports if not r.ok]
    print(f"\n{len(reports) - len(failed)}/{len(reports)} comparisons clean")
    return 1 if failed else 0


def cmd_fuzz(args) -> int:
    """Seeded chaos fuzzing: campaign mode, or ``fuzz replay CASE``."""
    if getattr(args, "fuzz_command", None) == "replay":
        return _fuzz_replay(args)
    from repro.fuzz import run_campaign

    if args.out:
        # same parent check the file-writing subcommands get: the out
        # dir itself is created, but a missing grandparent fails fast
        _check_parent(os.path.normpath(args.out), "fuzz output")
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        _check_parent(args.metrics, "metrics")
        registry = MetricsRegistry()
    summary = run_campaign(
        budget=args.budget,
        seed=args.seed,
        out_dir=args.out,
        metrics=registry,
        case_seconds=args.watchdog,
        progress=lambda line: print(line, file=sys.stderr),
        workers=args.workers,
    )
    # stdout carries only the deterministic summary: two campaigns with
    # the same (budget, seed) on the same tree print identical bytes
    print(summary.render())
    if registry is not None:
        from repro.obs.export import write_metrics

        write_metrics(args.metrics, registry)
        print(f"wrote {len(registry)} instruments to {args.metrics}",
              file=sys.stderr)
    return 1 if summary.findings else 0


def _fuzz_replay(args) -> int:
    """Replay saved reproducers; exit 1 if any violation reproduces."""
    from repro.fuzz import ReproCase

    reproduced = False
    for path in args.cases:
        try:
            case = ReproCase.load(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violation = case.replay()
        expect = "expected" if case.expect_violation else "NOT expected"
        if violation is None:
            print(f"{path}: clean (violation was {expect})")
        else:
            reproduced = True
            print(f"{path}: {violation.render()} (violation was {expect})")
    return 1 if reproduced else 0


def cmd_validate(args) -> int:
    from repro.analysis.validate import render, run_battery

    results = run_battery(args.checks or None)
    print(render(results))
    return 0 if all(r.passed for r in results) else 1


def cmd_list(_args) -> int:
    rows = [(eid, e.title, e.module.__name__) for eid, e in REGISTRY.items()]
    print(format_table(["id", "title", "module"], rows,
                       title="available experiments"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scheduler on a workload")
    p_run.add_argument("--scheduler", choices=SCHEDULERS, default="sfs")
    _add_workload_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="replay one workload under many")
    p_cmp.add_argument("--schedulers", nargs="+", choices=SCHEDULERS,
                       default=["cfs", "sfs", "srtf"])
    _add_workload_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_tr = sub.add_parser("trace", help="run once with tracing and export")
    p_tr.add_argument("output", metavar="PATH",
                      help="trace artifact (.json = Chrome, .jsonl = lines)")
    p_tr.add_argument("--scheduler", choices=SCHEDULERS, default="sfs")
    p_tr.add_argument("--summary", action="store_true",
                      help="print per-kind event counts after writing")
    _add_workload_args(p_tr)
    p_tr.set_defaults(func=cmd_trace)

    p_rp = sub.add_parser(
        "replay",
        help="streaming long-horizon replay with checkpoint/resume")
    p_rp.add_argument("--requests", type=int, default=1_000_000,
                      help="stream length (requests)")
    p_rp.add_argument("--horizon", type=float, metavar="SEC",
                      help="stop admitting arrivals after this much "
                           "virtual time (in-flight work still drains)")
    p_rp.add_argument("--source", choices=("faasbench", "azure"),
                      default="faasbench")
    p_rp.add_argument("--scheduler", choices=("cfs", "fifo", "rr", "sfs"),
                      default="sfs")
    p_rp.add_argument("--engine", choices=("fluid", "discrete"),
                      default="fluid")
    p_rp.add_argument("--cores", type=int, default=12)
    p_rp.add_argument("--load", type=float, default=0.8)
    p_rp.add_argument("--iat", choices=("poisson", "uniform"),
                      default="poisson")
    p_rp.add_argument("--io-fraction", type=float, default=0.0)
    p_rp.add_argument("--seed", type=int, default=0)
    p_rp.add_argument("--checkpoint-every", type=float, default=60.0,
                      metavar="SEC", help="virtual-time checkpoint "
                      "interval (needs --checkpoint-dir or --mem-budget)")
    p_rp.add_argument("--checkpoint-dir", metavar="DIR",
                      help="directory for the in-run checkpoint")
    p_rp.add_argument("--resume", action="store_true",
                      help="restore from --checkpoint-dir and continue")
    p_rp.add_argument("--mem-budget", type=int, metavar="MIB",
                      help="abort (replayably) past this RSS budget")
    p_rp.add_argument("--output", metavar="PATH",
                      help="summary JSON destination (default: stdout)")
    p_rp.add_argument("--spill", metavar="PATH",
                      help="spill per-request records to this JSONL file")
    p_rp.add_argument("--stats", metavar="PATH",
                      help="write wall-clock/RSS run stats JSON here")
    p_rp.set_defaults(func=cmd_replay)

    p_rep = sub.add_parser("report", help="run with metrics and render "
                                          "the observability report")
    p_rep.add_argument("output", metavar="PATH",
                       help="report artifact (.html = self-contained page, "
                            ".jsonl = repro.metrics/1, .prom = Prometheus)")
    p_rep.add_argument("--scheduler", choices=SCHEDULERS, default="sfs")
    p_rep.add_argument("--profile", action="store_true",
                       help="also time the simulator itself (wall clock)")
    p_rep.add_argument("--explore", metavar="PATH",
                       help="also write the interactive run explorer "
                            "(one self-contained offline HTML)")
    p_rep.add_argument("--bundle", metavar="PATH",
                       help="also save the repro.explore/1 run bundle "
                            "(diff it later with `repro explore A B`)")
    _add_workload_args(p_rep)
    p_rep.set_defaults(func=cmd_report, metrics=None)

    p_ex = sub.add_parser(
        "explore",
        help="render saved run bundles as an interactive HTML explorer")
    p_ex.add_argument("bundles", nargs="+", metavar="BUNDLE",
                      help="bundle.json file or run directory; give two "
                           "for an aligned A/B diff (e.g. cfs vs sfs)")
    p_ex.add_argument("-o", "--output", metavar="PATH",
                      default="explore.html",
                      help="output HTML path (default: %(default)s)")
    p_ex.add_argument("--title", help="page title override")
    p_ex.set_defaults(func=cmd_explore)

    p_why = sub.add_parser(
        "why",
        help="per-request critical-path attribution and deschedule-"
             "reason flamegraphs")
    p_why.add_argument("bundle", nargs="?", metavar="RUN",
                       help="saved bundle.json / run directory with an "
                            "embedded why section; omit to run a fresh "
                            "workload (workload flags below)")
    p_why.add_argument("--request", type=int, metavar="ID",
                       help="drill into one request's causal timeline")
    p_why.add_argument("--top-blamed", type=int, default=10, metavar="N",
                       help="how many worst-blamed requests to show / "
                            "embed (default: %(default)s)")
    p_why.add_argument("-o", "--output", metavar="PATH",
                       help="write the repro.why/1 JSON document")
    p_why.add_argument("--flame", metavar="PATH",
                       help="write the blame flamegraph as self-"
                            "contained HTML")
    p_why.add_argument("--scheduler", choices=SCHEDULERS, default="sfs")
    _add_workload_args(p_why)
    p_why.set_defaults(func=cmd_why)

    p_bench = sub.add_parser("bench", help="headless perf snapshot "
                                           "(events/sec per scenario)")
    p_bench.add_argument("--out", metavar="PATH",
                         help="write the repro.bench/1 snapshot here")
    p_bench.add_argument("--baseline", metavar="PATH",
                         help="compare against this snapshot (default: "
                              "newest committed BENCH_*.json)")
    p_bench.add_argument("--scenarios", nargs="+", metavar="NAME",
                         help="subset of scenarios (default: all)")
    p_bench.add_argument("--quick", action="store_true",
                         help="smaller workloads (CI smoke)")
    p_bench.add_argument("--rounds", type=int, default=3,
                         help="timing rounds per scenario (best-of)")
    p_bench.add_argument("--report-only", action="store_true",
                         help="print regressions without failing")
    p_bench.set_defaults(func=cmd_bench)

    p_exp = sub.add_parser("experiment", help="run paper artifacts")
    p_exp.add_argument("ids", nargs="+")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--out", metavar="DIR",
                       help="write one atomic artifact + manifest per "
                            "experiment into DIR instead of printing")
    p_exp.add_argument("--resume", action="store_true",
                       help="skip experiments whose artifacts in --out DIR "
                            "verify against their manifests")
    p_exp.add_argument("--watchdog", type=float, metavar="SECONDS",
                       help="wall-clock budget per experiment (sweep mode)")
    p_exp.add_argument("--workers", type=int, default=0, metavar="N",
                       help="shard the sweep across N supervised pool "
                            "workers (0 = single-process)")
    p_exp.add_argument("--max-retries", type=int, default=2, metavar="N",
                       help="pool mode: retries per item before "
                            "quarantine (default: %(default)s)")
    p_exp.add_argument("--quarantine", metavar="PATH",
                       help="pool mode: quarantine report path "
                            "(default: OUT/quarantine.json)")
    p_exp.add_argument("--metrics", metavar="PATH",
                       help="pool mode: dump supervisor counters "
                            "(.jsonl/.prom)")
    p_exp.add_argument("--explore-points", metavar="DIR",
                       help="also write per-point interactive explorers "
                            "for experiments that support them (chaos)")
    p_exp.add_argument("--chaos-kill", metavar="ITEM", default=None,
                       help="test hook: SIGKILL the worker holding ITEM "
                            "on first dispatch (pool mode)")
    p_exp.set_defaults(func=cmd_experiment)

    p_chk = sub.add_parser(
        "check",
        help="differential validation (fluid vs discrete, vs IDEAL oracle)",
    )
    p_chk.add_argument("--quick", action="store_true",
                       help="small workloads (CI smoke)")
    p_chk.add_argument("--seed", type=int, default=21)
    p_chk.set_defaults(func=cmd_check)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="seeded chaos fuzzing with metamorphic oracles",
    )
    p_fuzz.add_argument("--budget", type=int, default=50,
                        help="cases to generate (ids are (seed, 0..N-1))")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed; any case replays from "
                             "(seed, index) alone")
    p_fuzz.add_argument("--out", metavar="DIR",
                        help="write shrunk reproducers (ReproCase JSON) here")
    p_fuzz.add_argument("--watchdog", type=float, default=60.0,
                        metavar="SECONDS",
                        help="wall-clock budget per case (0 disables)")
    p_fuzz.add_argument("--metrics", metavar="PATH",
                        help="dump campaign counters (.jsonl/.prom)")
    p_fuzz.add_argument("--workers", type=int, default=0, metavar="N",
                        help="shard cases across N supervised pool "
                             "workers (summary stays byte-identical)")
    p_fuzz.set_defaults(func=cmd_fuzz)
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command")
    p_replay = fuzz_sub.add_parser(
        "replay", help="replay saved reproducers (exit 1 if one fires)")
    p_replay.add_argument("cases", nargs="+", metavar="CASE.json")
    p_replay.set_defaults(func=cmd_fuzz)

    p_pool = sub.add_parser(
        "pool", help="inspect/replay repro.pool quarantine reports")
    pool_sub = p_pool.add_subparsers(dest="pool_command", required=True)
    p_preplay = pool_sub.add_parser(
        "replay",
        help="re-run quarantined items single-process (exit 1 if one "
             "still fails)")
    p_preplay.add_argument("report", metavar="REPORT.json")
    p_preplay.add_argument("--only", metavar="ITEM",
                           help="restrict the replay to one item id")
    p_preplay.set_defaults(func=cmd_pool)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=cmd_list)

    p_val = sub.add_parser("validate", help="run the self-validation battery")
    p_val.add_argument("checks", nargs="*",
                       help="subset of checks (default: all)")
    p_val.set_defaults(func=cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
