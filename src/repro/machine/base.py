"""Machine interface shared by the discrete and fluid engines.

The API deliberately mirrors what a *user-space* scheduler can actually
do on Linux, because SFS is a user-space scheduler:

* ``spawn``        — the FaaS server forks the function process;
* ``set_policy``   — ``schedtool`` / ``sched_setscheduler(2)``;
* ``poll_state``   — reading ``/proc/<pid>/stat`` (gopsutil);
* ``on_finish``    — ``waitpid``/SIGCHLD, which user space gets for free.

There is intentionally **no** ``on_block`` callback: the paper's whole
§V-D is about SFS having to *poll* for the running→sleeping transition,
so exposing it as a push event would erase the detection-latency effect
the reproduction must show (Fig 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sched.cfs import CfsParams
from repro.sched.rt import DEFAULT_RR_QUANTUM
from repro.sim.engine import Simulator
from repro.sim.task import SchedPolicy, Task, TaskState
from repro.trace import events as tev

FinishCallback = Callable[[Task], None]


@dataclass(frozen=True)
class MachineParams:
    """Host configuration.

    ``ctx_switch_cost`` is the CPU time (us) lost per context switch —
    the direct kernel cost plus cache/TLB pollution.  It defaults to 0
    (ideal hardware) so unit arithmetic stays exact; the experiment
    harness sets a calibrated value (see ``repro.experiments.common``),
    because this loss is precisely why heavily-slicing CFS falls behind
    rarely-switching FILTER at saturation (the paper's Fig 15/16 tail).
    """

    n_cores: int = 12
    cfs: CfsParams = field(default_factory=CfsParams)
    rr_quantum: int = DEFAULT_RR_QUANTUM
    ctx_switch_cost: int = 0
    #: relative CPU speed of this host (1.0 = nominal).  A straggler
    #: host (thermal throttling, noisy neighbour, degraded clock) runs
    #: at speed < 1: every CPU burst takes ``1/speed`` x as long in
    #: wall time.  Injected per host by :mod:`repro.faults`.
    speed: float = 1.0
    #: which fair class SCHED_NORMAL maps to: "cfs" (pre-6.6 Linux, the
    #: paper's testbed) or "eevdf" (6.6+) — discrete engine only.
    fair_class: str = "cfs"
    #: RT group bandwidth (sched_rt_runtime_us / sched_rt_period_us):
    #: a (runtime, period) pair in us, e.g. Linux's default
    #: ``(950_000, 1_000_000)`` guarantees CFS >= 5 % of each core.
    #: ``None`` (default) models the throttle disabled, matching the
    #: paper's deployments where FILTER may monopolise cores.  Discrete
    #: engine only.
    rt_bandwidth: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.rr_quantum <= 0:
            raise ValueError("rr_quantum must be positive")
        if self.ctx_switch_cost < 0:
            raise ValueError("ctx_switch_cost must be >= 0")
        if not (0.0 < self.speed <= 1.0):
            raise ValueError("speed must be in (0, 1] (1.0 = nominal)")
        if self.fair_class not in ("cfs", "eevdf"):
            raise ValueError(f"unknown fair_class {self.fair_class!r}")
        if self.rt_bandwidth is not None:
            runtime, period = self.rt_bandwidth
            if not (0 < runtime < period):
                raise ValueError("rt_bandwidth needs 0 < runtime < period")


class MachineBase:
    """Abstract c-core host running CFS + RT scheduling classes."""

    def __init__(self, sim: Simulator, params: Optional[MachineParams] = None):
        self.sim = sim
        self.params = params or MachineParams()
        self.n_cores = self.params.n_cores
        self._finish_callbacks: List[FinishCallback] = []
        # structured tracing: recorder and its enabled flag are cached at
        # construction (install the recorder on the Simulator first); the
        # plain-bool guard keeps disabled-mode sites to one attribute load
        self._trace = sim.trace
        self._trace_on = self._trace.enabled
        # runtime invariant checker: same caching contract as the trace
        # recorder (install on the Simulator before building the machine)
        self._inv = sim.invariants
        self._inv_on = self._inv.enabled
        # metric registry: same caching contract again (repro.obs)
        self._metrics = sim.metrics
        self._metrics_on = self._metrics.enabled
        # scheduler-decision audit stream: same caching contract
        # (repro.why.audit); engines name themselves as the actor on
        # machine-level decisions (preempt/slice/quantum/throttle/kill)
        self._audit = sim.audit
        self._audit_on = self._audit.enabled
        if self._metrics_on:
            self._m_spawned = self._metrics.counter(
                "repro_tasks_spawned_total", help="processes dispatched")
            self._m_finished = self._metrics.counter(
                "repro_tasks_finished_total", help="processes exited")
        # aggregate accounting
        self.busy_time: int = 0          # core-microseconds of CPU work done
        self.tasks_spawned: int = 0
        self.tasks_finished: int = 0

    # ------------------------------------------------------------------
    # public API (what user space can do)
    # ------------------------------------------------------------------
    def spawn(self, task: Task) -> None:
        """Dispatch a process to the OS at the current virtual time."""
        raise NotImplementedError

    def set_policy(self, task: Task, policy: SchedPolicy, rt_priority: int = 1) -> None:
        """``sched_setscheduler``: re-class a live task."""
        raise NotImplementedError

    def poll_state(self, task: Task) -> TaskState:
        """Read the kernel-visible process state (``/proc`` poll)."""
        return task.state

    def on_finish(self, callback: FinishCallback) -> None:
        """Register a process-exit observer (``waitpid`` semantics)."""
        self._finish_callbacks.append(callback)

    def kill(self, task: Task, reason: str = "crash") -> bool:
        """``SIGKILL``: forcibly terminate a live task.

        Used by the fault injector (sandbox crash, request timeout, host
        failure).  The task is charged for the CPU service it received,
        removed from every queue, marked ``killed`` with ``reason`` and
        reported through the normal ``on_finish`` path — user space
        (FaaS server, SFS) observes an ordinary process exit, exactly as
        ``waitpid`` would report a signalled child.  Returns False when
        the task had already finished (kill raced with completion).
        """
        raise NotImplementedError

    def _finish_killed(self, task: Task, reason: str) -> None:
        """Shared kill epilogue: mark the exit and notify user space."""
        task.killed = True
        task.kill_reason = reason
        task.state = TaskState.FINISHED
        task.finish_time = self.sim.now
        self._notify_finish(task)

    # ------------------------------------------------------------------
    # introspection used by tests and metrics
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of total core time spent running tasks so far."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time / (self.sim.now * self.n_cores)

    def idle_cores(self) -> int:
        raise NotImplementedError

    def runnable_count(self) -> int:
        """Tasks ready-but-not-running across all queues."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # structured tracing
    # ------------------------------------------------------------------
    def sample_gauges(self, trace, now: int) -> None:
        """Emit machine-state gauges (called by the periodic sampler).

        The base snapshot works for any machine exposing the
        introspection API; engines override to add per-queue depth.
        """
        trace.emit(now, tev.GAUGE_RUNNABLE, args=(self.runnable_count(),))
        trace.emit(now, tev.GAUGE_IDLE_CORES, args=(self.idle_cores(),))

    # ------------------------------------------------------------------
    def _notify_finish(self, task: Task) -> None:
        self.tasks_finished += 1
        if self._inv_on:
            self._inv.on_task_finish(task, self.sim.now)
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_FINISH, task.tid)
        if self._metrics_on:
            self._m_finished.inc()
        for cb in list(self._finish_callbacks):
            cb(task)
