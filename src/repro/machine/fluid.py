"""Processor-sharing (fluid) machine model.

At millisecond granularity, CFS with equal weights makes every runnable
task progress at the same *rate* ``r = min(1, free_cores / n_runnable)``
— that is exactly the fairness CFS's slicing converges to within one
``sched_latency`` period.  This engine integrates that fluid limit in
closed form:

* a single global service ``credit(t) = ∫ r dt`` advances for the whole
  CFS pool; a task that entered with ``R`` microseconds of CPU burst
  left finishes when ``credit`` reaches ``entry_credit + R``;
* RT (FIFO) tasks each occupy a whole core at rate 1, shrinking
  ``free_cores``; RR among equal priorities *is* processor sharing, so
  ``SCHED_RR`` tasks are folded into the same pool with the RR quantum
  as the slice;
* context switches cannot be observed directly in a fluid model, so we
  integrate the expected switch rate ``r / slice(t)`` with
  ``slice(t) = max(sched_latency / per_core_contention, min_granularity)``
  — the same rule the discrete engine executes literally.

Every event is O(log n); the engine is validated against
:class:`repro.machine.discrete.DiscreteMachine` by the test suite
(turnaround agreement within one scheduling latency per preemption).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Optional

from repro.machine.base import MachineBase, MachineParams
from repro.obs.profiler import perf_counter
from repro.sched.rt import RTRunqueue
from repro.sim.engine import EventHandle, Simulator
from repro.sim.task import BurstKind, SchedPolicy, Task, TaskState
from repro.trace import events as tev
from repro.why import audit as aud

_EPS = 1e-6


class FluidMachine(MachineBase):
    """Closed-form processor-sharing engine (fast, validated)."""

    def __init__(self, sim: Simulator, params: Optional[MachineParams] = None,
                 rr_as_sharing: bool = True):
        super().__init__(sim, params)
        #: treat SCHED_RR as sharing with quantum-sized slices (see module doc)
        self.rr_as_sharing = rr_as_sharing
        #: straggler speed factor; the == 1.0 guard keeps the nominal
        #: path on exact integer arithmetic (bit-identical runs)
        self._speed = self.params.speed
        # --- CFS/RR fluid pool ---
        self._pool: dict[int, Task] = {}           # tid -> task
        self._heap: list[tuple[float, int, Task]] = []  # (target credit, seq, task)
        self._seq = itertools.count()
        self._credit: float = 0.0                   # global service credit
        self._cs_credit: float = 0.0                # integrated switch rate
        self._last_update: int = 0
        self._busy_float: float = 0.0
        self._pool_event: Optional[EventHandle] = None
        # --- RT (FIFO) side ---
        self.rt_wait = RTRunqueue()
        self._rt_running: dict[int, Task] = {}      # tid -> task
        # --- tracing only: stable virtual core slots for RT tasks ---
        # (the fluid model has no real core assignment; slots give the
        # Chrome exporter per-core tracks for dedicated/FILTER tasks)
        self._rt_slots: dict[int, int] = {}         # tid -> slot
        self._free_slots: list[int] = list(range(self.n_cores))
        if self._metrics_on:
            from repro.obs.hooks import RunqueueObs

            self.rt_wait.obs = RunqueueObs(self._metrics, "rt")
            self._m_pool_enters = self._metrics.counter(
                "repro_pool_enters_total", help="tasks entering the CFS pool")
            self._m_rt_starts = self._metrics.counter(
                "repro_rt_starts_total", help="dedicated-core RT starts")
        if self._audit_on:
            self.rt_wait.audit = aud.RunqueueAudit(self._audit, sim, "rt")
        prof = self._metrics.profiler
        if prof is not None:
            # shadow the bound method so the nominal path stays untouched
            impl = self._advance

            def timed_advance() -> None:
                t0 = perf_counter()
                impl()
                prof.add("fluid.advance", perf_counter() - t0)

            self._advance = timed_advance  # type: ignore[method-assign]

    # ==================================================================
    # public API
    # ==================================================================
    def spawn(self, task: Task) -> None:
        if task.state is not TaskState.CREATED:
            raise RuntimeError(f"task {task.tid} already spawned")
        task.dispatch_time = self.sim.now
        self.tasks_spawned += 1
        if self._metrics_on:
            self._m_spawned.inc()
        first = task.current_burst
        assert first is not None
        if first.kind is BurstKind.IO:
            task.state = TaskState.BLOCKED
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_BLOCK, task.tid)
            task._io_handle = self.sim.schedule(  # type: ignore[attr-defined]
                first.duration, self._on_io_done, task, first.duration
            )
        else:
            self._enqueue_ready(task)

    def set_policy(self, task: Task, policy: SchedPolicy, rt_priority: int = 1) -> None:
        if task.state is TaskState.FINISHED:
            return
        rt_priority = rt_priority if policy is not SchedPolicy.CFS else 0
        if task.policy is policy and task.rt_priority == rt_priority:
            return
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_POLICY, task.tid,
                             args=(policy.name, rt_priority))
        was_dedicated = self._is_dedicated(task.policy)

        if task.state in (TaskState.BLOCKED, TaskState.CREATED):
            task.rt_priority = rt_priority
            task.record_policy_change(self.sim.now, policy)
            return

        if task.tid in self._pool:
            self._leave_pool(task, completing=False)
            if self._audit_on:
                self._audit.record(self.sim.now, aud.OP_RECLASS, "kernel",
                                   displaced=task.tid,
                                   reason=tev.DESCHED_RECLASS)
            task.state = TaskState.READY
            task._ready_since = self.sim.now  # type: ignore[attr-defined]
        elif task.tid in self._rt_running:
            self._stop_rt(task, involuntary=True, reason=tev.DESCHED_RECLASS)
            if self._audit_on:
                self._audit.record(self.sim.now, aud.OP_RECLASS, "kernel",
                                   displaced=task.tid,
                                   reason=tev.DESCHED_RECLASS)
            task.state = TaskState.READY
            task._ready_since = self.sim.now  # type: ignore[attr-defined]
        elif task.state is TaskState.READY:
            if was_dedicated:
                self.rt_wait.remove(task)
            # READY non-dedicated tasks are always in the pool, handled above
        task.rt_priority = rt_priority
        task.record_policy_change(self.sim.now, policy)
        self._enqueue_ready(task)
        self._dispatch_rt()

    def kill(self, task: Task, reason: str = "crash") -> bool:
        if task.state is TaskState.FINISHED:
            return False
        if self._audit_on:
            self._audit.record(self.sim.now, aud.OP_KILL, "faults",
                               displaced=task.tid, reason=reason,
                               arg=task.state.value)
        if task.tid in self._pool:
            self._leave_pool(task, completing=False)
        elif task.tid in self._rt_running:
            self._stop_rt(task, involuntary=False, reason=tev.DESCHED_KILL)
        elif task.state is TaskState.READY and self._is_dedicated(task.policy):
            self.rt_wait.remove(task)
        elif task.state is TaskState.BLOCKED:
            handle = getattr(task, "_io_handle", None)
            if handle is not None:
                handle.cancel()
                task._io_handle = None  # type: ignore[attr-defined]
        self._finish_killed(task, reason)
        self._dispatch_rt()  # a freed core may admit waiting RT work
        return True

    def idle_cores(self) -> int:
        free = self.n_cores - len(self._rt_running)
        return max(0, free - len(self._pool))

    def runnable_count(self) -> int:
        free = max(0, self.n_cores - len(self._rt_running))
        queued_pool = max(0, len(self._pool) - free)
        return len(self.rt_wait) + queued_pool

    def sample_gauges(self, trace, now: int) -> None:
        super().sample_gauges(trace, now)
        trace.emit(now, tev.GAUGE_POOL, args=(len(self._pool),))
        trace.emit(now, tev.GAUGE_RT_RUNNING, args=(len(self._rt_running),))
        trace.emit(now, tev.GAUGE_RT_QUEUE, args=(len(self.rt_wait),))

    # ==================================================================
    # pool (CFS + RR-as-sharing) mechanics
    # ==================================================================
    def _is_dedicated(self, policy: SchedPolicy) -> bool:
        """Does this policy get a dedicated core (rate 1)?"""
        if policy is SchedPolicy.FIFO:
            return True
        if policy is SchedPolicy.RR and not self.rr_as_sharing:
            return True
        return False

    def _free_cores(self) -> int:
        return max(0, self.n_cores - len(self._rt_running))

    def _rate(self) -> float:
        n = len(self._pool)
        if n == 0:
            return 0.0
        raw = min(1.0, self._free_cores() / n) * self._speed
        cost = self.params.ctx_switch_cost
        if cost > 0 and raw > 0:
            # each slice of useful work pays one switch: the pool's
            # effective rate shrinks by slice/(slice + cost)
            sr = self._slice_rate()  # expected switches per us of service
            raw /= 1.0 + cost * sr
        return raw

    def _slice_rate(self) -> float:
        """Expected context switches per microsecond of *service*."""
        n = len(self._pool)
        free = self._free_cores()
        if n == 0 or free <= 0:
            return 0.0
        contention = n / free
        if contention <= 1.0:
            return 0.0  # a core each: no involuntary switching
        quantum = (
            self.params.rr_quantum
            if self.rr_as_sharing and any(t.policy is SchedPolicy.RR for t in self._pool.values())
            else None
        )
        if quantum is None:
            cfs = self.params.cfs
            quantum = max(cfs.sched_latency / contention, cfs.min_granularity)
        return 1.0 / quantum

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt <= 0:
            return
        r = self._rate()
        self._credit += r * dt
        self._cs_credit += r * dt * self._slice_rate()
        pool_usage = min(len(self._pool), self._free_cores())
        self._busy_float += dt * (pool_usage + len(self._rt_running))
        self.busy_time = int(self._busy_float)
        self._last_update = now

    def _enqueue_ready(self, task: Task) -> None:
        if not hasattr(task, "_ready_since") or task.state is not TaskState.READY:
            task.state = TaskState.READY
            task._ready_since = self.sim.now  # type: ignore[attr-defined]
        if self._is_dedicated(task.policy):
            self.rt_wait.enqueue(task)
            self._dispatch_rt()
        else:
            self._enter_pool(task)

    def _enter_pool(self, task: Task) -> None:
        self._advance()
        burst = task.current_burst
        assert burst is not None and burst.kind is BurstKind.CPU
        target = self._credit + task.burst_remaining
        task._pool_target = target           # type: ignore[attr-defined]
        task._pool_enter_credit = self._credit  # type: ignore[attr-defined]
        task._pool_enter_time = self.sim.now    # type: ignore[attr-defined]
        task._pool_cs_enter = self._cs_credit   # type: ignore[attr-defined]
        if task.first_run_time is None:
            task.first_run_time = self.sim.now
        # In the fluid limit the task is immediately time-sharing the CPU.
        task.wait_time += self.sim.now - getattr(task, "_ready_since", self.sim.now)
        task.state = TaskState.RUNNING
        self._pool[task.tid] = task
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_RUN, task.tid)
        if self._metrics_on:
            self._m_pool_enters.inc()
        if self._audit_on:
            self._audit.record(self.sim.now, aud.OP_PICK, "pool",
                               chosen=task.tid, arg=len(self._pool))
        heapq.heappush(self._heap, (target, next(self._seq), task))
        self._reschedule_pool_event()

    def _leave_pool(self, task: Task, completing: bool) -> int:
        """Remove from the pool, charging service received.  Returns it."""
        self._advance()
        assert task.tid in self._pool
        del self._pool[task.tid]
        if self._trace_on:
            reason = tev.DESCHED_BURST_END if completing else tev.DESCHED_RECLASS
            self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                             args=(reason,))
        served_float = self._credit - task._pool_enter_credit  # type: ignore[attr-defined]
        if completing:
            served = task.burst_remaining
        else:
            served = int(round(served_float))
            served = max(0, min(served, task.burst_remaining - 1))
        task.consume_cpu(served)
        if self._inv_on:
            self._inv.on_charge(task)
        elapsed = self.sim.now - task._pool_enter_time  # type: ignore[attr-defined]
        task.wait_time += max(0, elapsed - served)
        # fold the integrated switch-rate estimate into whole switches
        cs = getattr(task, "_cs_float", 0.0)
        cs += (self._cs_credit - task._pool_cs_enter)  # type: ignore[attr-defined]
        whole = int(cs)
        task.ctx_involuntary += whole
        task._cs_float = cs - whole  # type: ignore[attr-defined]
        self._reschedule_pool_event()
        return served

    def _reschedule_pool_event(self) -> None:
        if self._pool_event is not None:
            self._pool_event.cancel()
            self._pool_event = None
        # drop dead heap heads
        while self._heap and self._heap[0][2].tid not in self._pool:
            heapq.heappop(self._heap)
        while self._heap and self._heap[0][2]._pool_target != self._heap[0][0]:  # type: ignore[attr-defined]
            heapq.heappop(self._heap)
        if not self._heap:
            return
        r = self._rate()
        if r <= 0.0:
            return  # pool frozen: all cores held by FIFO tasks
        target = self._heap[0][0]
        dt = (target - self._credit) / r
        delay = max(0, int(math.ceil(dt - _EPS)))
        self._pool_event = self.sim.schedule(delay, self._on_pool_completion)

    def _on_pool_completion(self) -> None:
        self._pool_event = None
        self._advance()
        finished: list[Task] = []
        while self._heap and self._heap[0][0] <= self._credit + _EPS:
            _target, _seq, task = heapq.heappop(self._heap)
            if task.tid not in self._pool or task._pool_target != _target:  # type: ignore[attr-defined]
                continue  # stale entry
            del self._pool[task.tid]
            finished.append(task)
        tr = self._trace
        tr_on = self._trace_on
        for task in finished:
            if tr_on:
                tr.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                        args=(tev.DESCHED_BURST_END,))
            served = task.burst_remaining
            task.consume_cpu(served)
            if self._inv_on:
                self._inv.on_charge(task)
            elapsed = self.sim.now - task._pool_enter_time  # type: ignore[attr-defined]
            task.wait_time += max(0, elapsed - served)
            cs = getattr(task, "_cs_float", 0.0)
            cs += self._cs_credit - task._pool_cs_enter  # type: ignore[attr-defined]
            whole = int(cs)
            task.ctx_involuntary += whole
            task._cs_float = cs - whole  # type: ignore[attr-defined]
            self._complete_cpu_burst(task)
        if self._inv_on:
            self._inv.on_fluid_pool(self)
        self._reschedule_pool_event()

    # ==================================================================
    # RT (dedicated-core) mechanics
    # ==================================================================
    def _dispatch_rt(self) -> None:
        if self._inv_on:
            self._inv.on_runqueue(self.rt_wait)
        while True:
            nxt = self.rt_wait.peek()
            if nxt is None:
                return
            if len(self._rt_running) < self.n_cores:
                task = self.rt_wait.pop()
                self._start_rt(task)
                continue
            # all cores dedicated: preempt a strictly lower-priority one
            victim = None
            for t in self._rt_running.values():
                if t.rt_priority < nxt.rt_priority and (
                    victim is None or t.rt_priority < victim.rt_priority
                ):
                    victim = t
            if victim is None:
                return
            self._stop_rt(victim, involuntary=True)
            if self._audit_on:
                self._audit.record(self.sim.now, aud.OP_PREEMPT, "rt",
                                   chosen=nxt.tid, displaced=victim.tid,
                                   reason=tev.DESCHED_PREEMPT,
                                   arg=nxt.rt_priority)
            victim.state = TaskState.READY
            victim._ready_since = self.sim.now  # type: ignore[attr-defined]
            self.rt_wait.enqueue(victim)

    def _start_rt(self, task: Task) -> None:
        self._advance()
        burst = task.current_burst
        assert burst is not None and burst.kind is BurstKind.CPU
        task.wait_time += self.sim.now - getattr(task, "_ready_since", self.sim.now)
        if task.first_run_time is None:
            task.first_run_time = self.sim.now
        task.state = TaskState.RUNNING
        task._rt_start = self.sim.now  # type: ignore[attr-defined]
        wall = task.burst_remaining
        if self._speed != 1.0:  # straggler: the core serves CPU us slower
            wall = int(math.ceil(wall / self._speed))
        task._rt_end_handle = self.sim.schedule(  # type: ignore[attr-defined]
            wall, self._on_rt_completion, task
        )
        self._rt_running[task.tid] = task
        if self._metrics_on:
            self._m_rt_starts.inc()
        if self._trace_on:
            slot = heapq.heappop(self._free_slots) if self._free_slots else -1
            if slot >= 0:
                self._rt_slots[task.tid] = slot
            self._trace.emit(self.sim.now, tev.TASK_RUN, task.tid, slot)
        self._reschedule_pool_event()

    def _stop_rt(self, task: Task, involuntary: bool,
                 reason: str = tev.DESCHED_PREEMPT) -> None:
        """Take a dedicated-core task off CPU, charging service so far."""
        self._advance()
        handle = getattr(task, "_rt_end_handle", None)
        if handle is not None:
            handle.cancel()
            task._rt_end_handle = None  # type: ignore[attr-defined]
        served = self.sim.now - task._rt_start  # type: ignore[attr-defined]
        if self._speed != 1.0:
            served = int(served * self._speed)
        served = min(served, task.burst_remaining)
        task.consume_cpu(served)
        if self._inv_on:
            self._inv.on_charge(task)
        del self._rt_running[task.tid]
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                             self._release_slot(task.tid), args=(reason,))
        if involuntary:
            task.ctx_involuntary += 1
        self._reschedule_pool_event()

    def _on_rt_completion(self, task: Task) -> None:
        self._advance()
        task._rt_end_handle = None  # type: ignore[attr-defined]
        task.consume_cpu(task.burst_remaining)
        if self._inv_on:
            self._inv.on_charge(task)
        del self._rt_running[task.tid]
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                             self._release_slot(task.tid),
                             args=(tev.DESCHED_BURST_END,))
        self._complete_cpu_burst(task)
        self._dispatch_rt()
        self._reschedule_pool_event()

    def _release_slot(self, tid: int) -> int:
        """Return the task's virtual core slot to the free list (tracing)."""
        slot = self._rt_slots.pop(tid, -1)
        if slot >= 0:
            heapq.heappush(self._free_slots, slot)
        return slot

    # ==================================================================
    # burst lifecycle (shared)
    # ==================================================================
    def _complete_cpu_burst(self, task: Task) -> None:
        nxt = task.advance_burst()
        if nxt is None:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            self._notify_finish(task)
        elif nxt.kind is BurstKind.IO:
            task.state = TaskState.BLOCKED
            task.ctx_voluntary += 1
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_BLOCK, task.tid)
            task._io_handle = self.sim.schedule(  # type: ignore[attr-defined]
                nxt.duration, self._on_io_done, task, nxt.duration
            )
        else:  # consecutive CPU burst: continue under the current policy
            task.state = TaskState.READY
            task._ready_since = self.sim.now  # type: ignore[attr-defined]
            self._enqueue_ready(task)

    def _on_io_done(self, task: Task, duration: int) -> None:
        task._io_handle = None  # type: ignore[attr-defined]
        nxt = task.complete_io()
        if nxt is None:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            self._notify_finish(task)
            return
        assert nxt.kind is BurstKind.CPU, "consecutive I/O bursts must be merged"
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_WAKE, task.tid)
        task.state = TaskState.READY
        task._ready_since = self.sim.now  # type: ignore[attr-defined]
        self._enqueue_ready(task)
        if self._is_dedicated(task.policy):
            self._dispatch_rt()
