"""Faithful per-slice machine model.

Each core runs at most one task; CFS tasks live on per-core red-black
runqueues and are preempted on slice expiry; RT (FIFO/RR) tasks live on
a global RT runqueue and preempt CFS unconditionally.  Every context
switch, migration, block and wake is an explicit simulator event, so
this engine reproduces the paper's CFS pathology (short tasks waiting
out whole scheduling cycles) mechanism-by-mechanism.

This is the *reference* engine: exact but O(events) with an event per
slice.  The fluid engine (:mod:`repro.machine.fluid`) is validated
against it and used for the large experiments.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.machine.base import MachineBase, MachineParams
from repro.obs.profiler import perf_counter
from repro.sched.cfs import CfsRunqueue
from repro.sched.rt import RTRunqueue
from repro.sim.engine import EventHandle, Simulator
from repro.sim.task import Burst, BurstKind, SchedPolicy, Task, TaskState
from repro.trace import events as tev
from repro.why import audit as aud


class _Core:
    __slots__ = (
        "index",
        "rq",
        "task",
        "run_start",
        "slice_handle",
        "completion_handle",
        "throttle_handle",
        "last_tid",
        "rt_usage",
        "rt_period",
    )

    def __init__(self, index: int, rq: CfsRunqueue):
        self.index = index
        self.rq = rq
        self.task: Optional[Task] = None
        self.run_start: int = 0
        self.slice_handle: Optional[EventHandle] = None
        self.completion_handle: Optional[EventHandle] = None
        self.throttle_handle: Optional[EventHandle] = None
        self.last_tid: Optional[int] = None
        # RT group bandwidth accounting (sched_rt_runtime_us)
        self.rt_usage: int = 0
        self.rt_period: int = -1

    def cancel_timers(self) -> None:
        if self.slice_handle is not None:
            self.slice_handle.cancel()
            self.slice_handle = None
        if self.completion_handle is not None:
            self.completion_handle.cancel()
            self.completion_handle = None
        if self.throttle_handle is not None:
            self.throttle_handle.cancel()
            self.throttle_handle = None


class DiscreteMachine(MachineBase):
    """Event-per-slice multi-core machine (the reference engine)."""

    def __init__(self, sim: Simulator, params: Optional[MachineParams] = None):
        super().__init__(sim, params)
        if self.params.fair_class == "eevdf":
            from repro.sched.eevdf import EevdfRunqueue

            make_rq = EevdfRunqueue
        else:
            make_rq = lambda: CfsRunqueue(self.params.cfs)  # noqa: E731
        self.cores: List[_Core] = [
            _Core(i, make_rq()) for i in range(self.n_cores)
        ]
        self.rt_rq = RTRunqueue()
        #: straggler speed factor; the == 1.0 guard keeps the nominal
        #: path on exact integer arithmetic (bit-identical runs)
        self._speed = self.params.speed
        if self._metrics_on:
            from repro.obs.hooks import RunqueueObs

            fair_obs = RunqueueObs(self._metrics, self.params.fair_class)
            for core in self.cores:
                core.rq.obs = fair_obs
            self.rt_rq.obs = RunqueueObs(self._metrics, "rt")
            self._m_slice_expiries = self._metrics.counter(
                "repro_slice_expiries_total",
                help="fair-class slice expiries that descheduled a task")
            self._m_preemptions = self._metrics.counter(
                "repro_preemptions_total",
                help="involuntary off-CPU moves by a higher-claim task")
            self._m_migrations = self._metrics.counter(
                "repro_migrations_total", help="cross-core task resumes")
            self._m_steals = self._metrics.counter(
                "repro_steals_total", help="idle-balance pulls")
        if self._audit_on:
            fc = self.params.fair_class
            for core in self.cores:
                core.rq.audit = aud.RunqueueAudit(
                    self._audit, sim, f"{fc}:{core.index}")
            self.rt_rq.audit = aud.RunqueueAudit(self._audit, sim, "rt")
        prof = self._metrics.profiler
        if prof is not None:
            # shadow the bound method so the nominal path stays untouched
            impl = self._pick_next

            def timed_pick(core: _Core) -> None:
                t0 = perf_counter()
                impl(core)
                prof.add("discrete.pick_next", perf_counter() - t0)

            self._pick_next = timed_pick  # type: ignore[method-assign]

    # ==================================================================
    # public API
    # ==================================================================
    def spawn(self, task: Task) -> None:
        if task.state is not TaskState.CREATED:
            raise RuntimeError(f"task {task.tid} already spawned")
        task.dispatch_time = self.sim.now
        self.tasks_spawned += 1
        if self._metrics_on:
            self._m_spawned.inc()
        task._last_run_core = None  # type: ignore[attr-defined]
        first = task.current_burst
        assert first is not None
        if first.kind is BurstKind.IO:
            task.state = TaskState.BLOCKED
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_BLOCK, task.tid)
            task._io_handle = self.sim.schedule(  # type: ignore[attr-defined]
                first.duration, self._on_io_done, task, first.duration
            )
        else:
            self._make_ready(task)
            self._enqueue_ready(task, wakeup=False)

    def set_policy(self, task: Task, policy: SchedPolicy, rt_priority: int = 1) -> None:
        if task.state is TaskState.FINISHED:
            return
        rt_priority = rt_priority if policy is not SchedPolicy.CFS else 0
        if task.policy is policy and task.rt_priority == rt_priority:
            return
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_POLICY, task.tid,
                             args=(policy.name, rt_priority))
        old_policy = task.policy
        state = task.state

        if state is TaskState.RUNNING:
            core = self.cores[task._run_core]  # type: ignore[attr-defined]
            assert core.task is task
            self._charge(core)
            task.rt_priority = rt_priority
            task.record_policy_change(self.sim.now, policy)
            if policy is SchedPolicy.CFS and old_policy is not SchedPolicy.CFS:
                if task.burst_remaining == 0:
                    # the demotion raced with the burst's exact end
                    self._complete_burst(core, task)
                    return
                self._demote_running(core, task)
            else:
                # CFS->RT promotion (or FIFO<->RR): keep running, fix timers
                if core.slice_handle is not None:
                    core.slice_handle.cancel()
                    core.slice_handle = None
                if policy is SchedPolicy.RR:
                    core.slice_handle = self.sim.schedule(
                        self.params.rr_quantum, self._on_quantum, core, task
                    )
        elif state is TaskState.READY:
            # move between runqueues
            if old_policy is SchedPolicy.CFS:
                rq = self.cores[task._rq_core].rq  # type: ignore[attr-defined]
                rq.dequeue(task)
            else:
                self.rt_rq.remove(task)
            task.rt_priority = rt_priority
            task.record_policy_change(self.sim.now, policy)
            self._enqueue_ready(task, wakeup=False)
        else:  # CREATED / BLOCKED: takes effect at wake
            task.rt_priority = rt_priority
            task.record_policy_change(self.sim.now, policy)

    def kill(self, task: Task, reason: str = "crash") -> bool:
        if task.state is TaskState.FINISHED:
            return False
        if self._audit_on:
            self._audit.record(self.sim.now, aud.OP_KILL, "faults",
                               displaced=task.tid, reason=reason,
                               arg=task.state.value)
        if task.state is TaskState.RUNNING:
            core = self.cores[task._run_core]  # type: ignore[attr-defined]
            assert core.task is task
            self._charge(core)
            core.cancel_timers()
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                                 core.index, (tev.DESCHED_KILL,))
            core.task = None
            # schedule the core before notifying user space (see
            # _complete_burst): the finish callback may re-enter
            self._pick_next(core)
            self._finish_killed(task, reason)
            return True
        if task.state is TaskState.READY:
            if task.is_rt:
                self.rt_rq.remove(task)
            else:
                self.cores[task._rq_core].rq.dequeue(task)  # type: ignore[attr-defined]
        elif task.state is TaskState.BLOCKED:
            handle = getattr(task, "_io_handle", None)
            if handle is not None:
                handle.cancel()
                task._io_handle = None  # type: ignore[attr-defined]
        self._finish_killed(task, reason)
        return True

    def idle_cores(self) -> int:
        return sum(1 for c in self.cores if c.task is None)

    def runnable_count(self) -> int:
        return sum(len(c.rq) for c in self.cores) + len(self.rt_rq)

    def sample_gauges(self, trace, now: int) -> None:
        super().sample_gauges(trace, now)
        for core in self.cores:
            trace.emit(now, tev.GAUGE_RUNQUEUE, core=core.index,
                       args=(len(core.rq),))
        trace.emit(now, tev.GAUGE_RT_QUEUE, args=(len(self.rt_rq),))

    # ==================================================================
    # internals
    # ==================================================================
    def _make_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        task._ready_since = self.sim.now  # type: ignore[attr-defined]

    def _enqueue_ready(self, task: Task, wakeup: bool) -> None:
        if task.is_rt:
            self.rt_rq.enqueue(task)
            self._dispatch_rt()
        else:
            self._enqueue_cfs(task, wakeup)

    def _enqueue_cfs(self, task: Task, wakeup: bool) -> None:
        core = self._least_loaded_core()
        task._rq_core = core.index  # type: ignore[attr-defined]
        core.rq.enqueue(task, wakeup=wakeup)
        if core.task is None:
            self._pick_next(core)
        elif (
            wakeup
            and core.task.policy is SchedPolicy.CFS
            and core.rq.should_preempt(task, core.task)
        ):
            victim = core.task
            self._charge(core)
            if victim.burst_remaining == 0:
                self._complete_burst(core, victim)
                return
            core.cancel_timers()
            victim.ctx_involuntary += 1
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE,
                                 victim.tid, core.index,
                                 (tev.DESCHED_PREEMPT,))
            if self._metrics_on:
                self._m_preemptions.inc()
            if self._audit_on:
                self._audit.record(
                    self.sim.now, aud.OP_PREEMPT,
                    f"{self.params.fair_class}:{core.index}",
                    chosen=task.tid, displaced=victim.tid,
                    reason=tev.DESCHED_PREEMPT)
            self._make_ready(victim)
            core.task = None
            victim._rq_core = core.index  # type: ignore[attr-defined]
            core.rq.enqueue(victim, wakeup=False)
            self._pick_next(core)

    def _least_loaded_core(self) -> _Core:
        best = self.cores[0]
        best_load = self._core_load(best)
        for core in self.cores[1:]:
            load = self._core_load(core)
            if load < best_load:
                best, best_load = core, load
        return best

    @staticmethod
    def _core_load(core: _Core) -> int:
        return len(core.rq) + (1 if core.task is not None else 0)

    def _rt_budget(self, core: _Core) -> Optional[int]:
        """Remaining RT runtime in this core's current bandwidth period
        (None = throttling disabled)."""
        bw = self.params.rt_bandwidth
        if bw is None:
            return None
        runtime, period = bw
        idx = self.sim.now // period
        if core.rt_period != idx:
            core.rt_period = idx
            core.rt_usage = 0
        return runtime - core.rt_usage

    def _rt_allowed(self, core: _Core) -> bool:
        budget = self._rt_budget(core)
        return budget is None or budget > 0

    def _dispatch_rt(self) -> None:
        while True:
            nxt = self.rt_rq.peek()
            if nxt is None:
                return
            core = self._find_rt_target(nxt.rt_priority)
            if core is None:
                return
            victim = core.task
            if victim is not None:
                self._charge(core)
                if victim.burst_remaining == 0:
                    # preemption raced with the exact end of the burst:
                    # complete it; _pick_next will take the RT task
                    self._complete_burst(core, victim)
                    continue
            task = self.rt_rq.pop()
            assert task is nxt
            if victim is not None:
                core.cancel_timers()
                victim.ctx_involuntary += 1
                if self._trace_on:
                    self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE,
                                     victim.tid, core.index,
                                     (tev.DESCHED_PREEMPT,))
                if self._metrics_on:
                    self._m_preemptions.inc()
                if self._audit_on:
                    self._audit.record(
                        self.sim.now, aud.OP_PREEMPT, "rt",
                        chosen=task.tid, displaced=victim.tid,
                        reason=tev.DESCHED_PREEMPT,
                        arg=task.rt_priority)
                self._make_ready(victim)
                core.task = None
            # Start the RT task *before* re-enqueuing the victim:
            # otherwise the victim's placement can pick this very core
            # (momentarily idle) and be silently overwritten.
            self._start(core, task)
            if victim is not None:
                if victim.is_rt:
                    self.rt_rq.enqueue(victim)
                else:
                    self._enqueue_cfs(victim, wakeup=False)

    def _find_rt_target(self, priority: int) -> Optional[_Core]:
        """Idle core, else a CFS-running core, else a lower-prio RT core."""
        cfs_victim = None
        rt_victim = None
        for core in self.cores:
            if not self._rt_allowed(core):
                continue  # RT-throttled this period (sched_rt_runtime_us)
            if core.task is None:
                return core
            if core.task.policy is SchedPolicy.CFS:
                if cfs_victim is None:
                    cfs_victim = core
            elif core.task.rt_priority < priority and rt_victim is None:
                rt_victim = core
        return cfs_victim if cfs_victim is not None else rt_victim

    def _pick_next(self, core: _Core) -> None:
        assert core.task is None
        if self._inv_on:
            self._inv.on_runqueue(core.rq)
            self._inv.on_runqueue(self.rt_rq)
        task = None
        if self.rt_rq and self._rt_allowed(core):
            task = self.rt_rq.pop()
        if task is None:
            task = core.rq.pick_next()
        if task is None:
            task = self._steal_for(core)
        if task is not None:
            self._start(core, task)

    def _steal_for(self, core: _Core) -> Optional[Task]:
        """Idle balancing: pull the leftmost task of the busiest runqueue."""
        busiest = None
        busiest_len = 0
        for other in self.cores:
            if other is core:
                continue
            if len(other.rq) > busiest_len:
                busiest, busiest_len = other, len(other.rq)
        if busiest is None:
            return None
        task = busiest.rq.pick_next()
        assert task is not None
        if self._metrics_on:
            self._m_steals.inc()
        return task

    def _start(self, core: _Core, task: Task) -> None:
        now = self.sim.now
        assert core.task is None, f"core {core.index} already running {core.task}"
        assert core.slice_handle is None or core.slice_handle.cancelled
        assert core.completion_handle is None or core.completion_handle.cancelled
        burst = task.current_burst
        assert burst is not None and burst.kind is BurstKind.CPU, (
            f"task {task.tid} started while not in a CPU burst"
        )
        ready_since = getattr(task, "_ready_since", now)
        task.wait_time += now - ready_since
        if task.first_run_time is None:
            task.first_run_time = now
        last = getattr(task, "_last_run_core", None)
        migrated = last is not None and last != core.index
        if migrated:
            task.migrations += 1
            if self._metrics_on:
                self._m_migrations.inc()
        if self._trace_on:
            tr = self._trace
            if migrated:
                tr.emit(now, tev.TASK_MIGRATE, task.tid, core.index, (last,))
            tr.emit(now, tev.TASK_RUN, task.tid, core.index)
        task._last_run_core = core.index  # type: ignore[attr-defined]
        task._run_core = core.index  # type: ignore[attr-defined]
        task.state = TaskState.RUNNING
        core.task = task
        # context-switch cost: the core spends `cost` us switching (kernel
        # path + cache refill) before the task makes progress
        cost = 0
        if core.last_tid is not None and core.last_tid != task.tid:
            cost = self.params.ctx_switch_cost
        core.last_tid = task.tid
        core.run_start = now + cost
        core.completion_handle = self.sim.schedule(
            cost + self._wall(task.burst_remaining), self._on_completion, core, task
        )
        if task.policy is SchedPolicy.CFS:
            core.slice_handle = self.sim.schedule(
                cost + core.rq.timeslice_for(task), self._on_slice_expiry, core, task
            )
        elif task.policy is SchedPolicy.RR:
            core.slice_handle = self.sim.schedule(
                cost + self.params.rr_quantum, self._on_quantum, core, task
            )
        else:  # FIFO: runs until it blocks, finishes, or is re-classed
            core.slice_handle = None
        if task.is_rt:
            budget = self._rt_budget(core)
            if budget is not None:
                core.throttle_handle = self.sim.schedule(
                    cost + budget, self._on_rt_throttle, core, task
                )

    def _wall(self, service: int) -> int:
        """Wall-clock microseconds a straggler core needs for ``service``
        CPU microseconds (identity at nominal speed)."""
        if self._speed == 1.0:
            return service
        return int(math.ceil(service / self._speed))

    def _charge(self, core: _Core) -> None:
        task = core.task
        assert task is not None
        # run_start may sit in the future while the switch cost is paid
        elapsed = max(0, self.sim.now - core.run_start)
        if elapsed > 0:
            if self._speed == 1.0:
                served = elapsed
            else:
                # A straggler converts wall time to service at rate
                # `speed`; the fractional residue is carried per task so
                # repeated charges never under-account and the burst is
                # exactly exhausted at its completion event.
                credit = elapsed * self._speed + getattr(task, "_svc_residue", 0.0)
                served = min(int(credit), task.burst_remaining)
                task._svc_residue = credit - served  # type: ignore[attr-defined]
            task.consume_cpu(served)
            if self._inv_on:
                self._inv.on_charge(task)
            self.busy_time += elapsed  # the core was occupied for the wall time
            if task.policy is SchedPolicy.CFS:
                core.rq.update_curr(task.vruntime)
            elif self.params.rt_bandwidth is not None:
                self._rt_budget(core)  # roll the period if needed
                core.rt_usage += elapsed
        # keep a future run_start (unfinished switch window) intact
        core.run_start = max(core.run_start, self.sim.now)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_slice_expiry(self, core: _Core, task: Task) -> None:
        assert core.task is task
        core.slice_handle = None
        self._charge(core)
        if task.burst_remaining == 0:
            # burst ended exactly at the slice boundary
            self._complete_burst(core, task)
            return
        if len(core.rq) > 0 or self.rt_rq:
            task.ctx_involuntary += 1
            if core.completion_handle is not None:
                core.completion_handle.cancel()
                core.completion_handle = None
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE,
                                 task.tid, core.index, (tev.DESCHED_SLICE,))
            if self._metrics_on:
                self._m_slice_expiries.inc()
            if self._audit_on:
                self._audit.record(
                    self.sim.now, aud.OP_SLICE,
                    f"{self.params.fair_class}:{core.index}",
                    displaced=task.tid, reason=tev.DESCHED_SLICE,
                    arg=len(core.rq))
            self._make_ready(task)
            core.task = None
            task._rq_core = core.index  # type: ignore[attr-defined]
            core.rq.enqueue(task, wakeup=False)
            self._pick_next(core)
        else:
            core.slice_handle = self.sim.schedule(
                core.rq.timeslice_for(task), self._on_slice_expiry, core, task
            )

    def _on_quantum(self, core: _Core, task: Task) -> None:
        """SCHED_RR quantum expiry: rotate among equal-priority RT tasks."""
        assert core.task is task
        core.slice_handle = None
        self._charge(core)
        if task.burst_remaining == 0:
            self._complete_burst(core, task)
            return
        waiting = self.rt_rq.peek_priority()
        if waiting is not None and waiting >= task.rt_priority:
            task.ctx_involuntary += 1
            if core.completion_handle is not None:
                core.completion_handle.cancel()
                core.completion_handle = None
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE,
                                 task.tid, core.index, (tev.DESCHED_QUANTUM,))
            if self._audit_on:
                self._audit.record(
                    self.sim.now, aud.OP_QUANTUM, "rt",
                    displaced=task.tid, reason=tev.DESCHED_QUANTUM,
                    arg=waiting)
            self._make_ready(task)
            core.task = None
            self.rt_rq.enqueue(task)
            self._pick_next(core)
        else:
            core.slice_handle = self.sim.schedule(
                self.params.rr_quantum, self._on_quantum, core, task
            )

    def _on_completion(self, core: _Core, task: Task) -> None:
        assert core.task is task
        core.completion_handle = None
        self._charge(core)
        assert task.burst_remaining == 0
        self._complete_burst(core, task)

    def _complete_burst(self, core: _Core, task: Task) -> None:
        core.cancel_timers()
        nxt = task.advance_burst()
        if self._trace_on and (nxt is None or nxt.kind is BurstKind.IO):
            self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                             core.index, (tev.DESCHED_BURST_END,))
        if nxt is None:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            core.task = None
            # schedule the core before notifying user space: the finish
            # callback (e.g. SFS) may re-enter and dispatch new RT work
            self._pick_next(core)
            self._notify_finish(task)
        elif nxt.kind is BurstKind.IO:
            task.state = TaskState.BLOCKED
            task.ctx_voluntary += 1
            core.task = None
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.TASK_BLOCK, task.tid)
            task._io_handle = self.sim.schedule(  # type: ignore[attr-defined]
                nxt.duration, self._on_io_done, task, nxt.duration
            )
            self._pick_next(core)
        else:  # back-to-back CPU burst: keep the core, restart timers
            core.run_start = self.sim.now
            core.completion_handle = self.sim.schedule(
                self._wall(task.burst_remaining), self._on_completion, core, task
            )
            if task.policy is SchedPolicy.CFS:
                core.slice_handle = self.sim.schedule(
                    core.rq.timeslice_for(task), self._on_slice_expiry, core, task
                )
            elif task.policy is SchedPolicy.RR:
                core.slice_handle = self.sim.schedule(
                    self.params.rr_quantum, self._on_quantum, core, task
                )

    def _on_io_done(self, task: Task, duration: int) -> None:
        task._io_handle = None  # type: ignore[attr-defined]
        nxt = task.complete_io()
        if nxt is None:
            task.state = TaskState.FINISHED
            task.finish_time = self.sim.now
            self._notify_finish(task)
            return
        assert nxt.kind is BurstKind.CPU, "consecutive I/O bursts must be merged"
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_WAKE, task.tid)
        self._make_ready(task)
        self._enqueue_ready(task, wakeup=True)

    def _on_rt_throttle(self, core: _Core, task: Task) -> None:
        """RT bandwidth exhausted (sched_rt_runtime_us): park the RT
        task until the next period so CFS gets its guaranteed share."""
        core.throttle_handle = None
        assert core.task is task and task.is_rt
        self._charge(core)
        if task.burst_remaining == 0:
            self._complete_burst(core, task)
            return
        _runtime, period = self.params.rt_bandwidth
        task.ctx_involuntary += 1
        core.cancel_timers()
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                             core.index, (tev.DESCHED_THROTTLE,))
        if self._audit_on:
            self._audit.record(self.sim.now, aud.OP_THROTTLE, "rt",
                               displaced=task.tid,
                               reason=tev.DESCHED_THROTTLE, arg=period)
        self._make_ready(task)
        core.task = None
        self.rt_rq.enqueue(task)
        # wake the dispatcher when the next period refills the budget
        next_period_start = (self.sim.now // period + 1) * period
        self.sim.schedule_at(next_period_start, self._on_rt_unthrottle)
        self._pick_next(core)  # CFS work runs in the throttled window

    def _on_rt_unthrottle(self) -> None:
        """A bandwidth period rolled over: waiting RT tasks may run."""
        self._dispatch_rt()

    def _demote_running(self, core: _Core, task: Task) -> None:
        """RT -> CFS while on CPU (SFS slice-expiry demotion)."""
        core.cancel_timers()
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.TASK_DESCHEDULE, task.tid,
                             core.index, (tev.DESCHED_RECLASS,))
        if self._audit_on:
            self._audit.record(self.sim.now, aud.OP_RECLASS, "kernel",
                               displaced=task.tid,
                               reason=tev.DESCHED_RECLASS)
        self._make_ready(task)
        core.task = None
        self._enqueue_cfs(task, wakeup=False)
        if core.task is None:
            self._pick_next(core)
        # Count the switch unless the task immediately resumed on the
        # same core (then the kernel would not have switched at all).
        if not (
            task.state is TaskState.RUNNING
            and getattr(task, "_run_core", None) == core.index
        ):
            task.ctx_involuntary += 1
