"""Multi-core host models.

Two engines implement the same :class:`repro.machine.base.MachineBase`
API so that every policy layer (plain kernel runs, SFS, OpenLambda) is
engine-agnostic:

* :class:`repro.machine.discrete.DiscreteMachine` — faithful per-slice
  simulation of CFS + RT classes with per-core runqueues; the reference
  engine.
* :class:`repro.machine.fluid.FluidMachine` — a processor-sharing
  closed-form of the same machine, O(log n) per event, used for the
  full-size experiments and validated against the discrete engine by
  the test suite.
"""

from repro.machine.base import MachineBase, MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine

__all__ = ["MachineBase", "MachineParams", "DiscreteMachine", "FluidMachine"]
