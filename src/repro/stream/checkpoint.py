"""In-run checkpoints: the whole simulation, atomically, mid-flight.

A checkpoint serializes the **complete** live object graph of a
streaming replay — the event heap (with lazy-cancelled entries and
their seq counters), per-core runqueues, SFS monitor/FILTER/watch-list
state, the workload cursor, the aggregator, the watchdog, and the
module-global task-id counter — as one pickle, written through the
PR-3 atomic write-rename discipline with a sha256-manifested sidecar
(schema :data:`CHECKPOINT_SCHEMA`).

Why a single pickle instead of a bespoke schema: the simulator's
determinism lives in object aliasing (the *same* ``EventHandle`` is
referenced by the heap and by the SFS worker that may cancel it) and
pickle's memo preserves aliasing exactly.  Every callback in the
streaming driver is a bound method of a picklable object — closures
are banned from the replay path for precisely this reason.

Resume contract: ``load`` verifies the manifest hash and the config
digest (a checkpoint from a different replay configuration is an
error, not a silent wrong-answer), restores the task-id counter, and
returns a driver whose continued run produces a final summary
byte-identical to an uninterrupted one (pinned by tests and the
``replay-smoke`` CI job).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Dict, Optional

import repro.sim.task as task_module
from repro.experiments.artifacts import (
    atomic_write_bytes,
    atomic_write_text,
    config_digest,
)

CHECKPOINT_SCHEMA = "repro.stream/1"

#: pinned pickle protocol: checkpoints written by one interpreter
#: version stay readable by the next (protocol 4 is universal on 3.4+)
_PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or from another configuration."""


class CheckpointStore:
    """One directory holding the latest checkpoint + manifest.

    Checkpoints are overwritten in place (atomically): for crash
    recovery only the newest consistent state matters, and a multi-day
    replay must not grow a checkpoint graveyard.  The manifest carries
    enough provenance (virtual time, request counts, config digest) to
    report progress without unpickling anything.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.root, "checkpoint.ckpt")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "checkpoint.manifest.json")

    # ------------------------------------------------------------------
    def save(self, driver) -> Dict[str, Any]:
        """Atomically persist ``driver`` and return the manifest.

        The payload includes the module-global task-id counter
        (:data:`repro.sim.task._task_ids`): task ids are assigned from
        it at spawn, SFS keys its FILTER bookkeeping by tid, and a
        resume that restarted the counter would collide new tasks with
        checkpointed ones.  ``itertools.count`` pickles by value
        without being consumed, which is exactly what is needed.
        """
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "driver": driver,
            "task_ids": task_module._task_ids,
        }
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        atomic_write_bytes(self.checkpoint_path, blob)
        config = driver.config_dict()
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
            "config": config,
            "config_digest": config_digest(config),
            "virtual_time_us": driver.sim.now,
            "requests_done": driver.done,
            "requests_admitted": driver.admitted,
            "checkpoints_written": driver.checkpoints_written + 1,
        }
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n",
        )
        driver.checkpoints_written += 1
        return manifest

    # ------------------------------------------------------------------
    def manifest(self) -> Optional[Dict[str, Any]]:
        """The manifest of the stored checkpoint, or None."""
        try:
            with open(self.manifest_path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        return doc if doc.get("schema") == CHECKPOINT_SCHEMA else None

    def has_checkpoint(self) -> bool:
        return self.manifest() is not None

    # ------------------------------------------------------------------
    def load(self, expect_config: Optional[Dict[str, Any]] = None):
        """Restore the driver from the stored checkpoint.

        ``expect_config`` (the config dict of the *resuming* command)
        guards against resuming a checkpoint into a different replay:
        scheduler, engine, seed or horizon mismatches fail loudly.
        """
        manifest = self.manifest()
        if manifest is None:
            raise CheckpointError(
                f"no checkpoint found in {self.root} "
                f"(expected {self.manifest_path})")
        try:
            with open(self.checkpoint_path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint payload unreadable: {exc}") from None
        if hashlib.sha256(blob).hexdigest() != manifest.get("sha256"):
            raise CheckpointError(
                f"checkpoint {self.checkpoint_path} does not match its "
                f"manifest hash (torn or corrupt; delete {self.root} "
                f"to restart from scratch)")
        if expect_config is not None:
            expected = config_digest(expect_config)
            if manifest.get("config_digest") != expected:
                raise CheckpointError(
                    "checkpoint was written by a different replay "
                    f"configuration (stored {manifest.get('config')}, "
                    f"requested {expect_config})")
        payload = pickle.loads(blob)
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"unknown checkpoint schema {payload.get('schema')!r}")
        # restore the global task-id stream before anything can spawn
        task_module._task_ids = payload["task_ids"]
        driver = payload["driver"]
        # the checkpoint was written from inside Simulator.run; the
        # restored loop must be allowed to enter run() again
        driver.sim._running = False
        driver.checkpointer = self
        driver.resumed_from = manifest["virtual_time_us"]
        return driver
