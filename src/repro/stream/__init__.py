"""Streaming long-horizon replay (`repro.stream`).

Constant-memory replay of multi-day serverless traces: lazy seeded
request streams (:mod:`repro.workload.stream`), online aggregation
(:mod:`repro.stream.aggregate`), in-run checkpoint/resume
(:mod:`repro.stream.checkpoint`) and a memory-budget watchdog
(:mod:`repro.stream.watchdog`), all driven by
:class:`repro.stream.driver.StreamReplayDriver`.
"""

from repro.stream.aggregate import SUMMARY_SCHEMA, StreamSummary
from repro.stream.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointStore,
)
from repro.stream.driver import (
    REPLAY_SCHEDULERS,
    ReplayConfig,
    StreamReplayDriver,
)
from repro.stream.watchdog import (
    MemoryBudgetExceeded,
    MemoryWatchdog,
    rss_kb,
)

__all__ = [
    "SUMMARY_SCHEMA",
    "StreamSummary",
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "REPLAY_SCHEDULERS",
    "ReplayConfig",
    "StreamReplayDriver",
    "MemoryBudgetExceeded",
    "MemoryWatchdog",
    "rss_kb",
]
