"""Streaming replay driver: crash-proof, constant-memory execution.

:func:`repro.experiments.runner.run_workload` schedules every arrival
up front through local closures and retains every (spec, task) pair —
both fatal for long horizons: closures cannot be pickled into a
checkpoint, and O(n) retention is exactly what streaming must remove.
This driver is the long-horizon counterpart:

* **prefetch-one arrivals** — the event heap holds at most one future
  arrival; each arrival event dispatches its request and fetches the
  next from the (picklable) workload cursor, so heap size tracks
  in-flight work, not trace length;
* **class-based event handlers** — every callback living in the event
  heap is a bound method of a picklable object, making the whole live
  graph serializable mid-run (see :mod:`repro.stream.checkpoint`);
* **streaming aggregation** — finished requests fold into a
  :class:`repro.stream.aggregate.StreamSummary` and are dropped;
* **bounded SFS diagnostics** — the unbounded sample lists the
  materialized path keeps for Fig 10/12 (queue delay samples, slice
  timeline, overload events) become bounded deques, and the overhead
  meter gets a coarse window, so SFS state stays O(1) over any horizon;
* **checkpoint ticks** — a self-rescheduling virtual-time event writes
  a checkpoint every ``checkpoint_every`` us and runs the memory
  watchdog; the *next* tick is scheduled before pickling so a restored
  heap is already armed.

Instrumentation is deliberately the zero-overhead NULL stack (trace,
invariants, metrics off): those layers cache closures and wall-clock
profilers that must never reach a checkpoint, and the nominal path is
bit-identical without them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import SFSConfig
from repro.core.overhead import OverheadMeter
from repro.core.sfs import SFS
from repro.machine.base import MachineParams
from repro.sim.engine import Simulator
from repro.sim.task import SchedPolicy, Task
from repro.sim.units import SEC
from repro.stream.aggregate import StreamSummary
from repro.workload.spec import RequestSpec
from repro.workload.stream import RequestStream, StreamCursor

#: schedulers the streaming driver supports (the clairvoyant oracles
#: srtf/ideal are comparison baselines, not replay targets)
REPLAY_SCHEDULERS = ("cfs", "fifo", "rr", "sfs")

_POLICY_FOR = {
    "cfs": SchedPolicy.CFS,
    "fifo": SchedPolicy.FIFO,
    "rr": SchedPolicy.RR,
    "sfs": SchedPolicy.CFS,  # functions start in CFS; SFS promotes them
}

#: cap on retained diagnostic samples inside SFS components
SAMPLE_CAP = 4096


@dataclass(frozen=True)
class ReplayConfig:
    """How to execute a streaming replay."""

    scheduler: str = "sfs"
    engine: str = "fluid"
    machine: MachineParams = field(default_factory=MachineParams)
    sfs: SFSConfig = field(default_factory=SFSConfig)
    #: FaaS-server -> SFS notification latency (us), as in RunConfig.
    notify_latency: int = 200
    #: stop admitting arrivals after this virtual time (None = replay
    #: the whole stream); in-flight work still drains to completion.
    horizon: Optional[int] = None
    #: write a checkpoint every this many us of virtual time (None =
    #: checkpointing off; requires a CheckpointStore on the driver).
    checkpoint_every: Optional[int] = 60 * SEC
    #: recent-record ring size in the aggregator.
    recent: int = 256
    #: overhead-meter bucket width — 1 s buckets (the Table II default)
    #: would accumulate 1.2M dict entries over a 14-day horizon.
    overhead_window: int = 60 * SEC

    def __post_init__(self) -> None:
        if self.scheduler not in REPLAY_SCHEDULERS:
            raise ValueError(
                f"unknown replay scheduler {self.scheduler!r} "
                f"(expected one of {REPLAY_SCHEDULERS})")
        if self.engine not in ("fluid", "discrete"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.notify_latency < 0:
            raise ValueError("notify_latency must be >= 0")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive (us)")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (us)")
        if self.overhead_window <= 0:
            raise ValueError("overhead_window must be positive")


def _bound_sfs_buffers(sfs: SFS, cap: int = SAMPLE_CAP) -> None:
    """Swap the unbounded diagnostic lists inside SFS for bounded
    deques.  Safe before any event has fired: all three are pure
    sample sinks (appended to, read only at render time)."""
    for queue in {id(q): q for q in sfs.queues}.values():
        queue.delay_samples = deque(queue.delay_samples, maxlen=cap)
    sfs.monitor.timeline = deque(sfs.monitor.timeline, maxlen=cap)
    sfs.overload.events = deque(sfs.overload.events, maxlen=cap)


class StreamReplayDriver:
    """One streaming replay: cursor in, deterministic summary out.

    The driver object is the checkpoint root: pickling it captures the
    simulator (heap included), machine, SFS, cursor, aggregator and
    watchdog as one aliasing-preserving graph.
    """

    def __init__(self, stream: RequestStream, cfg: ReplayConfig,
                 aggregator: Optional[StreamSummary] = None,
                 checkpointer=None, watchdog=None):
        self.cfg = cfg
        self.stream_meta = dict(stream.meta)
        self.cursor: StreamCursor = stream.cursor()
        self.aggregator = aggregator or StreamSummary(recent=cfg.recent)
        self.checkpointer = checkpointer
        self.watchdog = watchdog
        self.sim = Simulator(label=f"replay {cfg.scheduler}/{cfg.engine}")
        self.machine = self._make_machine()
        self.sfs: Optional[SFS] = None
        if cfg.scheduler == "sfs":
            self.sfs = SFS(self.machine, cfg.sfs)
            # long-horizon bounds: coarse overhead buckets, capped
            # diagnostic sample lists (see module docstring)
            self.sfs.overhead = OverheadMeter(window=cfg.overhead_window)
            _bound_sfs_buffers(self.sfs)
        self._policy = _POLICY_FOR[cfg.scheduler]
        self._inflight: Dict[int, RequestSpec] = {}
        self._next_spec: Optional[RequestSpec] = None
        self.done = 0
        self.admitted = 0
        self.truncated_at_horizon = False
        self.checkpoints_written = 0
        self.resumed_from: Optional[int] = None
        self._finished = False
        self.machine.on_finish(self._on_finish)
        self._fetch_next()
        if cfg.checkpoint_every is not None:
            self.sim.schedule(cfg.checkpoint_every, self._on_checkpoint_tick)

    # ------------------------------------------------------------------
    def _make_machine(self):
        from repro.machine.discrete import DiscreteMachine
        from repro.machine.fluid import FluidMachine

        cls = FluidMachine if self.cfg.engine == "fluid" else DiscreteMachine
        return cls(self.sim, self.cfg.machine)

    # ------------------------------------------------------------------
    # event handlers: bound methods only — these live in the heap
    # ------------------------------------------------------------------
    def _fetch_next(self) -> None:
        """Pull one request from the cursor and arm its arrival event."""
        try:
            spec = next(self.cursor)
        except StopIteration:
            self._next_spec = None
            return
        if self.cfg.horizon is not None and spec.arrival > self.cfg.horizon:
            self._next_spec = None
            self.truncated_at_horizon = True
            return
        self._next_spec = spec
        self.sim.schedule_at(spec.arrival, self._arrive)

    def _arrive(self) -> None:
        spec = self._next_spec
        # prefetch first: the next arrival's event outranks (by seq) any
        # machine event this dispatch schedules at the same timestamp,
        # matching the materialized runner's arrivals-first discipline
        self._fetch_next()
        task = spec.make_task(policy=self._policy)
        self._inflight[task.tid] = spec
        self.admitted += 1
        self.machine.spawn(task)
        if self.sfs is not None:
            if self.cfg.notify_latency > 0:
                self.sim.schedule(self.cfg.notify_latency, self.sfs.submit,
                                  task, spec.arrival)
            else:
                self.sfs.submit(task, spec.arrival)

    def _on_finish(self, task: Task) -> None:
        spec = self._inflight.pop(task.tid, None)
        if spec is None:
            return
        self.done += 1
        self.aggregator.observe(spec, task, inflight=len(self._inflight) + 1)

    def _on_checkpoint_tick(self) -> None:
        """Periodic housekeeping: rearm, watchdog, checkpoint.

        Rearm comes first so the pickled heap already carries the next
        tick; the tick dies with the run (no other live events = the
        replay is over) exactly like the gauge sampler's rule.
        """
        if self.sim.pending > 0:
            self.sim.schedule(self.cfg.checkpoint_every,
                              self._on_checkpoint_tick)
        if self.watchdog is not None:
            self.watchdog.check(self)  # may raise MemoryBudgetExceeded
        if self.checkpointer is not None:
            self.checkpointer.save(self)

    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> Dict[str, object]:
        """Drive the replay to completion and return the summary dict.

        ``until`` stops the loop at a virtual time with work pending —
        only useful in tests that then abandon this driver and restore
        a checkpointed copy.
        """
        self.sim.run(until=until)
        if until is None:
            if self._inflight:
                raise RuntimeError(
                    f"{len(self._inflight)} requests never finished under "
                    f"{self.cfg.scheduler}/{self.cfg.engine}")
            self._finished = True
            self.aggregator.close()
        return self.summary()

    def summary(self) -> Dict[str, object]:
        meta = dict(self.stream_meta)
        if self.cfg.horizon is not None:
            meta["horizon_us"] = self.cfg.horizon
            meta["truncated_at_horizon"] = self.truncated_at_horizon
        return self.aggregator.result(
            sim_time=self.sim.now,
            busy_time=self.machine.busy_time,
            n_cores=self.machine.n_cores,
            events_executed=self.sim.events_executed,
            scheduler=self.cfg.scheduler,
            engine=self.cfg.engine,
            meta=meta,
        )

    # ------------------------------------------------------------------
    def tighten_buffers(self) -> None:
        """Watchdog soft-threshold hook: shrink diagnostic memory."""
        self.aggregator.tighten()
        if self.sfs is not None:
            _bound_sfs_buffers(self.sfs, cap=max(
                64, SAMPLE_CAP // (2 ** min(8, 1 + (
                    self.watchdog.soft_trips if self.watchdog else 1)))))

    # ------------------------------------------------------------------
    def config_dict(self) -> Dict[str, object]:
        """JSON-safe configuration key for checkpoint manifests: a
        resume with different replay parameters must be refused."""
        cfg = self.cfg
        return {
            "scheduler": cfg.scheduler,
            "engine": cfg.engine,
            "n_cores": cfg.machine.n_cores,
            "ctx_switch_cost": cfg.machine.ctx_switch_cost,
            "notify_latency": cfg.notify_latency,
            "horizon": cfg.horizon,
            "checkpoint_every": cfg.checkpoint_every,
            "stream": {k: v for k, v in sorted(self.stream_meta.items())},
            "n_requests": self.cursor.config.n_requests,
        }
