"""Memory-budget watchdog for long-horizon replays.

OOM kills are the boring way multi-day replays die.  The watchdog
samples the process RSS at every checkpoint tick (piggybacking on the
virtual-time cadence keeps the nominal path untouched) and degrades
gracefully instead of letting the kernel pick a victim:

1. **soft threshold** (a fraction of the budget): tighten the bounded
   buffers — halve the aggregator's recent-record ring, trim the SFS
   sample deques — and ``gc.collect()``;
2. **hard threshold** (the budget itself): force a final checkpoint so
   no virtual time is lost, then raise :class:`MemoryBudgetExceeded`
   carrying a replayable report (checkpoint path, virtual time,
   requests done) instead of OOMing.

Everything the watchdog mutates is cosmetic with respect to the final
summary — ring buffers and diagnostic sample lists, never simulation
state — so a run that brushed the soft threshold still produces bytes
identical to one that never did.
"""

from __future__ import annotations

import gc
import os
import sys
from typing import Dict, Optional


def rss_kb() -> int:
    """Current resident set size in KiB (0 where unsupported).

    Prefers ``/proc/self/statm`` (current RSS, goes *down* after
    frees) and falls back to ``ru_maxrss`` (a high-water mark) on
    hosts without procfs.
    """
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX host
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss // 1024 if sys.platform == "darwin" else rss


class MemoryBudgetExceeded(RuntimeError):
    """The replay hit its memory budget; ``report`` says how to resume."""

    def __init__(self, message: str, report: Dict[str, object]):
        super().__init__(message)
        self.report = report


class MemoryWatchdog:
    """RSS gauge with soft-degrade / hard-abort thresholds.

    Plain-integer state only, so it checkpoints with the driver; the
    observed peak survives a resume (useful for the final report even
    though the resumed process starts with a fresh RSS).
    """

    def __init__(self, budget_kb: int, soft_fraction: float = 0.8):
        if budget_kb <= 0:
            raise ValueError("budget_kb must be positive")
        if not (0.0 < soft_fraction <= 1.0):
            raise ValueError("soft_fraction must be in (0, 1]")
        self.budget_kb = budget_kb
        self.soft_fraction = soft_fraction
        self.peak_kb = 0
        self.samples = 0
        self.soft_trips = 0

    @property
    def soft_kb(self) -> int:
        return int(self.budget_kb * self.soft_fraction)

    def sample(self) -> int:
        """Record one RSS sample; returns it (KiB)."""
        rss = rss_kb()
        self.samples += 1
        if rss > self.peak_kb:
            self.peak_kb = rss
        return rss

    def check(self, driver) -> None:
        """Sample RSS and react; called from the checkpoint tick.

        ``driver`` is the :class:`repro.stream.driver.StreamReplayDriver`
        owning this watchdog.
        """
        rss = self.sample()
        if rss < self.soft_kb:
            return
        if rss < self.budget_kb:
            self.soft_trips += 1
            driver.tighten_buffers()
            gc.collect()
            return
        # hard budget: persist everything we have, then abort replayably
        checkpoint_path: Optional[str] = None
        if driver.checkpointer is not None:
            driver.checkpointer.save(driver)
            checkpoint_path = driver.checkpointer.checkpoint_path
        report = {
            "error": "memory budget exceeded",
            "rss_kb": rss,
            "peak_rss_kb": self.peak_kb,
            "budget_kb": self.budget_kb,
            "soft_trips": self.soft_trips,
            "virtual_time_us": driver.sim.now,
            "requests_done": driver.done,
            "requests_admitted": driver.admitted,
            "checkpoint": checkpoint_path,
            "resume_hint": (
                "rerun the same `repro replay` command with --resume"
                if checkpoint_path else
                "rerun with --checkpoint-dir to make this abort resumable"
            ),
        }
        raise MemoryBudgetExceeded(
            f"RSS {rss} KiB exceeded the {self.budget_kb} KiB budget "
            f"at t={driver.sim.now}us ({driver.done} requests done)",
            report,
        )
