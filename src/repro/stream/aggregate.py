"""Streaming result aggregation: constant memory per request.

The materialized path retains one :class:`repro.metrics.collector.
RequestRecord` per request; over a 10M-request horizon that is gigabytes
of Python objects serving no purpose until the final percentile pass.
This module computes the same headline numbers online:

* DDSketch quantile sketches (:class:`repro.obs.instruments.
  QuantileSketch`) for turnaround, end-to-end latency, wait time and
  RTE — O(log range) buckets, any quantile within the sketch's
  relative-accuracy bound;
* exact counters and totals (requests, SFS outcomes, context switches,
  CPU/IO demand and service);
* a bounded ring buffer of the most recent records for debugging;
* optional spill-to-JSONL when full per-request records are wanted —
  append-only, with a byte offset the checkpointer can truncate back
  to so a resumed run's spill file is byte-identical too.

The summary document (:meth:`StreamSummary.result`) contains only
virtual-time-deterministic fields — no wall clock, no RSS — which is
what makes "SIGKILL + ``--resume`` yields byte-identical bytes" a
testable property rather than a hope.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, Optional

from repro.obs.instruments import QuantileSketch
from repro.sim.task import Task
from repro.workload.spec import RequestSpec

SUMMARY_SCHEMA = "repro.stream-summary/1"

#: quantiles reported per sketch
_QUANTILES = (0.50, 0.90, 0.99, 0.999)


def _sketch_summary(sketch: QuantileSketch) -> Dict[str, float]:
    if sketch.count == 0:
        return {"count": 0}
    out: Dict[str, float] = {"count": sketch.count}
    for q in _QUANTILES:
        key = f"p{str(q * 100).rstrip('0').rstrip('.').replace('.', '_')}"
        out[key] = round(sketch.quantile(q), 3)
    return out


class StreamSummary:
    """Online aggregator fed one ``(spec, finished task)`` at a time."""

    def __init__(self, recent: int = 256, spill_path: Optional[str] = None,
                 gamma: float = 0.01):
        self.turnaround = QuantileSketch(gamma)
        self.end_to_end = QuantileSketch(gamma)
        self.wait = QuantileSketch(gamma)
        self.rte = QuantileSketch(gamma)
        self.requests = 0
        self.ok = 0
        self.killed = 0
        self.bypassed = 0
        self.demoted = 0
        self.ctx_voluntary = 0
        self.ctx_involuntary = 0
        self.migrations = 0
        self.cpu_demand_us = 0
        self.io_demand_us = 0
        self.cpu_time_us = 0
        self.max_inflight = 0
        self.recent = deque(maxlen=max(1, recent))
        # spill: the handle is process state, never pickled; offset and
        # count are, so a resume can truncate back to the checkpoint
        self.spill_path = spill_path
        self.spill_offset = 0
        self.spill_records = 0
        self._spill_fh = None

    # ------------------------------------------------------------------
    def observe(self, spec: RequestSpec, task: Task,
                inflight: int = 0) -> None:
        """Fold one finished request into the aggregates and drop it."""
        if not task.finished:
            raise RuntimeError(f"request {spec.req_id} never finished")
        turnaround = task.finish_time - task.dispatch_time
        end_to_end = task.finish_time - spec.arrival
        rte = task.cpu_demand / max(1, turnaround)
        self.requests += 1
        if task.killed:
            self.killed += 1
        else:
            self.ok += 1
        self.turnaround.add(turnaround)
        self.end_to_end.add(end_to_end)
        self.wait.add(task.wait_time)
        self.rte.add(rte)
        self.bypassed += int(task.sfs_bypassed)
        self.demoted += int(task.sfs_demoted)
        self.ctx_voluntary += task.ctx_voluntary
        self.ctx_involuntary += task.ctx_involuntary
        self.migrations += task.migrations
        self.cpu_demand_us += task.cpu_demand
        self.io_demand_us += task.io_demand
        self.cpu_time_us += task.cpu_time
        if inflight > self.max_inflight:
            self.max_inflight = inflight
        row = {
            "req_id": spec.req_id,
            "name": spec.name,
            "app": spec.app,
            "arrival": spec.arrival,
            "dispatch": task.dispatch_time,
            "finish": task.finish_time,
            "cpu_demand": task.cpu_demand,
            "io_demand": task.io_demand,
            "cpu_time": task.cpu_time,
            "wait_time": task.wait_time,
            "ctx_involuntary": task.ctx_involuntary,
            "ctx_voluntary": task.ctx_voluntary,
            "migrations": task.migrations,
            "bypassed": task.sfs_bypassed,
            "demoted": task.sfs_demoted,
            "status": "killed" if task.killed else "ok",
        }
        self.recent.append(row)
        if self.spill_path is not None:
            self._spill(row)

    # ------------------------------------------------------------------
    # spill-to-JSONL
    # ------------------------------------------------------------------
    def _spill(self, row: Dict[str, object]) -> None:
        if self._spill_fh is None:
            self._open_spill()
        line = json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        self._spill_fh.write(line)
        self.spill_offset += len(line.encode())
        self.spill_records += 1

    def _open_spill(self) -> None:
        """(Re)open the spill file at the recorded offset.

        On a resume, rows spilled after the checkpoint but before the
        kill are beyond ``spill_offset``; truncating back makes the
        resumed spill byte-identical to an uninterrupted run's.
        """
        exists = os.path.exists(self.spill_path)
        if self.spill_offset > 0 and not exists:
            raise FileNotFoundError(
                f"spill file {self.spill_path} is missing but the "
                f"checkpoint recorded {self.spill_records} spilled rows")
        fh = open(self.spill_path, "r+" if exists else "w")
        fh.truncate(self.spill_offset)
        fh.seek(self.spill_offset)
        self._spill_fh = fh

    def close(self) -> None:
        if self._spill_fh is not None:
            self._spill_fh.flush()
            self._spill_fh.close()
            self._spill_fh = None

    # ------------------------------------------------------------------
    def tighten(self) -> None:
        """Watchdog hook: halve the recent-record ring.

        Only diagnostics shrink; every field of :meth:`result` is
        unaffected, preserving byte-identical summaries.
        """
        new_len = max(16, (self.recent.maxlen or 16) // 2)
        self.recent = deque(self.recent, maxlen=new_len)

    # ------------------------------------------------------------------
    def result(self, sim_time: int, busy_time: int, n_cores: int,
               events_executed: int, scheduler: str, engine: str,
               meta: Optional[Dict[str, object]] = None,
               ) -> Dict[str, object]:
        """The deterministic summary document (no wall clock, no RSS)."""
        util = busy_time / (sim_time * n_cores) if sim_time > 0 else 0.0
        doc: Dict[str, object] = {
            "schema": SUMMARY_SCHEMA,
            "scheduler": scheduler,
            "engine": engine,
            "n_cores": n_cores,
            "requests": self.requests,
            "ok": self.ok,
            "killed": self.killed,
            "sim_time_us": sim_time,
            "busy_time_us": busy_time,
            "events_executed": events_executed,
            "utilization": round(util, 6),
            "turnaround_us": _sketch_summary(self.turnaround),
            "end_to_end_us": _sketch_summary(self.end_to_end),
            "wait_us": _sketch_summary(self.wait),
            "rte": _sketch_summary(self.rte),
            "sfs_bypassed": self.bypassed,
            "sfs_demoted": self.demoted,
            "ctx_voluntary": self.ctx_voluntary,
            "ctx_involuntary": self.ctx_involuntary,
            "migrations": self.migrations,
            "cpu_demand_us": self.cpu_demand_us,
            "io_demand_us": self.io_demand_us,
            "cpu_time_us": self.cpu_time_us,
            "max_inflight": self.max_inflight,
            "spill_records": self.spill_records,
        }
        if meta:
            doc["meta"] = dict(sorted(meta.items()))
        return doc

    @staticmethod
    def to_json(doc: Dict[str, object]) -> str:
        """Canonical bytes: the sha256-comparable artifact."""
        return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"

    # ------------------------------------------------------------------
    # pickling: drop the file handle, keep offsets
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        if state["_spill_fh"] is not None:
            state["_spill_fh"].flush()
        state["_spill_fh"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._spill_fh = None
