"""Per-hop platform latencies.

The paper notes the OpenLambda deployment "introduced extra overhead at
various levels, including the OpenLambda worker servers and the HTTP
sandbox servers" which "diminished the performance benefits of SFS to
some extent" (§IX-A).  We model each hop as an independent log-normal
delay — the canonical shape for RPC latencies — with medians in the
hundreds-of-microseconds range typical of localhost HTTP/UDP hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.rng import make_rng


@dataclass(frozen=True)
class HopLatency:
    """Log-normal hop latency: median (us) and shape sigma."""

    median_us: int
    sigma: float = 0.35

    def __post_init__(self) -> None:
        if self.median_us < 0 or self.sigma < 0:
            raise ValueError("invalid hop latency parameters")

    def sample(self, rng: np.random.Generator) -> int:
        if self.median_us == 0:
            return 0
        draw = rng.lognormal(np.log(self.median_us), self.sigma)
        return max(1, int(round(draw)))


@dataclass(frozen=True)
class OverheadModel:
    """All hops on the invocation path (Fig 5)."""

    gateway: HopLatency = field(default_factory=lambda: HopLatency(300))
    ol_worker: HopLatency = field(default_factory=lambda: HopLatency(500))
    sandbox_server: HopLatency = field(default_factory=lambda: HopLatency(400))
    #: sandbox server -> SFS UDP notify ("hundreds of microseconds", §VI)
    udp_notify: HopLatency = field(default_factory=lambda: HopLatency(200))

    def total_median(self) -> int:
        return (
            self.gateway.median_us
            + self.ol_worker.median_us
            + self.sandbox_server.median_us
        )
