"""Cluster fault tolerance: health-checked failover, hedging, budgets.

The dispatcher-side half of ``repro.resilient``.  Three mechanisms,
all optional and all declaratively configured:

* **health-checked failover** — the dispatcher polls host liveness
  every ``health_interval`` microseconds (the same shape as SFS's own
  4 ms message poller, so detection latency is a simulated quantity,
  not an abstraction).  A request whose attempt died with a failed
  host is *stranded* rather than failed, and re-dispatched through
  placement at the next poll — which is also when the dispatcher's
  health view marks the host unhealthy, so the re-dispatch cannot land
  back on the host that just ate the attempt.
* **hedged requests** — after a seeded per-request delay, a backup
  attempt is launched on a different healthy host; first un-killed
  completion wins and the loser is cancelled (``kill_reason ==
  "hedge"``).  While both chains race, a chain that dies is absorbed
  instead of consuming a retry.
* **retry-storm defense** — a global token bucket gates retry
  scheduling: when correlated failures would amplify into a storm, the
  bucket empties and further failures go terminal immediately
  (visible as ``retry.throttled`` events and the
  ``repro_cluster_retry_throttled_total`` counter) instead of
  metastably collapsing goodput.

Determinism discipline matches :mod:`repro.faults.plan`: the hedge
delay is a pure function of ``(seed, req_id)``; the token bucket
refills from virtual time only; the poller is a self-rescheduling
simulator event using the gauge-sampler rearm rule, so it never keeps
a drained run alive.  With ``ClusterConfig.resilience = None`` none of
this code is reachable and the cluster's event stream is byte-identical
to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.task import Task, TaskState
from repro.trace import events as tev
from repro.workload.spec import RequestSpec

#: hash salt for per-request hedge delays (crash 0xC1, coldstart 0xC2,
#: backoff 0xB0, flap windows 0xD0, fuzz cases 0xF0)
_SALT_HEDGE = 0xE1


@dataclass(frozen=True)
class HedgePolicy:
    """Backup-request policy: when to launch the second attempt.

    ``hedge_delay`` is a pure function of ``(seed, req_id)`` — the same
    request hedges at the same instant under CFS and under SFS.
    """

    #: base wait before dispatching the backup, us
    delay: int = 50_000
    #: uniform jitter as a fraction of ``delay`` (0 = fixed delay)
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise ValueError("hedge delay must be >= 1 us")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("hedge jitter must be in [0, 1)")

    def hedge_delay(self, req_id: int) -> int:
        if self.jitter == 0.0:
            return self.delay
        rng = np.random.default_rng((self.seed, req_id, _SALT_HEDGE))
        lo = self.delay * (1.0 - self.jitter)
        hi = self.delay * (1.0 + self.jitter)
        return max(1, int(rng.uniform(lo, hi)))

    def to_json(self) -> dict:
        return {"delay": self.delay, "jitter": self.jitter,
                "seed": self.seed}


@dataclass(frozen=True)
class RetryBudget:
    """Global retry-rate token bucket (virtual-time refill)."""

    #: sustained retries per virtual second the cluster will pay for
    rate_per_sec: float = 50.0
    #: bucket capacity (burst allowance)
    burst: int = 20

    def __post_init__(self) -> None:
        if not (self.rate_per_sec > 0):
            raise ValueError("retry budget rate must be positive")
        if self.burst < 1:
            raise ValueError("retry budget burst must be >= 1")

    def to_json(self) -> dict:
        return {"rate_per_sec": self.rate_per_sec, "burst": self.burst}


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the fault-tolerant dispatcher may do."""

    #: dispatcher liveness-poll period, us (detection latency bound)
    health_interval: int = 4_000
    #: re-dispatch attempts that died with a failed host?
    failover: bool = True
    #: per-request cap on failover re-dispatches
    max_failovers: int = 4
    #: backup-dispatch policy (None = no hedging)
    hedge: Optional[HedgePolicy] = None
    #: global retry-rate limit (None = unbounded retries)
    retry_budget: Optional[RetryBudget] = None

    def __post_init__(self) -> None:
        if self.health_interval < 1:
            raise ValueError("health_interval must be >= 1 us")
        if self.max_failovers < 0:
            raise ValueError("max_failovers must be >= 0")

    def to_json(self) -> dict:
        return {
            "health_interval": self.health_interval,
            "failover": self.failover,
            "max_failovers": self.max_failovers,
            "hedge": self.hedge.to_json() if self.hedge else None,
            "retry_budget":
                self.retry_budget.to_json() if self.retry_budget else None,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ResilienceConfig":
        if not isinstance(data, dict):
            raise ValueError("ResilienceConfig JSON must be an object")
        known = ("health_interval", "failover", "max_failovers", "hedge",
                 "retry_budget")
        unknown = set(data) - set(known)
        if unknown:
            raise ValueError(f"unknown ResilienceConfig fields: "
                             f"{sorted(unknown)} (known: {sorted(known)})")
        hedge = data.get("hedge")
        budget = data.get("retry_budget")
        return cls(
            health_interval=int(data.get("health_interval", 4_000)),
            failover=bool(data.get("failover", True)),
            max_failovers=int(data.get("max_failovers", 4)),
            hedge=HedgePolicy(**hedge) if hedge else None,
            retry_budget=RetryBudget(**budget) if budget else None,
        )


class ResilienceRuntime:
    """Per-run coordinator for failover, hedging and retry budgets.

    Owned by :class:`repro.faas.cluster.FaaSCluster` (one per run) and
    consulted by the shared :class:`repro.faults.runtime.FaultRuntime`
    governor at attempt boundaries.  Holds only bookkeeping — every
    stochastic decision lives in the frozen policies.
    """

    def __init__(self, sim, config: ResilienceConfig, cluster,
                 governor) -> None:
        self.sim = sim
        self.config = config
        self.cluster = cluster
        self.governor = governor
        self._trace = sim.trace
        self._trace_on = self._trace.enabled
        #: req_id -> terminal-or-won (pipeline events for settled
        #: requests are dropped at every stage boundary)
        self._settled: set = set()
        #: req_id -> {tid: (task, host)} for live (spawned) attempts
        self._live: Dict[int, Dict[int, Tuple[Task, int]]] = {}
        #: req_id -> host of the first dispatch (hedge placement avoids it)
        self._primary_host: Dict[int, int] = {}
        #: req_id -> hedge race state while two chains are in flight
        self._hedge: Dict[int, Dict[str, object]] = {}
        #: req_ids with a retry backoff scheduled but not yet begun
        self._awaiting_retry: set = set()
        #: (spec, host) attempts awaiting failover re-dispatch
        self._stranded: List[Tuple[RequestSpec, int]] = []
        self._failovers: Dict[int, int] = {}
        # token bucket state (virtual-time refill; floats, but the
        # arithmetic is a pure function of event times so it replays
        # bit-identically)
        budget = config.retry_budget
        self._tokens = float(budget.burst) if budget else 0.0
        self._tokens_at = 0
        # metric counters (null-registry pattern: cached at construction)
        metrics = sim.metrics
        self._metrics_on = metrics.enabled
        if self._metrics_on:
            self._m_failovers = metrics.counter(
                "repro_cluster_failovers_total",
                help="attempts re-dispatched after dying with a failed host")
            self._m_hedges = metrics.counter(
                "repro_cluster_hedges_total",
                help="backup attempts launched by the hedging policy")
            self._m_hedge_wins = {
                who: metrics.counter(
                    "repro_cluster_hedge_wins_total",
                    help="hedge races won, by which attempt finished first",
                    labels={"winner": who})
                for who in ("primary", "backup")
            }
            self._m_throttled = metrics.counter(
                "repro_cluster_retry_throttled_total",
                help="retries denied by the global retry budget")
            self._m_host_lost = metrics.counter(
                "repro_cluster_host_lost_total",
                help="requests terminally lost with a failed host")

    # ------------------------------------------------------------------
    # health poller (gauge-sampler rearm rule: see module docstring)
    # ------------------------------------------------------------------
    def attach(self) -> None:
        self.sim.schedule(self.config.health_interval, self._poll,
                          daemon=True)

    def _poll(self) -> None:
        cluster = self.cluster
        view = cluster._view
        for idx, host in enumerate(cluster.hosts):
            actual = not host.down
            if view[idx] != actual:
                view[idx] = actual
                if self._trace_on:
                    kind = tev.HEALTH_UP if actual else tev.HEALTH_DOWN
                    self._trace.emit(self.sim.now, kind, core=idx)
        if self._stranded:
            stranded, self._stranded = self._stranded, []
            for spec, host in stranded:
                self._redispatch_stranded(spec, host)
        # rearm only while the run is live (daemon events — the gauge
        # sampler and this poller itself — do not count as liveness);
        # a strand always implies pending work (the stranding host's
        # recovery event), but keep the explicit check for clarity
        if self.sim.pending_work > 0 or self._stranded:
            self.sim.schedule(self.config.health_interval, self._poll,
                              daemon=True)

    def _redispatch_stranded(self, spec: RequestSpec, from_host: int) -> None:
        req_id = spec.req_id
        if self.is_settled(req_id):
            return  # e.g. the deadline expired while stranded... handled
        self.governor.stats.failovers += 1
        if self._metrics_on:
            self._m_failovers.inc()
        to_host = self.cluster._redispatch(spec)
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.FAILOVER_REDISPATCH,
                             args=(req_id, from_host, to_host))

    # ------------------------------------------------------------------
    # request lifecycle notes (called by cluster / governor)
    # ------------------------------------------------------------------
    def is_settled(self, req_id: int) -> bool:
        return req_id in self._settled

    def settle(self, req_id: int) -> None:
        self._settled.add(req_id)
        self._hedge.pop(req_id, None)
        self._awaiting_retry.discard(req_id)

    def after_dispatch(self, spec: RequestSpec, host: int) -> None:
        """The first dispatch of a request was placed on ``host``."""
        req_id = spec.req_id
        if self.is_settled(req_id):
            return  # shed at the door
        self._primary_host[req_id] = host
        hp = self.config.hedge
        if hp is not None and len(self.cluster.hosts) > 1:
            self.sim.schedule(hp.hedge_delay(req_id), self._fire_hedge, spec)

    def note_begin(self, req_id: int) -> None:
        self._awaiting_retry.discard(req_id)

    def note_retry_scheduled(self, req_id: int) -> None:
        self._awaiting_retry.add(req_id)

    def note_spawn(self, spec: RequestSpec, task: Task, host: int) -> None:
        req_id = spec.req_id
        self._live.setdefault(req_id, {})[task.tid] = (task, host)
        st = self._hedge.get(req_id)
        if st is not None and st["backup_tid"] is None \
                and host == st["backup_host"]:
            st["backup_tid"] = task.tid

    def note_task_end(self, spec: RequestSpec, task: Task) -> int:
        """An attempt's task exited; returns the host it ran on (-1 if
        it was never registered)."""
        live = self._live.get(spec.req_id)
        if not live:
            return -1
        _, host = live.pop(task.tid, (None, -1))
        if not live:
            self._live.pop(spec.req_id, None)
        return host

    # ------------------------------------------------------------------
    # hedging
    # ------------------------------------------------------------------
    def _fire_hedge(self, spec: RequestSpec) -> None:
        req_id = spec.req_id
        if self.is_settled(req_id) or req_id in self._awaiting_retry:
            return  # already answered, or already in the retry path
        if self.governor.attempts_of(req_id) != 1:
            return  # a retry happened; hedging only covers the first try
        cluster = self.cluster
        primary = self._primary_host.get(req_id, -1)
        backup, best = -1, None
        for i in range(len(cluster.hosts)):
            if i == primary or not cluster._view[i]:
                continue
            v = cluster.hosts[i].outstanding
            if best is None or v < best:
                backup, best = i, v
        if backup < 0:
            return  # no second healthy host to hedge onto
        self.governor.stats.hedges += 1
        if self._metrics_on:
            self._m_hedges.inc()
        if self._trace_on:
            self._trace.emit(self.sim.now, tev.HEDGE_LAUNCH,
                             args=(req_id, primary, backup))
        self._hedge[req_id] = {"chains": 2, "backup_host": backup,
                               "backup_tid": None}
        cluster._hedge_dispatch(spec, backup)

    def absorb_death(self, req_id: int) -> bool:
        """A chain died while a hedge race is on: absorb it (no retry)
        as long as the sibling chain is still in flight."""
        st = self._hedge.get(req_id)
        if st is None:
            return False
        st["chains"] -= 1
        if st["chains"] >= 1:
            return True
        self._hedge.pop(req_id, None)  # both chains dead: race over
        return False

    def on_finish(self, spec: RequestSpec, task: Task) -> None:
        """An attempt completed normally — the request's answer."""
        req_id = spec.req_id
        st = self._hedge.pop(req_id, None)
        if st is not None:
            winner = "backup" if task.tid == st.get("backup_tid") \
                else "primary"
            if winner == "backup":
                self.governor.stats.hedge_wins += 1
            if self._metrics_on:
                self._m_hedge_wins[winner].inc()
            if self._trace_on:
                # tid identifies the winning chain for repro.why's
                # timeline reconstruction (never serialised outward)
                self._trace.emit(self.sim.now, tev.HEDGE_WIN, task.tid,
                                 args=(req_id, winner))
        self.settle(req_id)
        if st is not None:
            self._cancel_losers(req_id)

    def _cancel_losers(self, req_id: int) -> None:
        for tid, (task, host) in list(self._live.get(req_id, {}).items()):
            if task.state is TaskState.FINISHED:
                continue
            if self._trace_on:
                self._trace.emit(self.sim.now, tev.HEDGE_CANCEL, tid,
                                 args=(req_id,))
            self.cluster.hosts[host].machine.kill(task, "hedge")

    # ------------------------------------------------------------------
    # failover stranding
    # ------------------------------------------------------------------
    def try_strand(self, spec: RequestSpec, host: int) -> bool:
        """An attempt died with a failed host: park it for re-dispatch
        at the next health poll, within the per-request failover cap."""
        if not self.config.failover:
            return False
        req_id = spec.req_id
        n = self._failovers.get(req_id, 0)
        if n >= self.config.max_failovers:
            return False
        self._failovers[req_id] = n + 1
        self._stranded.append((spec, host))
        return True

    # ------------------------------------------------------------------
    # retry budget
    # ------------------------------------------------------------------
    def allow_retry(self, req_id: int, attempt: int) -> bool:
        budget = self.config.retry_budget
        if budget is None:
            return True
        now = self.sim.now
        if now > self._tokens_at:
            rate_per_us = budget.rate_per_sec / 1_000_000.0
            self._tokens = min(float(budget.burst),
                               self._tokens + (now - self._tokens_at)
                               * rate_per_us)
            self._tokens_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def on_throttled(self) -> None:
        if self._metrics_on:
            self._m_throttled.inc()

    def on_host_lost(self) -> None:
        if self._metrics_on:
            self._m_host_lost.inc()

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def sample_gauges(self, trace, now: int) -> None:
        unhealthy = sum(1 for ok in self.cluster._view if not ok)
        trace.emit(now, tev.GAUGE_UNHEALTHY, args=(unhealthy,))
        if self.config.retry_budget is not None:
            trace.emit(now, tev.GAUGE_RETRY_TOKENS,
                       args=(int(self._tokens),))
