"""OpenLambda platform model (§VI, Fig 5, §IX).

Reproduces the deployment the paper ports SFS to: HTTP gateway →
OpenLambda worker → sandbox server → OS dispatch, with pre-warmed
Docker-container sandboxes (auto-scaling disabled, as in the paper) and
a UDP notification from the sandbox server to SFS carrying
``(pid, invocation timestamp)``.
"""

from repro.faas.openlambda import OpenLambdaConfig, OpenLambdaPlatform, run_openlambda
from repro.faas.overheads import HopLatency, OverheadModel
from repro.faas.sandbox import ContainerPool

__all__ = [
    "OpenLambdaPlatform",
    "OpenLambdaConfig",
    "run_openlambda",
    "OverheadModel",
    "HopLatency",
    "ContainerPool",
]
