"""Pre-warmed container sandboxes.

The paper disables OpenLambda auto-scaling and pre-warms "enough
function containers to simulate a stable-phase FaaS backend" (§VI), so
cold starts never occur and only scheduling effects are measured.  The
pool still has finite capacity per application: if every warm container
of an app is busy, the request queues FIFO at the sandbox server —
which lets tests exercise the saturation path even though the paper's
configuration avoids it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional


class ContainerPool:
    """Per-application pool of warm containers."""

    def __init__(self, capacity_per_app: int = 10_000):
        if capacity_per_app <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_per_app
        self._in_use: Dict[str, int] = {}
        self._waiters: Dict[str, Deque[Callable[[], None]]] = {}
        self.total_acquired = 0
        self.total_queued = 0

    def in_use(self, app: str) -> int:
        return self._in_use.get(app, 0)

    def acquire(self, app: str, ready: Callable[[], None]) -> None:
        """Request a container; ``ready`` fires when one is available
        (synchronously when the pool has room)."""
        used = self._in_use.get(app, 0)
        if used < self.capacity:
            self._in_use[app] = used + 1
            self.total_acquired += 1
            ready()
        else:
            self.total_queued += 1
            self._waiters.setdefault(app, deque()).append(ready)

    def release(self, app: str) -> None:
        """Return a container; hands it to the oldest waiter if any."""
        used = self._in_use.get(app, 0)
        if used <= 0:
            raise RuntimeError(f"release without acquire for app {app!r}")
        waiters = self._waiters.get(app)
        if waiters:
            ready = waiters.popleft()
            self.total_acquired += 1
            ready()  # container changes hands; in_use count unchanged
        else:
            self._in_use[app] = used - 1
