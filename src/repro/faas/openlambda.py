"""OpenLambda end-to-end pipeline (Fig 5) and its run driver.

The invocation path: client → HTTP gateway → OpenLambda worker →
sandbox server → (warm container) → OS dispatch.  When SFS is ported,
the sandbox server additionally sends SFS a UDP message with the
function process' PID and invocation timestamp (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import SFSConfig
from repro.core.sfs import SFS
from repro.faas.coldstart import ColdStartConfig, KeepAliveCache
from repro.faas.overheads import OverheadModel
from repro.faas.sandbox import ContainerPool
from repro.faults.plan import FaultPlan
from repro.faults.policy import AdmissionControl, RetryPolicy
from repro.faults.runtime import FaultRuntime
from repro.invariants.checker import resolve_checker
from repro.machine.base import MachineBase, MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine
from repro.metrics.collector import RunResult, build_records
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, make_rng
from repro.sim.task import SchedPolicy, Task
from repro.trace import events as tev
from repro.trace.gauges import attach_gauge_sampler
from repro.workload.spec import RequestSpec, Workload


@dataclass(frozen=True)
class OpenLambdaConfig:
    """Platform deployment parameters (§IX uses 72 cores)."""

    machine: MachineParams = field(default_factory=lambda: MachineParams(n_cores=72))
    engine: str = "fluid"
    scheduler: str = "cfs"  # "cfs" or "sfs"
    sfs: SFSConfig = field(default_factory=SFSConfig)
    overheads: OverheadModel = field(default_factory=OverheadModel)
    container_capacity: int = 10_000
    #: None = the paper's pre-warmed setup (zero cold starts, SVI);
    #: a ColdStartConfig enables keep-alive caching with cold-start
    #: penalties (SX's discussion, the ext-coldstart experiment).
    coldstart: Optional[ColdStartConfig] = None
    seed: int = 0
    # --- fault injection & failure handling (repro.faults) ------------
    #: what goes wrong (None = nothing injected)
    faults: Optional[FaultPlan] = None
    #: how failed attempts are retried (None = fail fast)
    retry: Optional[RetryPolicy] = None
    #: front-door load shedding (None = admit everything)
    admission: Optional[AdmissionControl] = None
    #: per-request deadline in us from arrival (None = no deadline)
    timeout: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheduler not in ("cfs", "sfs"):
            raise ValueError("OpenLambda runs use 'cfs' or 'sfs'")
        if self.engine not in ("fluid", "discrete"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (us)")

    @property
    def fault_handling(self) -> bool:
        """Does this deployment need a fault governor at all?

        False keeps the platform on the exact pre-fault code path — a
        nominal run is bit-identical to one built without repro.faults.
        """
        return (
            self.faults is not None
            or self.retry is not None
            or self.admission is not None
            or self.timeout is not None
        )

    def with_scheduler(self, scheduler: str) -> "OpenLambdaConfig":
        return replace(self, scheduler=scheduler)


class OpenLambdaPlatform:
    """Simulated OpenLambda deployment on one big host.

    ``faults`` is the run's :class:`~repro.faults.runtime.FaultRuntime`
    governor; a cluster passes one shared governor to every host, a
    standalone run lets the platform build its own.  When it is None
    (no fault configuration) every boundary check below short-circuits
    on a single attribute load, so nominal runs take the exact pre-fault
    code path.
    """

    def __init__(self, sim: Simulator, config: OpenLambdaConfig,
                 faults: Optional[FaultRuntime] = None):
        self.sim = sim
        self.config = config
        engine_cls = FluidMachine if config.engine == "fluid" else DiscreteMachine
        self.machine: MachineBase = engine_cls(sim, config.machine)
        self.sfs: Optional[SFS] = (
            SFS(self.machine, config.sfs) if config.scheduler == "sfs" else None
        )
        self.pool = ContainerPool(config.container_capacity)
        self.rng = make_rng(config.seed)
        self.coldstart: Optional[KeepAliveCache] = (
            KeepAliveCache(sim, config.coldstart, self.rng)
            if config.coldstart is not None
            else None
        )
        if faults is None and config.fault_handling:
            faults = FaultRuntime(
                sim, plan=config.faults, retry=config.retry,
                admission=config.admission, timeout=config.timeout,
            )
        self.faults = faults
        #: host failure injected: drop everything until recovery
        self.down = False
        self.pairs: List[Tuple[RequestSpec, Task]] = []
        self.machine.on_finish(self._on_finish)
        self._app_of: Dict[int, str] = {}
        self._fn_of: Dict[int, str] = {}
        self._spec_of: Dict[int, RequestSpec] = {}
        self._live: Dict[int, Task] = {}
        #: requests accepted but not yet finished (global-scheduler load)
        self.outstanding: int = 0
        #: cluster slot for gauge labelling (-1 = standalone host)
        self.host_index: int = -1
        # trace recorder + metric registry: cached at construction like
        # every instrumented layer (repro.trace / repro.obs contract)
        self._trace = sim.trace
        self._trace_on = self._trace.enabled
        self._metrics = sim.metrics
        self._metrics_on = self._metrics.enabled
        if self._metrics_on:
            self._m_invocations = self._metrics.counter(
                "repro_invocations_total", help="requests entering the gateway")
            self._m_cold_starts = self._metrics.counter(
                "repro_cold_starts_total",
                help="invocations that missed the keep-alive cache")
            self._m_coldstart_us = self._metrics.histogram(
                "repro_coldstart_us",
                help="container provisioning delay on a cache miss")

    # ------------------------------------------------------------------
    # invocation pipeline
    # ------------------------------------------------------------------
    def invoke(self, spec: RequestSpec) -> None:
        """Client HTTP request arrives at the gateway (step 1)."""
        if self.faults is not None and not self.faults.admit(spec, self.outstanding):
            return  # load shed: 429 before any work happens
        self.outstanding += 1
        if self._metrics_on:
            self._m_invocations.inc()
        self._ingress(spec)

    def _ingress(self, spec: RequestSpec) -> None:
        """One attempt (fresh or retry) enters the gateway pipeline."""
        if self.faults is not None:
            if self.faults.expired(spec):  # deadline passed while backing off
                self.outstanding -= 1
                self.faults.mark_timeout(spec)
                return
            self.faults.begin(spec)
        ov = self.config.overheads
        delay = ov.gateway.sample(self.rng) + ov.ol_worker.sample(self.rng)
        self.sim.schedule(delay, self._at_sandbox_server, spec)

    def retry_entry(self, spec: RequestSpec) -> None:
        """A retry lands on this host (possibly routed from another)."""
        self.outstanding += 1
        self._ingress(spec)

    def _at_sandbox_server(self, spec: RequestSpec) -> None:
        """OL worker forwarded the request; acquire a warm container."""
        if self.faults is not None:
            if self.faults.settled(spec.req_id):
                self.outstanding -= 1  # hedge sibling already answered
                return
            if self.down:
                self._fail_before_spawn(spec, reason="host")
                return
        self.pool.acquire(spec.app or spec.name, lambda: self._dispatch(spec))

    def _dispatch(self, spec: RequestSpec) -> None:
        """Sandbox server starts the function process in the container."""
        if self.faults is not None:
            if self.faults.settled(spec.req_id):
                self.pool.release(spec.app or spec.name)
                self.outstanding -= 1
                return
            if self.down:
                self.pool.release(spec.app or spec.name)
                self._fail_before_spawn(spec, reason="host")
                return
            if self.faults.coldstart_faulted(spec):
                # container provisioning failed: the slot is freed, the
                # attempt dies before a process ever exists
                self.pool.release(spec.app or spec.name)
                self._fail_before_spawn(spec)
                return
        ov = self.config.overheads
        delay = ov.sandbox_server.sample(self.rng)
        if self.coldstart is not None:
            # warm hit: 0; otherwise the container must be provisioned
            cold = self.coldstart.acquire(spec.name or spec.app)
            delay += cold
            if self._metrics_on and cold > 0:
                self._m_cold_starts.inc()
                self._m_coldstart_us.observe(cold)
        self.sim.schedule(delay, self._spawn, spec)

    def _spawn(self, spec: RequestSpec) -> None:
        if self.faults is not None:
            if self.faults.settled(spec.req_id):
                self.pool.release(spec.app or spec.name)
                if self.coldstart is not None:
                    self.coldstart.release(spec.name or spec.app)
                self.outstanding -= 1
                return
            if self.down:
                self.pool.release(spec.app or spec.name)
                self._fail_before_spawn(spec, reason="host")
                return
        task = spec.make_task(policy=SchedPolicy.CFS)
        self.pairs.append((spec, task))
        if self._trace_on:
            # same lifecycle mark the bare-machine runner emits, so
            # repro.why can reconstruct platform runs too
            self._trace.emit(self.sim.now, tev.TASK_SPAWN, task.tid,
                             args=(spec.name, spec.req_id))
        self._app_of[task.tid] = spec.app or spec.name
        self._fn_of[task.tid] = spec.name or spec.app
        if self.faults is not None:
            self._spec_of[task.tid] = spec
            self._live[task.tid] = task
        self.machine.spawn(task)
        if self.faults is not None:
            self.faults.arm(spec, task, self.machine)
            self.faults.note_spawn(spec, task, self.host_index)
        if self.sfs is not None:
            # UDP message (pid, invocation timestamp) to the SFS queue
            notify = self.config.overheads.udp_notify.sample(self.rng)
            self.sim.schedule(notify, self.sfs.submit, task, spec.arrival)

    def _on_finish(self, task: Task) -> None:
        app = self._app_of.pop(task.tid, None)
        if app is not None:
            self.pool.release(app)
        fn = self._fn_of.pop(task.tid, None)
        if fn is not None and self.coldstart is not None and not task.killed:
            # a killed sandbox is destroyed, not returned to the cache
            self.coldstart.release(fn)
        if self.faults is None:
            self.outstanding -= 1
            return
        self._live.pop(task.tid, None)
        spec = self._spec_of.pop(task.tid)
        delay = self.faults.on_task_end(spec, task)
        self.outstanding -= 1  # this host's involvement in the attempt ends
        if delay is not None:
            self.sim.schedule(delay, self._route_retry, spec)

    # ------------------------------------------------------------------
    # failure paths
    # ------------------------------------------------------------------
    def _fail_before_spawn(self, spec: RequestSpec,
                           reason: str = "crash") -> None:
        """The attempt died before a process existed (provisioning
        failure or the host went down mid-pipeline)."""
        self.outstanding -= 1
        delay = self.faults.fail_attempt(spec, reason=reason,
                                         host=self.host_index)
        if delay is not None:
            self.sim.schedule(delay, self._route_retry, spec)

    def _route_retry(self, spec: RequestSpec) -> None:
        """Backoff elapsed: re-dispatch, through the cluster if any."""
        router = self.faults.retry_router
        if router is not None:
            router(spec)
        else:
            self.retry_entry(spec)

    def fail_host(self) -> None:
        """Host failure: kill all in-flight work, reject the pipeline."""
        self.down = True
        for task in list(self._live.values()):
            self.machine.kill(task, "host")

    def recover_host(self) -> None:
        self.down = False

    # ------------------------------------------------------------------
    # structured tracing / metrics
    # ------------------------------------------------------------------
    def sample_gauges(self, trace, now: int) -> None:
        """Emit platform-level gauges (called by the periodic sampler).

        ``core`` carries the cluster host index (as in ``fault.host_*``
        events); -1 on a standalone deployment.
        """
        trace.emit(now, tev.GAUGE_OUTSTANDING, core=self.host_index,
                   args=(self.outstanding,))
        if self.coldstart is not None:
            trace.emit(now, tev.GAUGE_KEEPALIVE, core=self.host_index,
                       args=(self.coldstart.warm_total(),))


def run_openlambda(workload: Workload, config: OpenLambdaConfig,
                   trace=None, metrics=None) -> RunResult:
    """Replay a workload through the full OpenLambda pipeline.

    Invariant checking follows ``REPRO_INVARIANTS`` (see
    :mod:`repro.invariants`): the checker audits the machine, runqueues
    and keep-alive cache during the run and the record/arrival closure
    afterwards.  ``trace`` / ``metrics`` install a recorder / registry
    on the simulator (defaults stay the zero-overhead nulls).
    """
    checker = resolve_checker(
        None, seed=workload.meta.get("seed"),
        label=f"openlambda scheduler={config.scheduler} engine={config.engine}",
    )
    sim = Simulator(trace=trace, invariants=checker, metrics=metrics)
    platform = OpenLambdaPlatform(sim, config)
    attach_gauge_sampler(sim, platform.machine, platform.sfs,
                         extra=(platform,))
    for spec in workload:
        sim.schedule_at(spec.arrival, platform.invoke, spec)
    sim.run()
    unfinished = [s.req_id for s, t in platform.pairs if not t.finished]
    if unfinished:
        raise RuntimeError(
            f"{len(unfinished)} OpenLambda requests never finished "
            f"(first: {unfinished[:5]})"
        )
    sfs = platform.sfs
    meta = dict(workload.meta)
    meta["events_executed"] = sim.events_executed
    if platform.coldstart is not None:
        meta["coldstart_stats"] = platform.coldstart.stats
    if platform.faults is not None:
        meta["fault_stats"] = platform.faults.stats.as_dict()
    records = build_records(platform.pairs, faults=platform.faults)
    if checker.enabled:
        checker.check_accounting(
            workload, records,
            platform.faults.stats.as_dict() if platform.faults is not None else None,
        )
        meta["invariant_checks"] = checker.summary()
    return RunResult(
        scheduler=f"openlambda+{config.scheduler}",
        engine=config.engine,
        records=records,
        sim_time=sim.now,
        busy_time=platform.machine.busy_time,
        n_cores=platform.machine.n_cores,
        sfs_stats=sfs.stats if sfs else None,
        slice_timeline=list(sfs.monitor.timeline) if sfs else None,
        queue_delay_samples=sfs.delay_samples() if sfs else None,
        overhead=sfs.overhead if sfs else None,
        meta=meta,
    )
