"""Multi-host FaaS cluster with a global dispatcher (paper future work).

§VIII-A closes with: "Longer functions could be potentially offloaded
to relatively lighter-loaded FaaS servers by the global FaaS scheduler
to mitigate the performance impact, which we plan to investigate as
part of our future work."  This module builds that investigation:

* a cluster of :class:`repro.faas.openlambda.OpenLambdaPlatform` hosts
  sharing one virtual clock;
* a global dispatcher with pluggable placement policies:

  - ``round_robin``  — the baseline spray;
  - ``least_loaded`` — host with the fewest outstanding *requests*;
  - ``least_work``   — host with the least outstanding *predicted CPU
    work* (demand-aware; predictions from
    :class:`repro.core.predictor.DurationPredictor` history);
  - ``offload_long`` — the paper's proposal: short functions spread by
    request count, predicted-long functions go to the host with the
    least outstanding work — "relatively lighter-loaded" in the sense
    that matters to a long function.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.predictor import DurationPredictor
from repro.faas.openlambda import OpenLambdaConfig, OpenLambdaPlatform
from repro.faas.resilience import ResilienceConfig, ResilienceRuntime
from repro.faults.runtime import FaultRuntime
from repro.invariants.checker import resolve_checker
from repro.metrics.collector import RunResult, build_records
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.sim.units import MS
from repro.trace.gauges import attach_gauge_sampler
from repro.workload.spec import RequestSpec, Workload

PLACEMENT_POLICIES = ("round_robin", "least_loaded", "least_work", "offload_long")


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster layout and placement policy."""

    n_hosts: int = 4
    host: OpenLambdaConfig = field(default_factory=OpenLambdaConfig)
    placement: str = "least_loaded"
    #: predicted CPU demand above which a function counts as "long"
    #: (Table I's gap: nothing lives between 400 ms and 1550 ms).
    long_threshold: int = 400 * MS
    #: per-host relative CPU speeds for heterogeneous clusters (empty =
    #: homogeneous); must be length ``n_hosts``, each in (0, 1].  These
    #: compose multiplicatively with ``FaultPlan.straggler_speed`` — a
    #: permanently-slow host and a transiently-degraded one are
    #: different statements.
    host_speeds: Tuple[float, ...] = ()
    #: failover / hedging / retry-budget policy (None = the fragile
    #: dispatcher: no health checks, stranded work goes host_lost)
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        if self.n_hosts <= 0:
            raise ValueError("n_hosts must be positive")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.long_threshold <= 0:
            raise ValueError("long_threshold must be positive")
        try:
            object.__setattr__(
                self, "host_speeds",
                tuple(float(s) for s in self.host_speeds),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"host_speeds must be numbers, got {self.host_speeds!r}: "
                f"{exc}"
            ) from None
        if self.host_speeds and len(self.host_speeds) != self.n_hosts:
            raise ValueError(
                f"host_speeds has {len(self.host_speeds)} entries for "
                f"{self.n_hosts} hosts; give one speed per host (or none)"
            )
        for i, s in enumerate(self.host_speeds):
            # the explicit != ordering also rejects NaN speeds
            if not (0.0 < s <= 1.0) or s != s:
                raise ValueError(
                    f"host_speeds[{i}] = {s} not in (0, 1] (1.0 = nominal)"
                )


class FaaSCluster:
    """Several OpenLambda hosts behind one global dispatcher."""

    def __init__(self, sim: Simulator, config: ClusterConfig):
        self.sim = sim
        self.config = config
        plan = config.host.faults
        #: one shared governor for the whole cluster (or None): retry
        #: routing must go back through placement, not pin to a host.
        #: A resilience policy forces a governor even with a null fault
        #: config — hedging alone needs attempt accounting.
        self.faults: Optional[FaultRuntime] = (
            FaultRuntime(
                sim, plan=plan, retry=config.host.retry,
                admission=config.host.admission, timeout=config.host.timeout,
            )
            if config.host.fault_handling or config.resilience is not None
            else None
        )
        self.hosts: List[OpenLambdaPlatform] = []
        for i in range(config.n_hosts):
            host_cfg = replace(config.host, seed=config.host.seed + i)
            speed = config.host_speeds[i] if config.host_speeds else 1.0
            if plan is not None:
                speed *= plan.straggler_speed(i)
            if speed != 1.0:
                host_cfg = replace(
                    host_cfg, machine=replace(host_cfg.machine, speed=speed)
                )
            self.hosts.append(OpenLambdaPlatform(sim, host_cfg, faults=self.faults))
        #: ground-truth liveness, flipped exactly at the fault window edges
        self._alive: List[bool] = [True] * config.n_hosts
        #: the *dispatcher's* view of liveness.  Without resilience it is
        #: the same list object (placement reacts instantly, the legacy
        #: behaviour); with resilience it is a separate copy that only
        #: the health poller updates, so detection latency is simulated.
        self._view: List[bool] = self._alive
        self.resilience: Optional[ResilienceRuntime] = None
        if config.resilience is not None:
            self._view = list(self._alive)
            self.resilience = ResilienceRuntime(
                sim, config.resilience, self, self.faults)
            self.faults.resilience = self.resilience
            self.resilience.attach()
        if self.faults is not None:
            self.faults.retry_router = self._redispatch
            if plan is not None:
                for host, down_at, up_at in plan.expanded_host_failures():
                    if host >= config.n_hosts:
                        raise ValueError(
                            f"host failure targets host {host} but the "
                            f"cluster has {config.n_hosts} hosts"
                        )
                    sim.schedule_at(down_at, self._host_down, host)
                    sim.schedule_at(up_at, self._host_up, host)
        self._rr = 0
        for idx, host in enumerate(self.hosts):
            host.host_index = idx  # gauge labelling (see sample_gauges)
        # metric registry: cached like the trace recorder (repro.obs)
        self._metrics = sim.metrics
        self._metrics_on = self._metrics.enabled
        if self._metrics_on:
            self._m_dispatch = [
                self._metrics.counter(
                    "repro_cluster_dispatch_total",
                    help="requests placed on this host",
                    labels={"host": str(i)})
                for i in range(config.n_hosts)
            ]
        self.predictor = DurationPredictor()
        #: per-host outstanding predicted CPU work (us) — an estimator:
        #: credit the prediction at dispatch, debit the measured CPU at
        #: finish, and reset whenever the host fully drains (so the
        #: prediction-vs-actual residue cannot accumulate).
        self._work: List[float] = [0.0] * config.n_hosts
        self.placements: List[int] = []
        for idx, host in enumerate(self.hosts):
            host.machine.on_finish(
                lambda task, idx=idx: self._on_host_finish(idx, task)
            )

    # ------------------------------------------------------------------
    def dispatch(self, spec: RequestSpec) -> None:
        """Global scheduler: pick a host and forward the invocation."""
        idx = self._place(spec)
        self.placements.append(idx)
        if self._metrics_on:
            self._m_dispatch[idx].inc()
        self._work[idx] += self.predictor.predict(spec.name or spec.app)
        self.hosts[idx].invoke(spec)
        if self.resilience is not None:
            self.resilience.after_dispatch(spec, idx)

    def _redispatch(self, spec: RequestSpec) -> int:
        """Retry routing: place the attempt fresh (a failed host must
        not get its own retries back while it is down)."""
        idx = self._place(spec)
        self._work[idx] += self.predictor.predict(spec.name or spec.app)
        self.hosts[idx].retry_entry(spec)
        return idx

    def _hedge_dispatch(self, spec: RequestSpec, idx: int) -> None:
        """Launch a hedged backup attempt on a chosen healthy host."""
        if self._metrics_on:
            self._m_dispatch[idx].inc()
        self._work[idx] += self.predictor.predict(spec.name or spec.app)
        self.hosts[idx].retry_entry(spec)

    def _host_down(self, idx: int) -> None:
        self._alive[idx] = False
        self.faults.note_host_down(idx)
        self.hosts[idx].fail_host()

    def _host_up(self, idx: int) -> None:
        self._alive[idx] = True
        self.faults.note_host_up(idx)
        self.hosts[idx].recover_host()

    def _place(self, spec: RequestSpec) -> int:
        policy = self.config.placement
        if policy == "round_robin":
            for _ in range(len(self.hosts)):
                idx = self._rr % len(self.hosts)
                self._rr += 1
                if self._view[idx]:
                    return idx
            return idx  # every host down: park it on the last candidate
        if policy == "least_loaded":
            return self._argmin(lambda i: self.hosts[i].outstanding)
        if policy == "least_work":
            return self._argmin(lambda i: self._work[i])
        # offload_long
        predicted = self.predictor.predict(spec.name or spec.app)
        if predicted >= self.config.long_threshold:
            return self._argmin(lambda i: self._work[i])
        return self._argmin(lambda i: self.hosts[i].outstanding)

    def _argmin(self, key) -> int:
        """Least-``key`` host the *dispatcher believes* alive (any host
        when it believes none are — the pipeline then fails the attempt
        at the dead host's door)."""
        best, best_val = None, None
        for i in range(len(self.hosts)):
            if not self._view[i]:
                continue
            v = key(i)
            if best_val is None or v < best_val:
                best, best_val = i, v
        return best if best is not None else 0

    def _on_host_finish(self, idx: int, task: Task) -> None:
        if idx >= len(self.hosts):  # host vanished (defensive)
            return
        if task.cpu_time > 0 and not task.killed:
            # killed attempts are truncated samples: feeding them to the
            # predictor would bias every placement decision downward
            self.predictor.observe(task.name or task.app, task.cpu_time)
        self._work[idx] = max(0.0, self._work[idx] - task.cpu_time)
        if self.hosts[idx].outstanding == 0:
            self._work[idx] = 0.0  # drained: flush estimator residue

    # ------------------------------------------------------------------
    @property
    def pairs(self):
        out = []
        for host in self.hosts:
            out.extend(host.pairs)
        return out


def run_cluster(workload: Workload, config: ClusterConfig,
                trace=None, metrics=None, invariants=None) -> RunResult:
    """Replay a workload through the cluster; records merged across hosts.

    Invariant checking follows ``REPRO_INVARIANTS`` (see
    :mod:`repro.invariants`) unless ``invariants`` forces it; one
    checker audits every host machine.  ``trace`` / ``metrics`` install
    a recorder / registry on the shared simulator; per-host gauges
    (outstanding, keep-alive occupancy) are labelled by host index.
    """
    checker = resolve_checker(
        invariants, seed=workload.meta.get("seed"),
        label=f"cluster[{config.placement}] scheduler={config.host.scheduler}",
    )
    sim = Simulator(trace=trace, invariants=checker, metrics=metrics)
    cluster = FaaSCluster(sim, config)
    extra = list(cluster.hosts)
    if cluster.resilience is not None:
        extra.append(cluster.resilience)
    attach_gauge_sampler(sim, extra=extra)
    for spec in workload:
        sim.schedule_at(spec.arrival, cluster.dispatch, spec)
    sim.run()
    pairs = cluster.pairs
    unfinished = [s.req_id for s, t in pairs if not t.finished]
    if unfinished:
        raise RuntimeError(f"{len(unfinished)} cluster requests never finished")
    total_busy = sum(h.machine.busy_time for h in cluster.hosts)
    total_cores = sum(h.machine.n_cores for h in cluster.hosts)
    meta = {
        "placement": config.placement,
        "n_hosts": config.n_hosts,
        "placements": cluster.placements,
        "events_executed": sim.events_executed,
    }
    if config.host_speeds:
        meta["host_speeds"] = list(config.host_speeds)
    if config.resilience is not None:
        meta["resilience"] = config.resilience.to_json()
    if cluster.faults is not None:
        meta["fault_stats"] = cluster.faults.stats.as_dict()
    records = build_records(pairs, faults=cluster.faults)
    if checker.enabled:
        checker.check_accounting(
            workload, records,
            cluster.faults.stats.as_dict() if cluster.faults is not None else None,
        )
        meta["invariant_checks"] = checker.summary()
    return RunResult(
        scheduler=f"cluster[{config.placement}]+{config.host.scheduler}",
        engine=config.host.engine,
        records=records,
        sim_time=sim.now,
        busy_time=total_busy,
        n_cores=total_cores,
        meta=meta,
    )
