"""Cold starts and keep-alive container caching (paper §X).

The paper's evaluation pre-warms containers so that only scheduling is
measured, but §X discusses the interaction: "Significant function cold
start costs may offset the benefit of SFS, especially for short
functions", citing that a naive keep-alive policy already yields zero
cold starts for ~50 % of applications and smarter policies push the
cold-start rate below 10 %.

This module implements that machinery so the claim can be measured:

* a per-application **warm-container cache** with a fixed keep-alive
  TTL (the Azure paper's "naive keep-alive" baseline);
* cold-start penalties drawn from a configurable distribution
  (container + runtime initialisation, typically 100 ms - several s);
* an unlimited ``prewarmed`` mode reproducing the paper's evaluation
  setup (zero cold starts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.faas.overheads import HopLatency
from repro.sim.engine import EventHandle, Simulator
from repro.sim.units import MS, SEC


@dataclass(frozen=True)
class ColdStartConfig:
    """Keep-alive cache parameters."""

    #: how long an idle warm container is kept before teardown.
    keep_alive: int = 10 * 60 * SEC  # Azure's classic 10-minute policy
    #: cold-start penalty distribution (container + runtime init).
    penalty: HopLatency = field(default_factory=lambda: HopLatency(600 * MS, 0.5))
    #: hard cap on warm containers kept per application (memory bound).
    max_warm_per_app: int = 1000

    def __post_init__(self) -> None:
        if self.keep_alive <= 0:
            raise ValueError("keep_alive must be positive")
        if self.max_warm_per_app <= 0:
            raise ValueError("max_warm_per_app must be positive")


@dataclass
class ColdStartStats:
    cold_starts: int = 0
    warm_hits: int = 0
    expirations: int = 0

    @property
    def requests(self) -> int:
        return self.cold_starts + self.warm_hits

    @property
    def cold_rate(self) -> float:
        total = self.requests
        return self.cold_starts / total if total else 0.0


class _WarmContainer:
    __slots__ = ("expiry_handle",)

    def __init__(self, expiry_handle: Optional[EventHandle]):
        self.expiry_handle = expiry_handle


class KeepAliveCache:
    """Fixed-TTL warm-container cache, one pool per application."""

    def __init__(self, sim: Simulator, config: ColdStartConfig,
                 rng: np.random.Generator):
        self.sim = sim
        self.config = config
        self.rng = rng
        self._idle: Dict[str, List[_WarmContainer]] = {}
        self.stats = ColdStartStats()
        # runtime invariant checker (see repro.invariants): cached like
        # the trace recorder so the disabled path costs one branch
        self._inv = sim.invariants
        self._inv_on = self._inv.enabled

    def acquire(self, app: str) -> int:
        """Take a container for ``app``.

        Returns the startup delay in microseconds: 0 on a warm hit, a
        sampled cold-start penalty otherwise.
        """
        idle = self._idle.get(app)
        if idle:
            container = idle.pop()
            if container.expiry_handle is not None:
                container.expiry_handle.cancel()
            self.stats.warm_hits += 1
            if self._inv_on:
                self._inv.on_warm_cache(self, app)
            return 0
        self.stats.cold_starts += 1
        return self.config.penalty.sample(self.rng)

    def release(self, app: str) -> None:
        """Return a container; it stays warm until the TTL elapses."""
        idle = self._idle.setdefault(app, [])
        if len(idle) >= self.config.max_warm_per_app:
            return  # over the memory cap: tear down immediately
        container = _WarmContainer(None)
        container.expiry_handle = self.sim.schedule(
            self.config.keep_alive, self._expire, app, container
        )
        idle.append(container)
        if self._inv_on:
            self._inv.on_warm_cache(self, app)

    def _expire(self, app: str, container: _WarmContainer) -> None:
        idle = self._idle.get(app, [])
        if container in idle:
            idle.remove(container)
            self.stats.expirations += 1
            if self._inv_on:
                self._inv.on_warm_cache(self, app)

    def warm_count(self, app: str) -> int:
        return len(self._idle.get(app, []))

    def warm_total(self) -> int:
        """Warm containers across all applications (occupancy gauge)."""
        return sum(len(idle) for idle in self._idle.values())
