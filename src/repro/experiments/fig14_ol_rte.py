"""Fig 14: OpenLambda RTE CDFs.

Reports both the paper's RTE (CPU demand / turnaround — which tops out
below 1 for md/sa, as the paper notes) and the normalized variant
(ideal duration / turnaround) whose ceiling is 1 for every app.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.report import format_table
from repro.experiments import openlambda_sweep
from repro.metrics.stats import fraction_at_least, fraction_below

Config = openlambda_sweep.Config
Result = openlambda_sweep.Result
run = openlambda_sweep.run


def render(result: Result) -> str:
    rows = []
    for load, by_sched in result.runs.items():
        for name, r in by_sched.items():
            rte = r.rtes
            rten = r.array("rte_normalized")
            rows.append(
                (
                    f"{load:.0%}",
                    f"OL+{name}",
                    f"{float(np.median(rte)):.3f}",
                    f"{fraction_below(rte, 0.2):.3f}",
                    f"{float(np.median(rten)):.3f}",
                    f"{fraction_at_least(rten, 0.95):.3f}",
                )
            )
    return format_table(
        [
            "load",
            "system",
            "median RTE",
            "P(RTE<0.2)",
            "median nRTE",
            "P(nRTE>=0.95)",
        ],
        rows,
        title="Fig 14: OpenLambda run-time effectiveness (nRTE = vs CPU+I/O ideal)",
    )
