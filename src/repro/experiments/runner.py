"""Shared experiment driver: replay one workload under one scheduler.

The same :class:`repro.workload.spec.Workload` can be executed under
``cfs`` / ``fifo`` / ``rr`` (plain kernel classes), ``sfs`` (CFS +
the user-space SFS layer), ``srtf`` (the clairvoyant oracle) or
``ideal`` (infinite resources), on either machine engine.  Per-request
results come back as a :class:`repro.metrics.collector.RunResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import SFSConfig
from repro.core.sfs import SFS
from repro.machine.base import MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine
from repro.metrics.collector import RunResult, build_records
from repro.sched.ideal import IdealMachine
from repro.sched.srtf import SRTFMachine
from repro.sim.engine import Simulator
from repro.sim.task import SchedPolicy, Task
from repro.trace import RunManifest, attach_gauge_sampler
from repro.trace import events as tev
from repro.workload.spec import RequestSpec, Workload

SCHEDULERS = ("cfs", "fifo", "rr", "sfs", "srtf", "ideal")
ENGINES = {"fluid": FluidMachine, "discrete": DiscreteMachine}

_POLICY_FOR = {
    "cfs": SchedPolicy.CFS,
    "fifo": SchedPolicy.FIFO,
    "rr": SchedPolicy.RR,
    "sfs": SchedPolicy.CFS,  # functions start in CFS; SFS promotes them
}


@dataclass(frozen=True)
class RunConfig:
    """How to execute a workload."""

    scheduler: str = "cfs"
    engine: str = "fluid"
    machine: MachineParams = field(default_factory=MachineParams)
    sfs: SFSConfig = field(default_factory=SFSConfig)
    #: FaaS-server -> SFS notification latency (the paper's UDP message,
    #: "hundreds of microseconds" §VI).
    notify_latency: int = 200

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.notify_latency < 0:
            raise ValueError("notify_latency must be >= 0")

    def with_scheduler(self, scheduler: str) -> "RunConfig":
        return replace(self, scheduler=scheduler)


def _make_machine(sim: Simulator, cfg: RunConfig):
    if cfg.scheduler == "srtf":
        return SRTFMachine(sim, cfg.machine)
    if cfg.scheduler == "ideal":
        return IdealMachine(sim, cfg.machine)
    return ENGINES[cfg.engine](sim, cfg.machine)


def run_workload(
    workload: Workload, cfg: RunConfig, trace: Optional[object] = None
) -> RunResult:
    """Execute ``workload`` under ``cfg`` and collect per-request records.

    Pass a :class:`repro.trace.TraceRecorder` as ``trace`` to capture the
    structured event stream; the default records nothing and costs one
    predicted branch per instrumentation site.
    """
    wall_start = time.perf_counter()
    sim = Simulator(trace=trace)
    tr = sim.trace
    machine = _make_machine(sim, cfg)
    sfs: Optional[SFS] = None
    if cfg.scheduler == "sfs":
        sfs = SFS(machine, cfg.sfs)
    attach_gauge_sampler(sim, machine, sfs)

    policy = _POLICY_FOR.get(cfg.scheduler, SchedPolicy.CFS)
    pairs: List[Tuple[RequestSpec, Task]] = []

    def dispatch(spec: RequestSpec) -> None:
        task = spec.make_task(policy=policy)
        pairs.append((spec, task))
        if tr.enabled:
            tr.emit(sim.now, tev.TASK_SPAWN, task.tid,
                    args=(spec.name, spec.req_id))
        machine.spawn(task)
        if sfs is not None:
            if cfg.notify_latency > 0:
                sim.schedule(cfg.notify_latency, sfs.submit, task, spec.arrival)
            else:
                sfs.submit(task, spec.arrival)

    for spec in workload:
        sim.schedule_at(spec.arrival, dispatch, spec)
    sim.run()

    unfinished = [s.req_id for s, t in pairs if not t.finished]
    if unfinished:
        raise RuntimeError(
            f"{len(unfinished)} requests never finished under "
            f"{cfg.scheduler}/{cfg.engine} (first: {unfinished[:5]})"
        )

    manifest = RunManifest.build(
        run_config=cfg,
        workload=workload,
        sim=sim,
        n_cores=machine.n_cores,
        wall_time_s=time.perf_counter() - wall_start,
        trace=trace,
    )
    return RunResult(
        scheduler=cfg.scheduler,
        engine=cfg.engine,
        records=build_records(pairs),
        sim_time=sim.now,
        busy_time=machine.busy_time,
        n_cores=machine.n_cores,
        sfs_stats=sfs.stats if sfs else None,
        slice_timeline=list(sfs.monitor.timeline) if sfs else None,
        queue_delay_samples=sfs.delay_samples() if sfs else None,
        overhead=sfs.overhead if sfs else None,
        meta=dict(workload.meta),
        manifest=manifest,
    )


def run_many(
    workload: Workload, base: RunConfig, schedulers: Tuple[str, ...]
) -> Dict[str, RunResult]:
    """Replay the same workload under several schedulers (paired runs)."""
    return {s: run_workload(workload, base.with_scheduler(s)) for s in schedulers}
