"""Shared experiment driver: replay one workload under one scheduler.

The same :class:`repro.workload.spec.Workload` can be executed under
``cfs`` / ``fifo`` / ``rr`` (plain kernel classes), ``sfs`` (CFS +
the user-space SFS layer), ``srtf`` (the clairvoyant oracle) or
``ideal`` (infinite resources), on either machine engine.  Per-request
results come back as a :class:`repro.metrics.collector.RunResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import SFSConfig
from repro.core.sfs import SFS
from repro.faults.plan import FaultPlan
from repro.faults.policy import AdmissionControl, RetryPolicy
from repro.faults.runtime import FaultRuntime
from repro.invariants.checker import resolve_checker
from repro.machine.base import MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine
from repro.metrics.collector import RunResult, build_records
from repro.sched.ideal import IdealMachine
from repro.sched.srtf import SRTFMachine
from repro.sim.engine import Simulator
from repro.sim.task import SchedPolicy, Task
from repro.trace import RunManifest, attach_gauge_sampler
from repro.trace import events as tev
from repro.workload.spec import RequestSpec, Workload

SCHEDULERS = ("cfs", "fifo", "rr", "sfs", "srtf", "ideal")
ENGINES = {"fluid": FluidMachine, "discrete": DiscreteMachine}

_POLICY_FOR = {
    "cfs": SchedPolicy.CFS,
    "fifo": SchedPolicy.FIFO,
    "rr": SchedPolicy.RR,
    "sfs": SchedPolicy.CFS,  # functions start in CFS; SFS promotes them
}


@dataclass(frozen=True)
class RunConfig:
    """How to execute a workload."""

    scheduler: str = "cfs"
    engine: str = "fluid"
    machine: MachineParams = field(default_factory=MachineParams)
    sfs: SFSConfig = field(default_factory=SFSConfig)
    #: FaaS-server -> SFS notification latency (the paper's UDP message,
    #: "hundreds of microseconds" §VI).
    notify_latency: int = 200
    # --- fault injection & failure handling (repro.faults) ------------
    #: what goes wrong; stragglers apply to host 0 (the only host),
    #: host fail/recover windows need a cluster and are ignored here
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    admission: Optional[AdmissionControl] = None
    #: per-request deadline in us from arrival (None = no deadline)
    timeout: Optional[int] = None
    #: runtime invariant checking (repro.invariants): True forces the
    #: checker on, False forces it off, None (default) defers to the
    #: ``REPRO_INVARIANTS`` environment variable (CI sets it)
    invariants: Optional[bool] = None
    #: runaway guard: abort with :class:`repro.sim.engine.SimulationError`
    #: if the run executes more than this many events (None = unbounded,
    #: the exact nominal path).  Armed per-case by the fuzz harness so a
    #: livelocked schedule fails loudly instead of spinning forever.
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.notify_latency < 0:
            raise ValueError("notify_latency must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (us)")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError("max_events must be positive")

    @property
    def fault_handling(self) -> bool:
        """Does this run need a fault governor at all?  False keeps the
        dispatch loop on the exact pre-fault code path."""
        return (
            self.faults is not None
            or self.retry is not None
            or self.admission is not None
            or self.timeout is not None
        )

    def with_scheduler(self, scheduler: str) -> "RunConfig":
        return replace(self, scheduler=scheduler)


def _make_machine(sim: Simulator, cfg: RunConfig):
    if cfg.scheduler == "srtf":
        return SRTFMachine(sim, cfg.machine)
    if cfg.scheduler == "ideal":
        return IdealMachine(sim, cfg.machine)
    return ENGINES[cfg.engine](sim, cfg.machine)


def run_workload(
    workload: Workload, cfg: RunConfig, trace: Optional[object] = None,
    metrics: Optional[object] = None, audit: Optional[object] = None,
) -> RunResult:
    """Execute ``workload`` under ``cfg`` and collect per-request records.

    Pass a :class:`repro.trace.TraceRecorder` as ``trace`` to capture the
    structured event stream, and/or a
    :class:`repro.obs.MetricsRegistry` as ``metrics`` to aggregate
    streaming instruments, and/or a :class:`repro.why.AuditLog` as
    ``audit`` to capture scheduler decisions; all default to the
    zero-overhead nulls and cost one predicted branch per
    instrumentation site.  The hooks are read-only, so records are
    identical either way.
    """
    wall_start = time.perf_counter()
    label = f"scheduler={cfg.scheduler} engine={cfg.engine}"
    checker = resolve_checker(
        cfg.invariants, seed=workload.meta.get("seed"), label=label,
    )
    sim = Simulator(trace=trace, invariants=checker, metrics=metrics,
                    label=label, audit=audit)
    tr = sim.trace
    if cfg.faults is not None:
        # a straggler entry for host 0 degrades this (single) machine
        speed = cfg.faults.straggler_speed(0)
        if speed != 1.0:
            cfg = replace(cfg, machine=replace(cfg.machine, speed=speed))
    machine = _make_machine(sim, cfg)
    sfs: Optional[SFS] = None
    if cfg.scheduler == "sfs":
        sfs = SFS(machine, cfg.sfs)
    attach_gauge_sampler(sim, machine, sfs)

    governor: Optional[FaultRuntime] = None
    if cfg.fault_handling:
        governor = FaultRuntime(
            sim, plan=cfg.faults, retry=cfg.retry,
            admission=cfg.admission, timeout=cfg.timeout,
        )

    policy = _POLICY_FOR.get(cfg.scheduler, SchedPolicy.CFS)
    pairs: List[Tuple[RequestSpec, Task]] = []
    spec_of: Dict[int, RequestSpec] = {}
    outstanding = [0]  # dispatched-but-unfinished requests (admission)

    def dispatch(spec: RequestSpec) -> None:
        task = spec.make_task(policy=policy)
        pairs.append((spec, task))
        if tr.enabled:
            tr.emit(sim.now, tev.TASK_SPAWN, task.tid,
                    args=(spec.name, spec.req_id))
        if governor is not None:
            spec_of[task.tid] = spec
        machine.spawn(task)
        if governor is not None:
            governor.arm(spec, task, machine)
        if sfs is not None:
            if cfg.notify_latency > 0:
                sim.schedule(cfg.notify_latency, sfs.submit, task, spec.arrival)
            else:
                sfs.submit(task, spec.arrival)

    # --- fault-handling wrappers (dead code on the nominal path) ------
    def arrive(spec: RequestSpec) -> None:
        if not governor.admit(spec, outstanding[0]):
            return
        outstanding[0] += 1
        ingress(spec)

    def ingress(spec: RequestSpec) -> None:
        if governor.expired(spec):  # deadline passed while backing off
            outstanding[0] -= 1
            governor.mark_timeout(spec)
            return
        governor.begin(spec)
        if governor.coldstart_faulted(spec):  # spawn/provisioning failure
            outstanding[0] -= 1
            delay = governor.fail_attempt(spec)
            if delay is not None:
                sim.schedule(delay, retry_entry, spec)
            return
        dispatch(spec)

    def retry_entry(spec: RequestSpec) -> None:
        outstanding[0] += 1
        ingress(spec)

    def on_finish(task: Task) -> None:
        spec = spec_of.pop(task.tid)
        delay = governor.on_task_end(spec, task)
        outstanding[0] -= 1
        if delay is not None:
            sim.schedule(delay, retry_entry, spec)

    if governor is not None:
        machine.on_finish(on_finish)

    entry = dispatch if governor is None else arrive
    for spec in workload:
        sim.schedule_at(spec.arrival, entry, spec)
    sim.run(max_events=cfg.max_events)

    unfinished = [s.req_id for s, t in pairs if not t.finished]
    if unfinished:
        raise RuntimeError(
            f"{len(unfinished)} requests never finished under "
            f"{cfg.scheduler}/{cfg.engine} (first: {unfinished[:5]})"
        )

    manifest = RunManifest.build(
        run_config=cfg,
        workload=workload,
        sim=sim,
        n_cores=machine.n_cores,
        wall_time_s=time.perf_counter() - wall_start,
        trace=trace,
    )
    meta = dict(workload.meta)
    if governor is not None:
        meta["fault_stats"] = governor.stats.as_dict()
    records = build_records(pairs, faults=governor)
    if checker.enabled:
        checker.check_accounting(
            workload, records,
            governor.stats.as_dict() if governor is not None else None,
        )
        meta["invariant_checks"] = checker.summary()
    return RunResult(
        scheduler=cfg.scheduler,
        engine=cfg.engine,
        records=records,
        sim_time=sim.now,
        busy_time=machine.busy_time,
        n_cores=machine.n_cores,
        sfs_stats=sfs.stats if sfs else None,
        slice_timeline=list(sfs.monitor.timeline) if sfs else None,
        queue_delay_samples=sfs.delay_samples() if sfs else None,
        overhead=sfs.overhead if sfs else None,
        meta=meta,
        manifest=manifest,
    )


def _pool_run_workload(payload) -> RunResult:
    """Module-level pool task: one (workload, config) replay.

    Payloads are shipped pickled, not JSON — a quarantined entry keeps
    only its repr, so paired-run pools are supervised and retried but
    their poison is diagnosable rather than replayable.
    """
    workload, cfg = payload
    return run_workload(workload, cfg)


def run_many(
    workload: Workload, base: RunConfig, schedulers: Tuple[str, ...],
    workers: int = 0,
) -> Dict[str, RunResult]:
    """Replay the same workload under several schedulers (paired runs).

    ``workers > 0`` fans the schedulers out across a supervised
    :func:`repro.pool.run_pool` — each replay is deterministic given
    (workload, config), so the parallel dict equals the serial one.
    """
    if workers > 0 and len(schedulers) > 1:
        from repro.pool import PoolConfig, PoolError, run_pool

        report = run_pool(
            [(s, (workload, base.with_scheduler(s))) for s in schedulers],
            _pool_run_workload,
            PoolConfig(workers=min(workers, len(schedulers))),
        )
        if not report.complete:
            bad = ", ".join(o.item_id for o in report.quarantined)
            raise PoolError(f"paired runs quarantined: {bad}")
        return dict(zip(schedulers, report.results))
    return {s: run_workload(workload, base.with_scheduler(s)) for s in schedulers}


def run_bundled(
    workload: Workload, cfg: RunConfig, metrics: Optional[object] = None,
    title: Optional[str] = None, gauge_interval: int = 10_000,
):
    """Execute with tracing on and also return the explorer bundle.

    Returns ``(RunResult, RunBundle)`` — the bundle fuses the trace,
    the registry snapshot (when one is passed), the scheduler-decision
    audit stream, and the run manifest, ready for
    :func:`repro.explore.write_explorer` or ``bundle.save``.
    """
    from repro.explore import RunBundle
    from repro.trace import TraceRecorder
    from repro.why import AuditLog

    recorder = TraceRecorder(gauge_interval=gauge_interval)
    audit = AuditLog()
    res = run_workload(workload, cfg, trace=recorder, metrics=metrics,
                       audit=audit)
    return res, RunBundle.capture(res, recorder, metrics=metrics,
                                  title=title, audit=audit)


def run_many_bundled(
    workload: Workload, base: RunConfig, schedulers: Tuple[str, ...],
    gauge_interval: int = 10_000,
):
    """Paired :func:`run_bundled` runs: ``{scheduler: (result, bundle)}``."""
    return {
        s: run_bundled(workload, base.with_scheduler(s),
                       gauge_interval=gauge_interval)
        for s in schedulers
    }
