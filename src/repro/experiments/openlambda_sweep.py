"""OpenLambda end-to-end sweep powering Figs 13-16 (§IX-A).

The comprehensive fib+md+sa workload through the full platform pipeline
(gateway -> OL worker -> sandbox -> OS) at 80/90/100 % load under
OpenLambda+CFS and OpenLambda+SFS.  The paper's anchors:

* Fig 13 — functions ran on average 14.1 % longer with CFS at 80 %
  load; SFS stays nearly identical across loads while CFS degrades;
* Fig 14 — RTE distributions;
* Fig 15 — p99 durations: SFS ~4.75 s, speedups 1.65x/4.04x/7.93x over
  CFS at 80/90/100 %;
* Fig 16 — context-switch ratio CDF: CFS switches more for > 99 % of
  requests, >= 10x more for ~85 %.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.experiments.common import azure_sampled_workload, machine
from repro.faas.openlambda import OpenLambdaConfig, run_openlambda
from repro.metrics.collector import RunResult
from repro.workload.faasbench import OPENLAMBDA_MIX


@dataclass(frozen=True)
class Config:
    n_requests: int = 30_000
    n_cores: int = 72
    loads: Tuple[float, ...] = (0.8, 0.9, 1.0)
    engine: str = "fluid"
    #: §IX reuses the Azure-sampled IAT distribution, i.e. the replayed
    #: trace including its transient spikes — the bursty process here.
    iat_kind: str = "bursty"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=8_000, n_cores=24)


@dataclass
class Result:
    #: load -> scheduler ("cfs"|"sfs") -> RunResult
    runs: Dict[float, Dict[str, RunResult]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    runs: Dict[float, Dict[str, RunResult]] = {}
    base = OpenLambdaConfig(
        machine=machine(config.n_cores), engine=config.engine, seed=seed
    )
    for load in config.loads:
        wl = azure_sampled_workload(
            config.n_requests,
            config.n_cores,
            load,
            seed=seed,
            app_mix=OPENLAMBDA_MIX,
            iat_kind=config.iat_kind,
        )
        runs[load] = {
            sched: run_openlambda(wl, base.with_scheduler(sched))
            for sched in ("cfs", "sfs")
        }
    return Result(runs=runs, config=config)
