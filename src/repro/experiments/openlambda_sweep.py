"""OpenLambda end-to-end sweep powering Figs 13-16 (§IX-A).

The comprehensive fib+md+sa workload through the full platform pipeline
(gateway -> OL worker -> sandbox -> OS) at 80/90/100 % load under
OpenLambda+CFS and OpenLambda+SFS.  The paper's anchors:

* Fig 13 — functions ran on average 14.1 % longer with CFS at 80 %
  load; SFS stays nearly identical across loads while CFS degrades;
* Fig 14 — RTE distributions;
* Fig 15 — p99 durations: SFS ~4.75 s, speedups 1.65x/4.04x/7.93x over
  CFS at 80/90/100 %;
* Fig 16 — context-switch ratio CDF: CFS switches more for > 99 % of
  requests, >= 10x more for ~85 %.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

from repro.experiments.common import azure_sampled_workload, machine
from repro.faas.openlambda import OpenLambdaConfig, run_openlambda
from repro.metrics.collector import RunResult
from repro.workload.faasbench import OPENLAMBDA_MIX


@dataclass(frozen=True)
class Config:
    n_requests: int = 30_000
    n_cores: int = 72
    loads: Tuple[float, ...] = (0.8, 0.9, 1.0)
    engine: str = "fluid"
    #: §IX reuses the Azure-sampled IAT distribution, i.e. the replayed
    #: trace including its transient spikes — the bursty process here.
    iat_kind: str = "bursty"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=8_000, n_cores=24)


@dataclass
class Result:
    #: load -> scheduler ("cfs"|"sfs") -> RunResult
    runs: Dict[float, Dict[str, RunResult]]
    config: Config


SCHEDULERS = ("cfs", "sfs")


def run_cell(config: Config, seed: int, load: float,
             scheduler: str) -> RunResult:
    """One sweep cell: one load level through the full OL pipeline
    under one scheduler; pure in ``(config, seed, load, scheduler)``."""
    wl = azure_sampled_workload(
        config.n_requests,
        config.n_cores,
        load,
        seed=seed,
        app_mix=OPENLAMBDA_MIX,
        iat_kind=config.iat_kind,
    )
    base = OpenLambdaConfig(
        machine=machine(config.n_cores), engine=config.engine, seed=seed
    )
    return run_openlambda(wl, base.with_scheduler(scheduler))


def _coerce(config: Dict[str, Any]) -> Config:
    return Config(**{**config, "loads": tuple(config["loads"])})


def _pool_cell(payload: Dict[str, Any]) -> RunResult:
    """Module-level pool task: one (load, scheduler) cell."""
    return run_cell(_coerce(payload["config"]), payload["seed"],
                    payload["load"], payload["scheduler"])


def cells(config: Config, seed: int):
    """``(cell_id, payload)`` for every sweep cell, in sweep order."""
    return [
        (f"load{load:g}.{sched}",
         {"config": asdict(config), "seed": seed, "load": load,
          "scheduler": sched})
        for load in config.loads
        for sched in SCHEDULERS
    ]


def run(config: Config, seed: int = 0, workers: int = 0) -> Result:
    runs: Dict[float, Dict[str, RunResult]] = {}
    if workers > 0:
        from repro.pool import PoolConfig, PoolError, run_pool

        report = run_pool(cells(config, seed), _pool_cell,
                          PoolConfig(workers=workers))
        if not report.complete:
            bad = ", ".join(o.item_id for o in report.quarantined)
            raise PoolError(f"sweep cells quarantined: {bad}")
        it = iter(report.results)
        for load in config.loads:
            runs[load] = {sched: next(it) for sched in SCHEDULERS}
        return Result(runs=runs, config=config)
    for load in config.loads:
        runs[load] = {
            sched: run_cell(config, seed, load, sched)
            for sched in SCHEDULERS
        }
    return Result(runs=runs, config=config)
