"""Fig 9: adaptive time-slice tuning vs statically fixed slices.

SFS's sliding-window heuristic against fixed S in {50, 100, 200} ms at
100 % load.  Paper shape: no static value wins overall — S=50 ms beats
adaptive for ~30 % of (short) requests but badly hurts the rest, while
long fixed slices inflate queuing delay; adaptive gives the best mean.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import format_cdf_probes
from repro.core.config import SFSConfig
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult
from repro.sim.units import MS


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    load: float = 1.0
    engine: str = "fluid"
    static_slices_ms: Tuple[int, ...] = (50, 100, 200)

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    runs: Dict[str, RunResult]   # "adaptive" | "S=50ms" | ...
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(config.n_requests, config.n_cores, config.load, seed)
    base = RunConfig(
        scheduler="sfs", engine=config.engine, machine=machine(config.n_cores)
    )
    runs: Dict[str, RunResult] = {}
    runs["adaptive"] = run_workload(wl, base)
    for s_ms in config.static_slices_ms:
        sfs_cfg = SFSConfig(adaptive=False, initial_slice=s_ms * MS)
        runs[f"S={s_ms}ms"] = run_workload(wl, replace(base, sfs=sfs_cfg))
    return Result(runs=runs, config=config)


def mean_turnaround(result: Result) -> Dict[str, float]:
    return {name: float(r.turnarounds.mean()) for name, r in result.runs.items()}


def render(result: Result) -> str:
    series = {name: r.turnarounds for name, r in result.runs.items()}
    table = format_cdf_probes(
        series,
        probes=(10, 30, 50, 75, 90, 99),
        title=f"Fig 9: adaptive vs fixed time slice, load {result.config.load:.0%} (ms)",
    )
    means = mean_turnaround(result)
    best = min(means, key=means.get)
    return table + f"\nbest mean turnaround: {best} ({means[best]/1e3:.1f} ms)"
