"""Extension: SFS on EEVDF (§X's "Why User-Space?" claim, tested).

The paper argues a user-space scheduler is future-proof because it
steers whatever fair class the kernel ships.  Linux 6.6 replaced CFS
with EEVDF, so the claim is now directly testable: run the same
workload under {CFS, EEVDF} x {plain, +SFS} on the discrete engine and
check that (a) the two fair classes behave comparably when plain, and
(b) SFS delivers its short-function win on both, unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np
from repro.metrics.stats import percentile

from repro.analysis.report import format_table
from repro.experiments.common import CTX_SWITCH_COST, azure_sampled_workload
from repro.experiments.runner import RunConfig, run_workload
from repro.machine.base import MachineParams
from repro.metrics.collector import RunResult


@dataclass(frozen=True)
class Config:
    n_requests: int = 5_000
    n_cores: int = 12
    load: float = 1.0
    fair_classes: Tuple[str, ...] = ("cfs", "eevdf")

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=1_500)


@dataclass
class Result:
    #: fair class -> {"plain": run, "sfs": run}
    runs: Dict[str, Dict[str, RunResult]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed
    )
    runs: Dict[str, Dict[str, RunResult]] = {}
    for fair in config.fair_classes:
        m = MachineParams(
            n_cores=config.n_cores,
            ctx_switch_cost=CTX_SWITCH_COST,
            fair_class=fair,
        )
        base = RunConfig(engine="discrete", machine=m)
        runs[fair] = {
            "plain": run_workload(wl, base),
            "sfs": run_workload(wl, base.with_scheduler("sfs")),
        }
    return Result(runs=runs, config=config)


def sfs_speedup(result: Result, fair: str) -> float:
    """Median plain/SFS turnaround ratio on the given fair class."""
    by = result.runs[fair]
    p = np.median(by["plain"].turnarounds)
    s = np.median(by["sfs"].turnarounds)
    return float(p / max(s, 1))


def render(result: Result) -> str:
    rows = []
    for fair, by in result.runs.items():
        for mode, r in by.items():
            t = r.turnarounds
            rows.append(
                (
                    fair,
                    mode,
                    f"{percentile(t, 50) / 1e3:.1f}",
                    f"{percentile(t, 90) / 1e3:.1f}",
                    f"{t.mean() / 1e3:.1f}",
                )
            )
    table = format_table(
        ["fair class", "mode", "p50 (ms)", "p90 (ms)", "mean (ms)"],
        rows,
        title="ext-eevdf: SFS is fair-class-agnostic (SX, 'Why User-Space?')",
    )
    lines = [
        f"median SFS speedup on {fair}: {sfs_speedup(result, fair):.1f}x"
        for fair in result.runs
    ]
    return table + "\n" + "\n".join(lines)
