"""The paper's headline claims, measured in one place.

* "SFS improves the execution duration of 83 % of the functions by
  49.6x on average compared to CFS; the remaining 17 % run 1.29x
  longer on average."
* "under the 100 % load, functions executed more than one order of
  magnitude slower under CFS than SRTF, with 40th/70th percentile
  slowdowns of 16x and 24x."

The improvement *fraction* and the long-function penalty are scale-free
and reproduce tightly; the 49.6x average grows with run length (it is
dominated by how much backlog CFS accumulates at rho ~ 1), so we report
it alongside the run size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import format_table
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_many
from repro.metrics.stats import (
    fraction_below,
    improvement_summary,
    slowdown_percentiles,
)


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    load: float = 1.0
    engine: str = "fluid"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=8_000)


@dataclass
class Result:
    improvement: Dict[str, float]
    cfs_vs_srtf: Dict[float, float]
    cfs_rte_below_02: float
    sfs_rte_below_02: float
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(config.n_requests, config.n_cores, config.load, seed)
    base = RunConfig(engine=config.engine, machine=machine(config.n_cores))
    runs = run_many(wl, base, ("cfs", "sfs", "srtf"))
    return Result(
        improvement=improvement_summary(
            runs["cfs"].turnarounds, runs["sfs"].turnarounds
        ),
        cfs_vs_srtf=slowdown_percentiles(
            runs["cfs"].turnarounds, runs["srtf"].turnarounds
        ),
        cfs_rte_below_02=fraction_below(runs["cfs"].rtes, 0.2),
        sfs_rte_below_02=fraction_below(runs["sfs"].rtes, 0.2),
        config=config,
    )


def render(result: Result) -> str:
    imp = result.improvement
    rows = [
        ("fraction of functions improved by SFS", f"{imp['fraction_improved']:.1%}", "83%"),
        ("mean speedup among improved", f"{imp['mean_speedup_improved']:.1f}x",
         "49.6x (grows with run length)"),
        ("mean slowdown of the rest", f"{imp['mean_slowdown_rest']:.2f}x", "1.29x"),
        ("CFS-vs-SRTF slowdown p40", f"{result.cfs_vs_srtf[40]:.1f}x", "16x"),
        ("CFS-vs-SRTF slowdown p70", f"{result.cfs_vs_srtf[70]:.1f}x", "24x"),
        ("CFS P(RTE<0.2) @100% load", f"{result.cfs_rte_below_02:.1%}", "89.9%"),
        ("SFS P(RTE<0.2) @100% load", f"{result.sfs_rte_below_02:.1%}", "(small)"),
    ]
    return format_table(
        ["claim", "measured", "paper"],
        rows,
        title=(
            f"Headline claims (n={result.config.n_requests}, "
            f"{result.config.n_cores} cores, load {result.config.load:.0%})"
        ),
    )
