"""Fig 8: percentile breakdowns of execution duration across loads.

Paper anchors: SFS holds a ~0.1 s median at every load while CFS's
median grows with load; SFS's p99.9 at 80 % load is ~47.1 % above
CFS's (the price long functions pay); CFS's own p99.9 explodes from
3.3 s at 50 % load to 22.1 s at 65 %.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import format_table
from repro.experiments import loadsweep
from repro.experiments.common import (
    duration_percentiles,
    percentile_ratio,
    summarise_sweep,
)

Config = loadsweep.Config
Result = loadsweep.Result
run = loadsweep.run

QS = (50.0, 90.0, 99.0, 99.9)


def breakdown(result: Result) -> List[tuple]:
    return summarise_sweep(
        result.runs, lambda r: duration_percentiles(r, QS))


def tail_ratio(result: Result, load: float = 0.8) -> float:
    """SFS p99.9 over CFS p99.9 at the given load (paper: ~1.47 at 80 %)."""
    return percentile_ratio(result.runs, load, 99.9, num="sfs", den="cfs")


def render(result: Result) -> str:
    rows = [
        (load, name) + tuple(f"{v:.3f}" for v in vals)
        for load, name, *vals in breakdown(result)
    ]
    table = format_table(
        ["load", "sched"] + [f"p{q:g} (s)" for q in QS],
        rows,
        title="Fig 8: percentile breakdown of execution duration",
    )
    extra = []
    for load in result.runs:
        try:
            extra.append(f"p99.9 SFS/CFS at {load:.0%}: {tail_ratio(result, load):.2f}x")
        except KeyError:
            pass
    return table + "\n" + "\n".join(extra)
