"""Table II: SFS user-space CPU overhead vs polling interval.

The paper measures SFS's own CPU usage supporting a 72-core OpenLambda
deployment: with 4 ms polling the average is ~3.6 % of the machine
(2.6 cores / 72), roughly flat across 1/4/8 ms intervals, with ~74.4 %
of the overhead coming from status polling and the rest from
scheduling activity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.core.config import SFSConfig
from repro.core.overhead import OverheadSummary
from repro.experiments.common import azure_sampled_workload, machine
from repro.faas.openlambda import OpenLambdaConfig, run_openlambda
from repro.sim.units import MS
from repro.workload.faasbench import OPENLAMBDA_MIX


@dataclass(frozen=True)
class Config:
    n_requests: int = 30_000
    n_cores: int = 72
    load: float = 0.9
    poll_intervals_ms: Tuple[int, ...] = (1, 4, 8)
    engine: str = "fluid"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000, n_cores=24)


@dataclass
class Result:
    #: poll interval (ms) -> overhead summary
    summaries: Dict[int, OverheadSummary]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed,
        app_mix=OPENLAMBDA_MIX,
    )
    base = OpenLambdaConfig(
        machine=machine(config.n_cores),
        engine=config.engine,
        scheduler="sfs",
        seed=seed,
    )
    summaries: Dict[int, OverheadSummary] = {}
    for p_ms in config.poll_intervals_ms:
        cfg = replace(base, sfs=SFSConfig(poll_interval=p_ms * MS))
        res = run_openlambda(wl, cfg)
        summaries[p_ms] = res.overhead.summary(res.sim_time)
    return Result(summaries=summaries, config=config)


def render(result: Result) -> str:
    c = result.config.n_cores
    rows = []
    for p_ms, s in result.summaries.items():
        rows.append(
            (
                f"{p_ms} ms",
                f"{s.min / c:.1%}",
                f"{s.average / c:.1%}",
                f"{s.median / c:.1%}",
                f"{s.max / c:.1%}",
                f"{s.average:.2f}",
                f"{s.poll_fraction:.1%}",
            )
        )
    return format_table(
        ["interval", "min", "average", "median", "max", "cores used", "poll share"],
        rows,
        title=(
            f"Table II: SFS CPU overhead relative to the {c}-core machine "
            "(paper @4ms: avg 3.6% ~= 2.6 cores/72, poll share 74.4%)"
        ),
    )
