"""Sensitivity sweeps for SFS's remaining tunables (DESIGN.md §4).

The paper fixes the sliding window N = 100 and the overload factor
O = 3 "empirically"; these ablations sweep both to show the chosen
values sit on the flat part of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.core.config import SFSConfig
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult


@dataclass(frozen=True)
class Config:
    n_requests: int = 20_000
    n_cores: int = 12
    load: float = 0.9
    engine: str = "fluid"
    windows: Tuple[int, ...] = (10, 100, 1000)
    overload_factors: Tuple[float, ...] = (1.0, 3.0, 10.0)

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=3_000)


@dataclass
class Result:
    window_runs: Dict[int, RunResult]
    overload_runs: Dict[float, RunResult]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    base = RunConfig(
        scheduler="sfs", engine=config.engine, machine=machine(config.n_cores)
    )
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed
    )
    window_runs = {
        n: run_workload(wl, replace(base, sfs=SFSConfig(window=n)))
        for n in config.windows
    }
    wl_bursty = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed, iat_kind="bursty"
    )
    overload_runs = {
        o: run_workload(wl_bursty, replace(base, sfs=SFSConfig(overload_factor=o)))
        for o in config.overload_factors
    }
    return Result(window_runs=window_runs, overload_runs=overload_runs, config=config)


def render(result: Result) -> str:
    rows = [
        (f"N={n}", f"{r.turnarounds.mean()/1e3:.1f}",
         f"{(r.sfs_stats.demoted_slice / max(1, r.sfs_stats.submitted)):.3f}")
        for n, r in result.window_runs.items()
    ]
    t1 = format_table(
        ["window", "mean duration (ms)", "demotion rate"],
        rows,
        title="sensitivity: sliding-window length N (paper picks 100)",
    )
    rows2 = [
        (f"O={o:g}", f"{r.turnarounds.mean()/1e3:.1f}",
         str(r.sfs_stats.bypassed_overload))
        for o, r in result.overload_runs.items()
    ]
    t2 = format_table(
        ["factor", "mean duration (ms)", "bypassed requests"],
        rows2,
        title="sensitivity: overload factor O on a bursty workload (paper picks 3)",
    )
    return t1 + "\n\n" + t2
