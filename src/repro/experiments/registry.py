"""Registry mapping paper artifacts to experiment modules.

Used by ``repro.analysis.run_all`` (which regenerates EXPERIMENTS.md)
and by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    chaos,
    ext_billing,
    ext_cluster,
    ext_coldstart,
    ext_eevdf,
    ext_predictive,
    ext_resilience,
    ext_slo,
    fig01_azure_cdf,
    fig02_motivation,
    fig06_loads,
    fig07_rte,
    fig08_percentiles,
    fig09_timeslice,
    fig10_slice_timeline,
    fig11_io,
    fig12_overload,
    fig13_ol_perf,
    fig14_ol_rte,
    fig15_ol_percentiles,
    fig16_ctx,
    headline,
    replay_stream,
    sensitivity,
    table1_bins,
    table2_overhead,
)


@dataclass(frozen=True)
class Entry:
    """One paper artifact and how to regenerate it."""

    exp_id: str
    title: str
    module: ModuleType

    def run_scaled(self, seed: int = 0, workers: int = 0):
        if workers > 0 and self.parallel:
            return self.module.run(self.module.Config.scaled(), seed=seed,
                                   workers=workers)
        return self.module.run(self.module.Config.scaled(), seed=seed)

    def render(self, result) -> str:
        return self.module.render(result)

    @property
    def parallel(self) -> bool:
        """Does this experiment's ``run`` accept ``workers=``?"""
        import inspect

        return "workers" in inspect.signature(self.module.run).parameters

    @property
    def shardable(self) -> bool:
        """Does this experiment expose the repro.pool shard protocol
        (``shards`` / ``run_shard`` / ``render_shards``)?"""
        return all(
            hasattr(self.module, name)
            for name in ("shards", "run_shard", "render_shards")
        )


REGISTRY: Dict[str, Entry] = {
    e.exp_id: e
    for e in (
        Entry("fig1", "Azure duration CDF", fig01_azure_cdf),
        Entry("table1", "duration bins / fib-N mapping", table1_bins),
        Entry("fig2", "motivation: Linux schedulers vs SRTF/IDEAL", fig02_motivation),
        Entry("fig6", "SFS vs CFS duration CDFs across loads", fig06_loads),
        Entry("fig7", "SFS vs CFS RTE CDFs", fig07_rte),
        Entry("fig8", "percentile breakdowns across loads", fig08_percentiles),
        Entry("fig9", "adaptive vs static time slices", fig09_timeslice),
        Entry("fig10", "time-slice adaptation timeline", fig10_slice_timeline),
        Entry("fig11", "I/O handling and polling intervals", fig11_io),
        Entry("fig12", "transient-overload handling", fig12_overload),
        Entry("fig13", "OpenLambda duration CDFs", fig13_ol_perf),
        Entry("fig14", "OpenLambda RTE CDFs", fig14_ol_rte),
        Entry("fig15", "OpenLambda percentiles / p99 speedups", fig15_ol_percentiles),
        Entry("fig16", "context-switch ratio CDF", fig16_ctx),
        Entry("table2", "SFS CPU overhead vs polling interval", table2_overhead),
        Entry("headline", "headline claims", headline),
        Entry("sensitivity", "N and O sensitivity sweeps", sensitivity),
        Entry("ablations", "global-queue and engine ablations", ablations),
        # extensions beyond the paper's evaluation (SI, SX, SXI)
        Entry("ext-slo", "the paper's proposed stretch SLO, measured", ext_slo),
        Entry("ext-coldstart", "keep-alive TTL vs cold starts vs SFS benefit",
              ext_coldstart),
        Entry("ext-eevdf", "SFS on EEVDF (fair-class agnosticism)", ext_eevdf),
        Entry("ext-predictive", "size-based scheduling vs SFS vs SRTF",
              ext_predictive),
        Entry("ext-cluster", "global placement across SFS hosts",
              ext_cluster),
        Entry("ext-billing", "pricing the overcharge claim in dollars",
              ext_billing),
        Entry("chaos", "scheduling under failure: crashes, stragglers, "
              "overload shedding", chaos),
        Entry("ext-resilience", "SLO under chaos: domain outages, failover, "
              "hedging, retry-storm defense", ext_resilience),
        Entry("replay", "streaming long-horizon replay grid", replay_stream),
    )
}
