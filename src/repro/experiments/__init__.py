"""Experiment harness: one module per table/figure of the paper.

Each ``figXX``/``tableX`` module exposes:

* a frozen ``Config`` dataclass with paper-scale defaults and a
  ``scaled()`` constructor producing a laptop-scale variant for the
  benchmark suite;
* ``run(config, seed) -> result`` performing the actual experiment;
* ``render(result) -> str`` producing the ASCII table/series that
  corresponds to the published figure.

The shared driver lives in :mod:`repro.experiments.runner`.
"""

from repro.experiments.runner import RunConfig, run_workload

__all__ = ["RunConfig", "run_workload"]
