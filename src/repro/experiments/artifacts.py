"""Crash-safe, resumable experiment artifacts.

Long sweeps (20+ registered experiments, chaos runs, parameter grids)
die for boring reasons: OOM kills, CI timeouts, laptop lids.  This
module makes the sweep restartable without trusting half-written state:

* **atomic write-rename** — artifacts and manifests are written to a
  temp file in the destination directory and ``os.replace``d into
  place, so a crash leaves either the old file or the new file, never
  a torn one;
* **manifest-keyed content hashes** — each artifact carries a sidecar
  manifest with the sha256 of its bytes and a digest of the producing
  configuration; ``verify`` recomputes both, so a corrupt, truncated or
  stale-config artifact is re-run, not resumed past;
* **deterministic bytes** — manifests contain no timestamps or host
  state, so a resumed sweep's artifacts are byte-identical to an
  uninterrupted run (pinned by the test suite);
* **wall-clock watchdog** — :func:`watchdog` bounds each experiment
  with ``SIGALRM`` in the single-process main-thread case and falls
  back to the portable :func:`deadline` thread-timer everywhere else
  (worker threads, spawned pool children), so one hung shard cannot
  stall the sweep forever.

``repro experiment --out DIR --resume`` drives :func:`run_sweep`;
``repro experiment --workers N`` shards the same stores through
:mod:`repro.pool`.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: manifest schema identifier (bump on incompatible change).
SCHEMA = "repro.artifact/1"


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so a crash never leaves a torn file.

    The temp file lives in the destination directory because
    ``os.replace`` is only atomic within one filesystem.
    """
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Binary twin of :func:`atomic_write_text` (checkpoint payloads)."""
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_digest(config: Dict[str, Any]) -> str:
    """Stable digest of a producing configuration (JSON-safe dict)."""
    return hashlib.sha256(_canonical_json(config).encode()).hexdigest()


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class ExperimentTimeout(RuntimeError):
    """An experiment exceeded its wall-clock budget."""


def _async_raise(thread_ident: int, exc_type: type) -> bool:
    """Deliver ``exc_type`` asynchronously to a running CPython thread.

    ``PyThreadState_SetAsyncExc`` schedules the exception at the
    target's next bytecode boundary, which is exactly what a pure-
    Python simulator loop needs; a thread blocked inside a C call only
    sees it when control returns to the interpreter (the pool's
    supervisor-side kill covers that case).  Returns False where the
    mechanism is unavailable (non-CPython) so callers degrade to
    unbounded rather than crashing.
    """
    try:
        import ctypes

        set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
    except (ImportError, AttributeError):  # pragma: no cover - PyPy etc.
        return False
    n = set_async_exc(ctypes.c_ulong(thread_ident),
                      ctypes.py_object(exc_type))
    if n > 1:  # pragma: no cover - stale ident; undo the stray delivery
        set_async_exc(ctypes.c_ulong(thread_ident), None)
        return False
    return n == 1


@contextmanager
def deadline(seconds: Optional[float]) -> Iterator[None]:
    """Portable wall-clock bound: works off the main thread and in
    spawned children, where ``SIGALRM`` cannot be armed.

    A daemon :class:`threading.Timer` delivers
    :class:`ExperimentTimeout` to the *calling* thread via
    ``PyThreadState_SetAsyncExc`` once ``seconds`` elapse.  ``None`` or
    0 disables the bound, as does a runtime without the CPython C API.
    """
    if not seconds:
        yield
        return
    ident = threading.get_ident()
    state = {"armed": True}

    def _fire() -> None:
        if state["armed"]:
            _async_raise(ident, ExperimentTimeout)

    timer = threading.Timer(seconds, _fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        state["armed"] = False
        timer.cancel()


@contextmanager
def watchdog(seconds: Optional[float]) -> Iterator[None]:
    """Bound the enclosed block to ``seconds`` of wall time.

    In the single-process case — main thread, platform with
    ``SIGALRM`` — it uses ``setitimer``, whose delivery does not depend
    on the interpreter reaching a bytecode boundary.  Everywhere else
    (worker threads, :mod:`repro.pool` children) it delegates to the
    portable :func:`deadline` thread-timer.  ``None`` or 0 disables
    the watchdog.
    """
    if not seconds:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        with deadline(seconds):
            yield
        return

    def _alarm(_signum, _frame):
        raise ExperimentTimeout(f"experiment exceeded {seconds}s wall clock")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


class ArtifactStore:
    """One directory of ``<exp_id>.txt`` + ``<exp_id>.manifest.json``."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def artifact_path(self, exp_id: str) -> str:
        return os.path.join(self.root, f"{exp_id}.txt")

    def manifest_path(self, exp_id: str) -> str:
        return os.path.join(self.root, f"{exp_id}.manifest.json")

    def write(self, exp_id: str, text: str, config: Dict[str, Any]) -> None:
        """Persist an artifact and its manifest, each atomically.

        The artifact lands first: if the crash window falls between the
        two renames, ``verify`` sees a manifest/content pair from
        different generations only when the bytes differ — and then the
        hash check fails and the shard is re-run.
        """
        atomic_write_text(self.artifact_path(exp_id), text)
        manifest = {
            "schema": SCHEMA,
            "exp_id": exp_id,
            "config": config,
            "config_digest": config_digest(config),
            "sha256": _sha256_text(text),
            "bytes": len(text.encode()),
        }
        atomic_write_text(
            self.manifest_path(exp_id),
            _canonical_json(manifest) + "\n",
        )

    def verify(self, exp_id: str, config: Dict[str, Any]) -> bool:
        """Does a trustworthy artifact for this exact config exist?"""
        try:
            with open(self.manifest_path(exp_id)) as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return False
        if manifest.get("schema") != SCHEMA:
            return False
        if manifest.get("config_digest") != config_digest(config):
            return False  # produced by a different sweep configuration
        try:
            with open(self.artifact_path(exp_id)) as fh:
                text = fh.read()
        except OSError:
            return False
        return (
            _sha256_text(text) == manifest.get("sha256")
            and len(text.encode()) == manifest.get("bytes")
        )

    def read(self, exp_id: str) -> str:
        with open(self.artifact_path(exp_id)) as fh:
            return fh.read()


@dataclass(frozen=True)
class ShardOutcome:
    """What happened to one experiment in a sweep."""

    exp_id: str
    #: "done" | "skipped" (resume hit) | "timeout" | "failed"
    status: str
    detail: str = ""


def run_sweep(
    shards: List[Tuple[str, Callable[[], str]]],
    store: ArtifactStore,
    config_for: Callable[[str], Dict[str, Any]],
    resume: bool = False,
    watchdog_seconds: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ShardOutcome]:
    """Run shards crash-safely, skipping verified artifacts on resume.

    ``shards`` is a list of ``(exp_id, produce)`` where ``produce``
    returns the artifact text; ``config_for`` maps an exp_id to the
    JSON-safe configuration its manifest is keyed on.  A shard that
    times out or raises is recorded and the sweep continues — partial
    progress is exactly what ``--resume`` exists to pick up.
    """
    say = progress or (lambda _msg: None)
    outcomes: List[ShardOutcome] = []
    for exp_id, produce in shards:
        config = config_for(exp_id)
        if resume and store.verify(exp_id, config):
            say(f"{exp_id}: verified artifact found, skipping")
            outcomes.append(ShardOutcome(exp_id, "skipped"))
            continue
        try:
            with watchdog(watchdog_seconds):
                text = produce()
        except ExperimentTimeout as exc:
            say(f"{exp_id}: {exc}")
            outcomes.append(ShardOutcome(exp_id, "timeout", str(exc)))
            continue
        except Exception as exc:
            say(f"{exp_id}: failed: {exc}")
            outcomes.append(ShardOutcome(exp_id, "failed", str(exc)))
            continue
        store.write(exp_id, text, config)
        say(f"{exp_id}: wrote {store.artifact_path(exp_id)}")
        outcomes.append(ShardOutcome(exp_id, "done"))
    return outcomes
