"""Extension: global scheduling across FaaS servers (§VIII-A future work).

The paper notes SFS's long-function penalty could be mitigated by "a
global FaaS scheduler offloading longer functions to relatively
lighter-loaded FaaS servers".  This experiment runs a cluster of
SFS-enabled OpenLambda hosts under four global placement policies and
measures exactly that: what happens to the long-function tail (and the
short majority) when the dispatcher is load- or demand-aware.

Expected shape: load-aware policies (least_loaded / least_work /
offload_long) cut the long-function mean and the cluster p99 sharply
versus round-robin, while the short functions — already protected by
per-host SFS — stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from repro.metrics.stats import percentile

from repro.analysis.report import format_table
from repro.experiments.common import SHORT_CPU_BOUND_US, azure_sampled_workload, machine
from repro.faas.cluster import PLACEMENT_POLICIES, ClusterConfig, run_cluster
from repro.faas.openlambda import OpenLambdaConfig
from repro.metrics.collector import RunResult


@dataclass(frozen=True)
class Config:
    n_requests: int = 16_000
    n_hosts: int = 4
    cores_per_host: int = 8
    load: float = 1.0
    scheduler: str = "sfs"
    policies: Tuple[str, ...] = PLACEMENT_POLICIES

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    runs: Dict[str, RunResult]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    total_cores = config.n_hosts * config.cores_per_host
    wl = azure_sampled_workload(config.n_requests, total_cores, config.load, seed)
    host = OpenLambdaConfig(
        machine=machine(config.cores_per_host),
        scheduler=config.scheduler,
        engine="fluid",
        seed=seed,
    )
    runs = {
        policy: run_cluster(
            wl, ClusterConfig(n_hosts=config.n_hosts, host=host, placement=policy)
        )
        for policy in config.policies
    }
    return Result(runs=runs, config=config)


def long_tail_gain(result: Result, policy: str) -> float:
    """Long-function mean under round_robin over the given policy."""
    base = result.runs["round_robin"]
    other = result.runs[policy]
    longs_b = base.array("cpu_demand") >= SHORT_CPU_BOUND_US
    longs_o = other.array("cpu_demand") >= SHORT_CPU_BOUND_US
    return float(
        base.turnarounds[longs_b].mean() / other.turnarounds[longs_o].mean()
    )


def render(result: Result) -> str:
    rows = []
    for policy, r in result.runs.items():
        t = r.turnarounds
        longs = r.array("cpu_demand") >= SHORT_CPU_BOUND_US
        rows.append(
            (
                policy,
                f"{percentile(t, 50) / 1e3:.1f}",
                f"{percentile(t, 99) / 1e3:.0f}",
                f"{t[~longs].mean() / 1e3:.1f}",
                f"{t[longs].mean() / 1e3:.0f}",
            )
        )
    table = format_table(
        ["placement", "p50 (ms)", "p99 (ms)", "short mean (ms)",
         "long mean (ms)"],
        rows,
        title=(
            f"ext-cluster: global placement over {result.config.n_hosts} "
            f"SFS hosts (SVIII-A future work: offload longs to "
            "lighter-loaded servers)"
        ),
    )
    gains = [
        f"long-function gain of {p} over round_robin: "
        f"{long_tail_gain(result, p):.2f}x"
        for p in result.runs
        if p != "round_robin"
    ]
    return table + "\n" + "\n".join(gains)
