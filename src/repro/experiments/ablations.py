"""Design-choice ablations called out in DESIGN.md §4.

* global queue vs per-worker multi-queue dispatch (§VI's argument);
* discrete vs fluid engine agreement on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np
from repro.metrics.stats import percentile

from repro.analysis.report import format_table
from repro.core.config import SFSConfig
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult


@dataclass(frozen=True)
class Config:
    n_requests: int = 20_000
    n_cores: int = 12
    load: float = 1.0
    #: context-switch cost sweep (us): how the SFS/CFS gap depends on
    #: the capacity lost to switching (DESIGN.md fidelity note).
    ctx_costs: tuple = (0, 150, 500, 1500)

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=2_000, n_cores=8)


@dataclass
class Result:
    queue_runs: Dict[str, RunResult]     # global vs multi-queue SFS
    engine_runs: Dict[str, RunResult]    # CFS on fluid vs discrete
    ctx_cost_runs: Dict[int, Dict[str, RunResult]]  # cost -> sched -> run
    #: SFS on the discrete engine with RT bandwidth throttling off/on
    throttle_runs: Dict[str, RunResult]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed
    )
    base = RunConfig(scheduler="sfs", machine=machine(config.n_cores))
    queue_runs = {
        "global-queue": run_workload(wl, base),
        "multi-queue": run_workload(
            wl, replace(base, sfs=SFSConfig(per_worker_queues=True))
        ),
    }
    engine_runs = {
        engine: run_workload(
            wl, RunConfig(scheduler="cfs", engine=engine,
                          machine=machine(config.n_cores))
        )
        for engine in ("fluid", "discrete")
    }
    ctx_cost_runs: Dict[int, Dict[str, RunResult]] = {}
    for cost in config.ctx_costs:
        m = machine(config.n_cores, ctx_switch_cost=cost)
        ctx_cost_runs[cost] = {
            sched: run_workload(wl, RunConfig(scheduler=sched, machine=m))
            for sched in ("cfs", "sfs")
        }
    # RT bandwidth: off (the paper's implicit setup) vs the Linux
    # default 950 ms / 1 s, which guarantees demoted CFS longs 5 %
    from dataclasses import replace as _replace

    from repro.sim.units import MS, SEC

    wl_small = azure_sampled_workload(
        min(config.n_requests, 1_500), config.n_cores, config.load, seed
    )
    throttle_runs = {}
    for label, bw in (("rt-unlimited", None), ("rt-950ms/1s", (950 * MS, 1 * SEC))):
        m = _replace(machine(config.n_cores), rt_bandwidth=bw)
        throttle_runs[label] = run_workload(
            wl_small, RunConfig(scheduler="sfs", engine="discrete", machine=m)
        )
    return Result(
        queue_runs=queue_runs,
        engine_runs=engine_runs,
        ctx_cost_runs=ctx_cost_runs,
        throttle_runs=throttle_runs,
        config=config,
    )


def cfs_penalty_by_cost(result: Result) -> Dict[int, float]:
    """Mean CFS/SFS turnaround ratio per switch cost — grows with cost."""
    out = {}
    for cost, by in result.ctx_cost_runs.items():
        out[cost] = float(
            (by["cfs"].turnarounds / np.maximum(by["sfs"].turnarounds, 1)).mean()
        )
    return out


def engine_disagreement(result: Result) -> float:
    """Median relative turnaround difference between the two engines."""
    f = result.engine_runs["fluid"].turnarounds
    d = result.engine_runs["discrete"].turnarounds
    return float(np.median(np.abs(f - d) / np.maximum(d, 1)))


def render(result: Result) -> str:
    rows = [
        (name, f"{percentile(r.turnarounds, 50)/1e3:.1f}",
         f"{percentile(r.turnarounds, 99)/1e3:.1f}",
         f"{r.turnarounds.mean()/1e3:.1f}")
        for name, r in result.queue_runs.items()
    ]
    t1 = format_table(
        ["dispatch", "p50 (ms)", "p99 (ms)", "mean (ms)"],
        rows,
        title="ablation: global queue vs per-worker queues (SFS)",
    )
    rows2 = [
        (name, f"{percentile(r.turnarounds, 50)/1e3:.1f}",
         f"{r.turnarounds.mean()/1e3:.1f}")
        for name, r in result.engine_runs.items()
    ]
    t2 = format_table(
        ["engine", "p50 (ms)", "mean (ms)"],
        rows2,
        title=(
            "ablation: CFS on fluid vs discrete engine "
            f"(median per-request disagreement {engine_disagreement(result):.1%})"
        ),
    )
    rows3 = [
        (f"{cost} us", f"{ratio:.2f}x")
        for cost, ratio in cfs_penalty_by_cost(result).items()
    ]
    t3 = format_table(
        ["ctx switch cost", "mean CFS/SFS duration ratio"],
        rows3,
        title="ablation: context-switch cost vs the CFS penalty",
    )
    rows4 = []
    for label, r in result.throttle_runs.items():
        t = r.turnarounds
        longs = r.array("cpu_demand") >= 400_000
        rows4.append(
            (label,
             f"{percentile(t, 50) / 1e3:.1f}",
             f"{t[longs].mean() / 1e3:.0f}" if longs.any() else "-",
             f"{t[~longs].mean() / 1e3:.1f}")
        )
    t4 = format_table(
        ["RT bandwidth", "p50 (ms)", "long mean (ms)", "short mean (ms)"],
        rows4,
        title=(
            "ablation: sched_rt_runtime_us throttling under SFS "
            "(the 5% CFS guarantee relieves demoted longs)"
        ),
    )
    return "\n\n".join((t1, t2, t3, t4))
