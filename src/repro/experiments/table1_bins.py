"""Table I: duration-bin probabilities and the fib-N mapping.

Validates that FaaSBench reproduces the published distribution: each
generated workload's empirical bin masses must match the table, and the
fib durations produced for each N range must land inside the bin's
duration range (e.g. "fib with an N between 20-26 finishes execution in
less than 45 ms" -> the (0, 50 ms] bin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.sim.units import MS
from repro.workload.distributions import TABLE_I, DurationBin
from repro.workload.faasbench import FaaSBench, FaaSBenchConfig
from repro.workload.functions import fib_duration


@dataclass(frozen=True)
class Config:
    n_requests: int = 50_000

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=10_000)


@dataclass
class Result:
    #: per bin: (label, paper prob, empirical prob, N range, fib range ms)
    rows: List[Tuple[str, float, float, str, str]]
    unbinned_fraction: float


def _label(b: DurationBin) -> str:
    hi = "inf" if b.high_us is None else f"{b.high_us // MS}"
    return f"{b.low_us // MS}-{hi} ms"


def run(config: Config, seed: int = 0) -> Result:
    wl = FaaSBench(
        FaaSBenchConfig(n_requests=config.n_requests, jitter_sigma=0.0),
        seed=seed,
    ).generate()
    demands = np.array([r.cpu_demand for r in wl], dtype=np.int64)
    total_p = sum(b.probability for b in TABLE_I)
    rows = []
    binned = 0
    for b in TABLE_I:
        hi = b.high_us if b.high_us is not None else np.iinfo(np.int64).max
        mask = (demands >= b.low_us) & (demands < hi)
        binned += int(mask.sum())
        fib_lo = fib_duration(b.n_low) / MS
        fib_hi = fib_duration(b.n_high) / MS
        rows.append(
            (
                _label(b),
                b.probability / total_p,
                float(mask.mean()),
                f"{b.n_low}-{b.n_high}",
                f"{fib_lo:.1f}-{fib_hi:.1f}",
            )
        )
    return Result(rows=rows, unbinned_fraction=1.0 - binned / len(demands))


def render(result: Result) -> str:
    rows = [
        (label, f"{paper:.3f}", f"{emp:.3f}", ns, fib_ms)
        for label, paper, emp, ns, fib_ms in result.rows
    ]
    table = format_table(
        ["duration bin", "paper P", "measured P", "fib N", "fib ms"],
        rows,
        title="Table I: duration-bin probabilities vs FaaSBench output",
    )
    return table + f"\nfraction outside all bins: {result.unbinned_fraction:.4f}"
