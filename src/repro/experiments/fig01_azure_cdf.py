"""Fig 1: CDF of average function execution duration, Azure traces.

The paper reads three anchors off this CDF: 37.2 % of functions average
under 300 ms, 57.2 % under 1 s, and 99.9 % under 224 s, with the full
range spanning roughly seven orders of magnitude.  We regenerate the
CDF from the synthetic trace and report the measured fraction at each
anchor plus the span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.sim.units import MS, SEC
from repro.workload.azure import FIG1_ANCHORS, AzureTraceSynthesizer

#: full probe grid for the CDF table (us)
PROBES = (
    1 * MS,
    10 * MS,
    100 * MS,
    300 * MS,
    1 * SEC,
    10 * SEC,
    100 * SEC,
    224 * SEC,
)


@dataclass(frozen=True)
class Config:
    n_apps: int = 82_375

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_apps=20_000)


@dataclass
class Result:
    probes: List[Tuple[int, float]]          # (bound us, fraction below)
    anchors: List[Tuple[int, float, float]]  # (bound, measured, paper)
    orders_of_magnitude: float


def run(config: Config, seed: int = 0) -> Result:
    syn = AzureTraceSynthesizer(n_apps=config.n_apps, seed=seed)
    durations = syn.sample_avg_durations(config.n_apps)
    probes = [(b, float((durations < b).mean())) for b in PROBES]
    anchors = [
        (bound, float((durations < bound).mean()), target)
        for bound, target in FIG1_ANCHORS
    ]
    span = float(np.log10(durations.max() / max(durations.min(), 1)))
    return Result(probes=probes, anchors=anchors, orders_of_magnitude=span)


def render(result: Result) -> str:
    rows = [(f"{b/SEC:g} s", f"{frac:.4f}") for b, frac in result.probes]
    cdf = format_table(["duration <", "CDF"], rows,
                       title="Fig 1: Azure function duration CDF (synthetic trace)")
    rows2 = [
        (f"{b/SEC:g} s", f"{m:.4f}", f"{t:.4f}", f"{m - t:+.4f}")
        for b, m, t in result.anchors
    ]
    anchors = format_table(
        ["anchor", "measured", "paper", "delta"], rows2,
        title=f"anchors (duration span: {result.orders_of_magnitude:.1f} orders of magnitude)",
    )
    return cdf + "\n\n" + anchors
