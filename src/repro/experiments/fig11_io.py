"""Fig 11: handling I/O — polling intervals vs I/O-oblivious SFS.

75 % of requests get a single leading I/O operation of X ms,
X ~ U[10, 100] (the paper's setup).  Variants:

* I/O-oblivious SFS (polling disabled): FILTER workers burn slice
  credit waiting on blocked functions -> worst;
* I/O-aware SFS with polling interval in {1, 2, 4, 8} ms: performance
  is largely insensitive to the interval;
* CFS baseline for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import format_cdf_probes
from repro.core.config import SFSConfig
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult
from repro.sim.units import MS


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    load: float = 1.0
    io_fraction: float = 0.75
    engine: str = "fluid"
    poll_intervals_ms: Tuple[int, ...] = (1, 2, 4, 8)

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=3_000, poll_intervals_ms=(1, 4, 8))


@dataclass
class Result:
    runs: Dict[str, RunResult]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed,
        io_fraction=config.io_fraction,
    )
    base = RunConfig(
        scheduler="sfs", engine=config.engine, machine=machine(config.n_cores)
    )
    runs: Dict[str, RunResult] = {}
    runs["sfs-oblivious"] = run_workload(
        wl, replace(base, sfs=SFSConfig(io_aware=False))
    )
    for p_ms in config.poll_intervals_ms:
        cfg = SFSConfig(io_aware=True, poll_interval=p_ms * MS)
        runs[f"sfs-poll-{p_ms}ms"] = run_workload(wl, replace(base, sfs=cfg))
    runs["cfs"] = run_workload(wl, base.with_scheduler("cfs"))
    return Result(runs=runs, config=config)


def mean_turnaround(result: Result) -> Dict[str, float]:
    return {name: float(r.turnarounds.mean()) for name, r in result.runs.items()}


def polling_sensitivity(result: Result) -> float:
    """Max/min mean turnaround across polling intervals (paper: ~1)."""
    means = [
        v for k, v in mean_turnaround(result).items() if k.startswith("sfs-poll")
    ]
    return max(means) / min(means)


def render(result: Result) -> str:
    series = {name: r.turnarounds for name, r in result.runs.items()}
    table = format_cdf_probes(
        series,
        title=(
            f"Fig 11: I/O handling ({result.config.io_fraction:.0%} of requests "
            "have a leading 10-100 ms I/O); duration in ms"
        ),
    )
    return (
        table
        + f"\npolling-interval sensitivity (max/min mean): "
        + f"{polling_sensitivity(result):.3f}x"
    )
