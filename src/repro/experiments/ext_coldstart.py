"""Extension: cold starts vs the SFS benefit (§X's discussion).

The paper pre-warms every container and argues in §X that with modern
keep-alive policies most requests avoid cold starts, making OS-level
scheduling the "last mile" that matters.  This experiment quantifies
that argument: we enable a keep-alive container cache with cold-start
penalties and sweep the TTL, measuring (a) the cold-start rate and
(b) how much of SFS's improvement over CFS survives.

Expected shape: with generous keep-alive (low cold rate) SFS's benefit
is intact; as the TTL shrinks, cold-start latency — identical under
both schedulers — dilutes the relative gain, exactly the offsetting
effect §X warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.common import azure_sampled_workload, machine
from repro.faas.coldstart import ColdStartConfig
from repro.faas.openlambda import OpenLambdaConfig, run_openlambda
from repro.metrics.collector import RunResult
from repro.sim.units import MS, SEC
from repro.workload.faasbench import OPENLAMBDA_MIX


@dataclass(frozen=True)
class Config:
    n_requests: int = 20_000
    n_cores: int = 24
    load: float = 0.9
    #: keep-alive TTLs to sweep; None = the paper's pre-warmed setup.
    keep_alive_ttls: Tuple[Optional[int], ...] = (
        None,
        600 * SEC,   # Azure's classic 10-minute policy
        10 * SEC,
        1 * SEC,
    )
    engine: str = "fluid"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=5_000)


@dataclass
class Result:
    #: ttl (None = prewarmed) -> scheduler -> RunResult
    runs: Dict[Optional[int], Dict[str, RunResult]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed,
        app_mix=OPENLAMBDA_MIX,
    )
    base = OpenLambdaConfig(
        machine=machine(config.n_cores), engine=config.engine, seed=seed
    )
    runs: Dict[Optional[int], Dict[str, RunResult]] = {}
    for ttl in config.keep_alive_ttls:
        cfg = base if ttl is None else replace(
            base, coldstart=ColdStartConfig(keep_alive=ttl)
        )
        runs[ttl] = {
            sched: run_openlambda(wl, cfg.with_scheduler(sched))
            for sched in ("cfs", "sfs")
        }
    return Result(runs=runs, config=config)


def cold_rate(result: Result, ttl: Optional[int]) -> float:
    stats = result.runs[ttl]["sfs"].meta.get("coldstart_stats")
    return stats.cold_rate if stats is not None else 0.0


def sfs_gain(result: Result, ttl: Optional[int]) -> float:
    """Median end-to-end CFS/SFS ratio (includes cold-start latency)."""
    by = result.runs[ttl]
    c = by["cfs"].array("end_to_end")
    s = by["sfs"].array("end_to_end")
    return float(np.median(c / np.maximum(s, 1)))


def render(result: Result) -> str:
    rows = []
    for ttl in result.config.keep_alive_ttls:
        label = "prewarmed" if ttl is None else f"TTL {ttl / SEC:g}s"
        by = result.runs[ttl]
        c50 = np.median(by["cfs"].array("end_to_end")) / 1e3
        s50 = np.median(by["sfs"].array("end_to_end")) / 1e3
        rows.append(
            (
                label,
                f"{cold_rate(result, ttl):.1%}",
                f"{c50:.0f}",
                f"{s50:.0f}",
                f"{sfs_gain(result, ttl):.2f}x",
            )
        )
    return format_table(
        ["container policy", "cold rate", "CFS p50 (ms)", "SFS p50 (ms)",
         "median CFS/SFS"],
        rows,
        title=(
            "ext-coldstart: keep-alive TTL vs cold-start rate vs the SFS "
            "benefit (SX: cold starts offset SFS, warm caches restore it)"
        ),
    )
