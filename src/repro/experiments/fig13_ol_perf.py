"""Fig 13: OpenLambda end-to-end duration CDFs (fib+md+sa)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.report import format_cdf_probes, format_table
from repro.experiments import openlambda_sweep

Config = openlambda_sweep.Config
Result = openlambda_sweep.Result
run = openlambda_sweep.run


def mean_slowdown_cfs(result: Result, load: float) -> float:
    """Mean per-request CFS/SFS duration ratio (paper: 1.141 at 80 %)."""
    by = result.runs[load]
    return float(
        (by["cfs"].turnarounds / np.maximum(by["sfs"].turnarounds, 1)).mean()
    )


def render(result: Result) -> str:
    parts = []
    for load, by_sched in result.runs.items():
        series = {f"OL+{n}": r.turnarounds for n, r in by_sched.items()}
        parts.append(
            format_cdf_probes(
                series,
                title=f"Fig 13: OpenLambda execution duration (ms), load {load:.0%}",
            )
        )
    rows = [
        (f"{load:.0%}", f"{mean_slowdown_cfs(result, load):.3f}")
        for load in result.runs
    ]
    parts.append(
        format_table(
            ["load", "mean CFS/SFS duration ratio"],
            rows,
            title="average CFS slowdown vs SFS (paper: 1.141x at 80% load)",
        )
    )
    return "\n\n".join(parts)
