"""Fig 12: transient-overload handling (the hybrid FILTER+CFS switch).

Bursty Azure-sampled workload with five arrival spikes.  Variants:

* SFS (hybrid enabled, O = 3);
* SFS w/o hybrid (overload detection disabled);
* plain CFS.

Expected shape: without the hybrid the queuing-delay timeline shows
tall spikes that take long to drain; with it the curve smooths out and
roughly half the requests see reduced turnaround; neither CFS nor pure
FILTER alone matches the hybrid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.report import format_cdf_probes, format_series
from repro.core.config import SFSConfig
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult
from repro.metrics.timeline import bin_series
from repro.sim.units import SEC


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    load: float = 0.8          # base load; the spikes push it over 1
    n_spikes: int = 5
    spike_factor: float = 20.0
    spike_len: int = 120
    engine: str = "fluid"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=5_000, spike_len=350, spike_factor=30.0)


@dataclass
class Result:
    runs: Dict[str, RunResult]
    #: name -> (bin starts us, max queuing delay per bin us)
    delay_timelines: Dict[str, Tuple[np.ndarray, np.ndarray]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed,
        iat_kind="bursty",
        n_spikes=config.n_spikes,
        spike_factor=config.spike_factor,
        spike_len=config.spike_len,
    )
    base = RunConfig(
        scheduler="sfs", engine=config.engine, machine=machine(config.n_cores)
    )
    runs: Dict[str, RunResult] = {}
    runs["sfs"] = run_workload(wl, base)
    runs["sfs-no-hybrid"] = run_workload(
        wl, replace(base, sfs=SFSConfig(overload_enabled=False))
    )
    runs["cfs"] = run_workload(wl, base.with_scheduler("cfs"))

    timelines = {}
    for name in ("sfs", "sfs-no-hybrid"):
        samples = runs[name].queue_delay_samples or []
        timelines[name] = bin_series(samples, bin_us=1 * SEC, agg="max")
    return Result(runs=runs, delay_timelines=timelines, config=config)


def peak_queue_delay(result: Result, name: str) -> float:
    _ts, vs = result.delay_timelines[name]
    vals = vs[~np.isnan(vs)]
    return float(vals.max()) if vals.size else 0.0


def fraction_improved_by_hybrid(result: Result) -> float:
    """Fraction of requests faster under hybrid SFS than w/o (paper ~50 %)."""
    with_h = result.runs["sfs"].turnarounds
    without = result.runs["sfs-no-hybrid"].turnarounds
    return float((with_h < without).mean())


def render(result: Result) -> str:
    parts = []
    for name, (ts, vs) in result.delay_timelines.items():
        ok = ~np.isnan(vs)
        parts.append(
            format_series(ts[ok], vs[ok] / 1e3, name=f"max queue delay (ms)",
                          max_rows=25)
            .replace("t (s)", f"[{name}] t (s)")
        )
    series = {name: r.turnarounds for name, r in result.runs.items()}
    parts.append(
        format_cdf_probes(series, title="Fig 12b: duration under overload (ms)")
    )
    parts.append(
        f"peak queue delay: hybrid {peak_queue_delay(result, 'sfs')/1e3:.0f} ms"
        f" vs no-hybrid {peak_queue_delay(result, 'sfs-no-hybrid')/1e3:.0f} ms; "
        f"requests improved by hybrid: {fraction_improved_by_hybrid(result):.1%}; "
        f"bypassed to CFS: {result.runs['sfs'].sfs_stats.bypassed_overload}"
    )
    return "\n\n".join(parts)
