"""Fig 7: RTE CDFs for the standalone load sweep.

Anchors from the paper: under SFS, ~93 % / ~88 % of requests achieve
RTE >= 0.95 at 65 % / 80 % load; under CFS only ~55 % / ~35 % do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import format_table
from repro.experiments import loadsweep
from repro.metrics.stats import fraction_at_least, fraction_below

Config = loadsweep.Config
Result = loadsweep.Result
run = loadsweep.run

#: (load, scheduler) -> paper's fraction with RTE >= 0.95
PAPER_ANCHORS: Dict[Tuple[float, str], float] = {
    (0.65, "sfs"): 0.93,
    (0.8, "sfs"): 0.88,
    (0.65, "cfs"): 0.55,
    (0.8, "cfs"): 0.35,
}


def rte_table(result: Result) -> List[Tuple[str, str, float, float, float]]:
    rows = []
    for load, by_sched in result.runs.items():
        for name, r in by_sched.items():
            rtes = r.rtes
            rows.append(
                (
                    f"{load:.0%}",
                    name,
                    fraction_at_least(rtes, 0.95),
                    fraction_below(rtes, 0.5),
                    fraction_below(rtes, 0.2),
                )
            )
    return rows


def render(result: Result) -> str:
    rows = []
    for load_s, name, ge95, lt50, lt20 in rte_table(result):
        load = float(load_s.rstrip("%")) / 100
        paper = PAPER_ANCHORS.get((load, name))
        rows.append(
            (
                load_s,
                name,
                f"{ge95:.3f}",
                f"{paper:.2f}" if paper is not None else "-",
                f"{lt50:.3f}",
                f"{lt20:.3f}",
            )
        )
    return format_table(
        ["load", "sched", "P(RTE>=0.95)", "paper", "P(RTE<0.5)", "P(RTE<0.2)"],
        rows,
        title="Fig 7: run-time effectiveness distribution",
    )
