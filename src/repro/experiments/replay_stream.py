"""Streaming replay grid: long-horizon behavior per scheduler/source.

Runs the constant-memory streaming pipeline (:mod:`repro.stream`) over
a seeded lazy workload (:mod:`repro.workload.stream`) for each
(scheduler, trace source) cell and reports the headline latency
sketches.  Unlike the figure experiments — which materialize a modest
workload and keep every record — this grid exercises exactly the path
``repro replay`` uses for multi-day horizons, so regressions in the
streaming aggregation or the prefetch-one arrival chain surface here
and in CI, not three hours into a real replay.

Shardable for :mod:`repro.pool`: one shard per grid cell, each cell a
pure function of ``(config, seed)``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.machine.base import MachineParams
from repro.stream import ReplayConfig, StreamReplayDriver
from repro.workload.stream import SOURCES, StreamConfig

#: grid axes: replay-capable schedulers x trace sources
GRID_SCHEDULERS = ("cfs", "sfs")


@dataclass(frozen=True)
class Config:
    n_requests: int = 200_000
    n_cores: int = 8
    load: float = 0.9
    sources: Tuple[str, ...] = SOURCES
    schedulers: Tuple[str, ...] = GRID_SCHEDULERS

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=20_000)


@dataclass
class Result:
    #: grid-ordered cell summaries (scheduler-major, source-minor)
    cells: List[Dict[str, Any]]
    config: Config


def run_cell(config: Config, seed: int, scheduler: str,
             source: str) -> Dict[str, Any]:
    """One streaming replay; the summary doc is the cell artifact.

    The driver is fed a fresh cursor built from ``(seed, config)``, so
    a cell computed in a pool worker is byte-identical to one computed
    inline.
    """
    from repro.workload.stream import RequestStream

    scfg = StreamConfig(
        n_requests=config.n_requests,
        n_cores=config.n_cores,
        target_load=config.load,
        source=source,
    )
    rcfg = ReplayConfig(
        scheduler=scheduler,
        machine=MachineParams(n_cores=config.n_cores),
        checkpoint_every=None,
    )
    driver = StreamReplayDriver(RequestStream(scfg, seed=seed), rcfg)
    return driver.run()


def run(config: Config, seed: int = 0) -> Result:
    cells = [
        run_cell(config, seed, scheduler, source)
        for scheduler in config.schedulers
        for source in config.sources
    ]
    return Result(cells=cells, config=config)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _render_cells(cells: Sequence[Dict[str, Any]], config: Config) -> str:
    lines = [
        "streaming replay grid "
        f"({config.n_requests} requests, {config.n_cores} cores, "
        f"load {config.load})",
        "",
        f"{'sched':>6} {'source':>10} {'util':>7} {'e2e p50 (ms)':>13} "
        f"{'e2e p99 (ms)':>13} {'wait p99 (ms)':>14} {'max infl':>9}",
    ]
    for cell in cells:
        meta = cell.get("meta", {})
        e2e = cell["end_to_end_us"]
        wait = cell["wait_us"]
        lines.append(
            f"{cell['scheduler']:>6} {meta.get('source', '?'):>10} "
            f"{cell['utilization']:>7.3f} "
            f"{e2e.get('p50', 0.0) / 1000:>13.2f} "
            f"{e2e.get('p99', 0.0) / 1000:>13.2f} "
            f"{wait.get('p99', 0.0) / 1000:>14.2f} "
            f"{cell['max_inflight']:>9d}"
        )
    sfs_cells = [c for c in cells if c["scheduler"] == "sfs"]
    cfs_cells = [c for c in cells if c["scheduler"] == "cfs"]
    for sfs_cell in sfs_cells:
        src = sfs_cell.get("meta", {}).get("source")
        for cfs_cell in cfs_cells:
            if cfs_cell.get("meta", {}).get("source") != src:
                continue
            sfs_p99 = sfs_cell["end_to_end_us"].get("p99", 0.0)
            cfs_p99 = cfs_cell["end_to_end_us"].get("p99", 0.0)
            if sfs_p99 > 0:
                lines.append(
                    f"\n{src}: CFS p99 / SFS p99 = {cfs_p99 / sfs_p99:.2f}x"
                )
    lines.append("")
    return "\n".join(lines)


def render(result: Result) -> str:
    return _render_cells(result.cells, result.config)


# ----------------------------------------------------------------------
# repro.pool shard protocol (cell-granular parallel replays)
# ----------------------------------------------------------------------
def shards(config: Config, seed: int) -> List[Tuple[str, Dict[str, Any]]]:
    """``(shard_id, payload)`` for every grid cell, in grid order."""
    return [
        (f"{scheduler}.{source}",
         {"scheduler": scheduler, "source": source, "seed": seed,
          "config": asdict(config)})
        for scheduler in config.schedulers
        for source in config.sources
    ]


def run_shard(payload: Dict[str, Any]) -> str:
    """Execute one cell in (possibly) a pool worker; returns the cell
    artifact: one line of canonical JSON."""
    raw = dict(payload["config"])
    raw["sources"] = tuple(raw["sources"])
    raw["schedulers"] = tuple(raw["schedulers"])
    config = Config(**raw)
    cell = run_cell(config, payload["seed"], payload["scheduler"],
                    payload["source"])
    return json.dumps(cell, sort_keys=True, separators=(",", ":")) + "\n"


def render_shards(texts: Sequence[str], config: Config) -> str:
    """Merged rendering from grid-ordered cell artifacts — byte-equal
    to :func:`render` on an equivalent serial :class:`Result`."""
    return _render_cells([json.loads(t) for t in texts], config)
