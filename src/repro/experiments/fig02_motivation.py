"""Fig 2: the motivation study — Linux schedulers vs SRTF vs IDEAL.

The Azure-sampled workload on 12 cores at 80 % and 100 % load under
FIFO / RR / CFS / SRTF / IDEAL.  Expected shape (paper §IV-B):

* SRTF approaches IDEAL;
* CFS is the best Linux policy but leaves 11.4 % (80 % load) and
  89.9 % (100 % load) of requests with RTE < 0.2;
* under 100 % load CFS is an order of magnitude slower than SRTF
  (p40/p70 slowdowns of 16x/24x in the paper);
* FIFO is worst (convoy effect), RR in between.

This experiment defaults to the **discrete** engine because the
RR-vs-CFS distinction is a quantum-size effect the fluid model
deliberately blurs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import format_cdf_probes, format_table
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_many
from repro.metrics.collector import RunResult
from repro.metrics.stats import fraction_below, slowdown_percentiles

SCHEDULERS = ("fifo", "rr", "cfs", "srtf", "ideal")


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    loads: Tuple[float, ...] = (0.8, 1.0)
    engine: str = "discrete"

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=1_500, n_cores=12)


@dataclass
class Result:
    #: load -> scheduler -> RunResult
    runs: Dict[float, Dict[str, RunResult]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    runs: Dict[float, Dict[str, RunResult]] = {}
    for load in config.loads:
        wl = azure_sampled_workload(
            config.n_requests, config.n_cores, load, seed=seed
        )
        base = RunConfig(engine=config.engine, machine=machine(config.n_cores))
        runs[load] = run_many(wl, base, SCHEDULERS)
    return Result(runs=runs, config=config)


def render(result: Result) -> str:
    parts = []
    for load, by_sched in result.runs.items():
        series = {name: r.turnarounds for name, r in by_sched.items()}
        parts.append(
            format_cdf_probes(
                series,
                title=f"Fig 2a: execution duration (ms), load {load:.0%}",
            )
        )
        rows = []
        for name, r in by_sched.items():
            rtes = r.rtes
            rows.append(
                (
                    name,
                    f"{fraction_below(rtes, 0.2):.3f}",
                    f"{fraction_below(rtes, 0.5):.3f}",
                    f"{float(np.median(rtes)):.3f}",
                )
            )
        parts.append(
            format_table(
                ["sched", "P(RTE<0.2)", "P(RTE<0.5)", "median RTE"],
                rows,
                title=f"Fig 2b: run-time effectiveness, load {load:.0%}",
            )
        )
        sd = slowdown_percentiles(
            by_sched["cfs"].turnarounds, by_sched["srtf"].turnarounds
        )
        parts.append(
            "CFS slowdown vs SRTF: "
            + ", ".join(f"p{q:g}={v:.1f}x" for q, v in sd.items())
            + "  (paper at 100% load: p40=16x, p70=24x)"
        )
    return "\n\n".join(parts)
