"""Extension: scheduling under failure (the ``repro.faults`` showcase).

The paper evaluates SFS on a healthy machine.  Real FaaS fleets are
never healthy: sandboxes crash, a host seizes or slows down, traffic
spikes past capacity.  This experiment replays the same Azure-sampled
workload on a small OpenLambda cluster under three fault classes and
asks whether SFS's short-job protection survives each one:

* **crash** — every sandbox has a per-attempt probability of dying
  mid-execution; the platform retries with capped exponential backoff.
* **straggler** — one host runs at a fraction of nominal speed (the
  gray-failure mode: alive, slow, still taking work).
* **overload** — arrival rate past capacity with a per-host admission
  watermark, so the front door sheds instead of queueing unboundedly.

Each scenario runs under ``cfs`` and ``sfs`` with identical seeds and
fault plans (paired runs).  The honest metrics under faults are
*goodput* (useful responses per second), retry amplification, shed and
abandonment rates, and SLO attainment where failures count as misses —
all from :mod:`repro.metrics.faults` / :mod:`repro.metrics.slo`.

Expected shape: SFS keeps its goodput and SLO edge over CFS in every
scenario — failures hit both schedulers alike (same plan, same rng
discipline), while SFS still clears short functions faster, which under
deadlines and admission pressure converts directly into fewer timeouts
and sheds.

The grid is *shardable*: each (scenario, scheduler) cell is an
independent cluster run, so :func:`shards` / :func:`run_shard` /
:func:`render_shards` expose it to the :mod:`repro.pool` supervisor
(``repro experiment chaos --out DIR --workers N``).  A cell artifact
is the canonical JSON of its summary metrics; the merged rendering is
reduced in grid order, so the parallel sweep's output is byte-identical
to the serial one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import azure_sampled_workload, machine
from repro.faas.cluster import ClusterConfig, run_cluster
from repro.faas.openlambda import OpenLambdaConfig
from repro.faults import AdmissionControl, FaultPlan, RetryPolicy
from repro.metrics.collector import RunResult
from repro.metrics.faults import fault_summary
from repro.metrics.slo import SLO

SCHEDULERS = ("cfs", "sfs")

#: attainment is measured against this bound (p95 within 5x isolated),
#: the mid rung of metrics.slo.DEFAULT_SLOS.
CHAOS_SLO = SLO(0.95, 5.0, "p95 within 5x")


@dataclass(frozen=True)
class Config:
    n_requests: int = 16_000
    n_hosts: int = 4
    cores_per_host: int = 8
    load: float = 1.0
    #: crash scenario: per-attempt sandbox death probability
    crash_prob: float = 0.05
    #: straggler scenario: host 0's speed fraction
    straggler_speed: float = 0.4
    #: overload scenario: arrival-rate multiplier and per-host watermark
    overload_load: float = 1.4
    max_outstanding: int = 64
    #: shared failure handling
    max_attempts: int = 3
    timeout: int = 30_000_000  # 30 s, OpenLambda-ish default

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    #: scenario -> scheduler -> run
    runs: Dict[str, Dict[str, RunResult]]
    config: Config


def _scenarios(config: Config, seed: int) -> Dict[str, Tuple[float, FaultPlan, AdmissionControl]]:
    """scenario -> (load, fault plan, admission) triples."""
    return {
        "crash": (
            config.load,
            FaultPlan(seed=seed, crash_prob=config.crash_prob),
            None,
        ),
        "straggler": (
            config.load,
            FaultPlan(seed=seed, stragglers=((0, config.straggler_speed),)),
            None,
        ),
        "overload": (
            config.overload_load,
            FaultPlan(seed=seed),
            AdmissionControl(max_outstanding=config.max_outstanding),
        ),
    }


def run_cell(config: Config, seed: int, scenario: str,
             scheduler: str) -> RunResult:
    """One grid cell: one scenario's fault plan under one scheduler.

    Regenerates the (deterministic) workload from the seed, so a cell
    computed in a pool worker is identical to the same cell computed
    inline — process history never leaks into the result.
    """
    load, plan, admission = _scenarios(config, seed)[scenario]
    total_cores = config.n_hosts * config.cores_per_host
    wl = azure_sampled_workload(config.n_requests, total_cores, load, seed)
    host = OpenLambdaConfig(
        machine=machine(config.cores_per_host),
        scheduler=scheduler,
        engine="fluid",
        seed=seed,
        faults=plan,
        retry=RetryPolicy(max_attempts=config.max_attempts, seed=seed),
        admission=admission,
        timeout=config.timeout,
    )
    return run_cluster(
        wl,
        ClusterConfig(
            n_hosts=config.n_hosts, host=host, placement="least_loaded"
        ),
    )


def run(config: Config, seed: int = 0) -> Result:
    runs: Dict[str, Dict[str, RunResult]] = {}
    for scenario in _scenarios(config, seed):
        runs[scenario] = {
            scheduler: run_cell(config, seed, scenario, scheduler)
            for scheduler in SCHEDULERS
        }
    return Result(runs=runs, config=config)


def goodput_gain(result: Result, scenario: str) -> float:
    """SFS goodput over CFS goodput for one scenario."""
    sfs = fault_summary(result.runs[scenario]["sfs"])
    cfs = fault_summary(result.runs[scenario]["cfs"])
    return sfs.goodput_rps / cfs.goodput_rps if cfs.goodput_rps else float("inf")


# ----------------------------------------------------------------------
# cell summaries: the one representation both the serial render and the
# repro.pool shard artifacts are built from
# ----------------------------------------------------------------------
def cell_summary(scenario: str, scheduler: str, r: RunResult,
                 ) -> Dict[str, Any]:
    """JSON-safe digest of one grid cell (plain floats round-trip
    exactly through JSON, so a persisted cell renders identically)."""
    s = fault_summary(r)
    return {
        "scenario": scenario,
        "scheduler": scheduler,
        "goodput_rps": float(s.goodput_rps),
        "goodput_fraction": float(s.goodput_fraction),
        "retries_per_request": float(s.retries_per_request),
        "shed_rate": float(s.shed_rate),
        "abandonment_rate": float(s.abandonment_rate),
        "slo_attainment": float(CHAOS_SLO.attainment(r.records)),
        "events_executed": int(r.meta.get("events_executed", 0)),
    }


def _render_cells(cells: Sequence[Dict[str, Any]], config: Config) -> str:
    """The chaos table + goodput gains from grid-ordered cell digests."""
    rows = [
        (
            c["scenario"],
            c["scheduler"],
            f"{c['goodput_rps']:.1f}",
            f"{c['goodput_fraction']:.1%}",
            f"{c['retries_per_request']:.3f}",
            f"{c['shed_rate']:.1%}",
            f"{c['abandonment_rate']:.1%}",
            f"{c['slo_attainment']:.1%}",
        )
        for c in cells
    ]
    table = format_table(
        ["scenario", "sched", "goodput (r/s)", "good %", "retries/req",
         "shed %", "abandoned %", f"SLO ({CHAOS_SLO.name})"],
        rows,
        title=(
            f"chaos: {config.n_hosts}x{config.cores_per_host}"
            "-core cluster under sandbox crashes, a straggler host, and "
            "overload shedding"
        ),
    )
    goodput: Dict[str, Dict[str, float]] = {}
    for c in cells:
        goodput.setdefault(c["scenario"], {})[c["scheduler"]] = \
            c["goodput_rps"]
    gains = []
    for sc, by_sched in goodput.items():
        gain = (by_sched["sfs"] / by_sched["cfs"]
                if by_sched.get("cfs") else float("inf"))
        gains.append(f"SFS goodput gain over CFS under {sc}: {gain:.2f}x")
    return table + "\n" + "\n".join(gains)


def render(result: Result) -> str:
    cells = [
        cell_summary(scenario, scheduler, r)
        for scenario, by_sched in result.runs.items()
        for scheduler, r in by_sched.items()
    ]
    return _render_cells(cells, result.config)


# ----------------------------------------------------------------------
# repro.pool shard protocol (cell-granular parallel sweeps)
# ----------------------------------------------------------------------
def shards(config: Config, seed: int) -> List[Tuple[str, Dict[str, Any]]]:
    """``(shard_id, payload)`` for every grid cell, in grid order."""
    return [
        (f"{scenario}.{scheduler}",
         {"scenario": scenario, "scheduler": scheduler, "seed": seed,
          "config": asdict(config)})
        for scenario in _scenarios(config, seed)
        for scheduler in SCHEDULERS
    ]


def run_shard(payload: Dict[str, Any]) -> str:
    """Execute one cell in (possibly) a pool worker; returns the cell
    artifact: one line of canonical JSON."""
    config = Config(**payload["config"])
    r = run_cell(config, payload["seed"], payload["scenario"],
                 payload["scheduler"])
    cell = cell_summary(payload["scenario"], payload["scheduler"], r)
    return json.dumps(cell, sort_keys=True, separators=(",", ":")) + "\n"


def render_shards(texts: Sequence[str], config: Config) -> str:
    """Merged rendering from grid-ordered cell artifacts — byte-equal
    to :func:`render` on an equivalent serial :class:`Result`."""
    return _render_cells([json.loads(t) for t in texts], config)


def emit_explorers(out_dir, config: Config, seed: int = 0,
                   scenarios: Optional[Sequence[str]] = None):
    """Per-point interactive explorers for the chaos grid.

    For each scenario this replays a single-host slice of the cluster
    point (``n_requests / n_hosts`` requests on one
    ``cores_per_host``-core machine, same fault plan / retry /
    admission / deadline) under both schedulers with tracing on, and
    writes ``<scenario>-cfs.html`` / ``<scenario>-sfs.html`` plus the
    aligned ``<scenario>-diff.html`` via
    :func:`repro.experiments.common.emit_point_explorers`.  Returns the
    written paths.
    """
    from repro.experiments.common import emit_point_explorers
    from repro.experiments.runner import RunConfig

    paths = []
    for scenario, (load, plan, admission) in _scenarios(config, seed).items():
        if scenarios is not None and scenario not in scenarios:
            continue
        n = max(1, config.n_requests // config.n_hosts)
        wl = azure_sampled_workload(n, config.cores_per_host, load, seed)
        base = RunConfig(
            engine="fluid",
            machine=machine(config.cores_per_host),
            faults=plan,
            retry=RetryPolicy(max_attempts=config.max_attempts, seed=seed),
            admission=admission,
            timeout=config.timeout,
        )
        paths.extend(emit_point_explorers(
            out_dir, wl, base, schedulers=SCHEDULERS, label=scenario))
    return paths
