"""Extension: scheduling under failure (the ``repro.faults`` showcase).

The paper evaluates SFS on a healthy machine.  Real FaaS fleets are
never healthy: sandboxes crash, a host seizes or slows down, traffic
spikes past capacity.  This experiment replays the same Azure-sampled
workload on a small OpenLambda cluster under three fault classes and
asks whether SFS's short-job protection survives each one:

* **crash** — every sandbox has a per-attempt probability of dying
  mid-execution; the platform retries with capped exponential backoff.
* **straggler** — one host runs at a fraction of nominal speed (the
  gray-failure mode: alive, slow, still taking work).
* **overload** — arrival rate past capacity with a per-host admission
  watermark, so the front door sheds instead of queueing unboundedly.

Each scenario runs under ``cfs`` and ``sfs`` with identical seeds and
fault plans (paired runs).  The honest metrics under faults are
*goodput* (useful responses per second), retry amplification, shed and
abandonment rates, and SLO attainment where failures count as misses —
all from :mod:`repro.metrics.faults` / :mod:`repro.metrics.slo`.

Expected shape: SFS keeps its goodput and SLO edge over CFS in every
scenario — failures hit both schedulers alike (same plan, same rng
discipline), while SFS still clears short functions faster, which under
deadlines and admission pressure converts directly into fewer timeouts
and sheds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import (
    azure_sampled_workload,
    machine,
    summarise_sweep,
)
from repro.faas.cluster import ClusterConfig, run_cluster
from repro.faas.openlambda import OpenLambdaConfig
from repro.faults import AdmissionControl, FaultPlan, RetryPolicy
from repro.metrics.collector import RunResult
from repro.metrics.faults import fault_summary
from repro.metrics.slo import SLO

SCHEDULERS = ("cfs", "sfs")

#: attainment is measured against this bound (p95 within 5x isolated),
#: the mid rung of metrics.slo.DEFAULT_SLOS.
CHAOS_SLO = SLO(0.95, 5.0, "p95 within 5x")


@dataclass(frozen=True)
class Config:
    n_requests: int = 16_000
    n_hosts: int = 4
    cores_per_host: int = 8
    load: float = 1.0
    #: crash scenario: per-attempt sandbox death probability
    crash_prob: float = 0.05
    #: straggler scenario: host 0's speed fraction
    straggler_speed: float = 0.4
    #: overload scenario: arrival-rate multiplier and per-host watermark
    overload_load: float = 1.4
    max_outstanding: int = 64
    #: shared failure handling
    max_attempts: int = 3
    timeout: int = 30_000_000  # 30 s, OpenLambda-ish default

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    #: scenario -> scheduler -> run
    runs: Dict[str, Dict[str, RunResult]]
    config: Config


def _scenarios(config: Config, seed: int) -> Dict[str, Tuple[float, FaultPlan, AdmissionControl]]:
    """scenario -> (load, fault plan, admission) triples."""
    return {
        "crash": (
            config.load,
            FaultPlan(seed=seed, crash_prob=config.crash_prob),
            None,
        ),
        "straggler": (
            config.load,
            FaultPlan(seed=seed, stragglers=((0, config.straggler_speed),)),
            None,
        ),
        "overload": (
            config.overload_load,
            FaultPlan(seed=seed),
            AdmissionControl(max_outstanding=config.max_outstanding),
        ),
    }


def run(config: Config, seed: int = 0) -> Result:
    total_cores = config.n_hosts * config.cores_per_host
    retry = RetryPolicy(max_attempts=config.max_attempts, seed=seed)
    runs: Dict[str, Dict[str, RunResult]] = {}
    for scenario, (load, plan, admission) in _scenarios(config, seed).items():
        wl = azure_sampled_workload(config.n_requests, total_cores, load, seed)
        runs[scenario] = {}
        for scheduler in SCHEDULERS:
            host = OpenLambdaConfig(
                machine=machine(config.cores_per_host),
                scheduler=scheduler,
                engine="fluid",
                seed=seed,
                faults=plan,
                retry=retry,
                admission=admission,
                timeout=config.timeout,
            )
            runs[scenario][scheduler] = run_cluster(
                wl,
                ClusterConfig(
                    n_hosts=config.n_hosts, host=host, placement="least_loaded"
                ),
            )
    return Result(runs=runs, config=config)


def goodput_gain(result: Result, scenario: str) -> float:
    """SFS goodput over CFS goodput for one scenario."""
    sfs = fault_summary(result.runs[scenario]["sfs"])
    cfs = fault_summary(result.runs[scenario]["cfs"])
    return sfs.goodput_rps / cfs.goodput_rps if cfs.goodput_rps else float("inf")


def _cells(r: RunResult) -> Tuple[str, ...]:
    s = fault_summary(r)
    att = CHAOS_SLO.attainment(r.records)
    return (
        f"{s.goodput_rps:.1f}",
        f"{s.goodput_fraction:.1%}",
        f"{s.retries_per_request:.3f}",
        f"{s.shed_rate:.1%}",
        f"{s.abandonment_rate:.1%}",
        f"{att:.1%}",
    )


def render(result: Result) -> str:
    rows = summarise_sweep(result.runs, _cells, key_fmt=str)
    table = format_table(
        ["scenario", "sched", "goodput (r/s)", "good %", "retries/req",
         "shed %", "abandoned %", f"SLO ({CHAOS_SLO.name})"],
        rows,
        title=(
            f"chaos: {result.config.n_hosts}x{result.config.cores_per_host}"
            "-core cluster under sandbox crashes, a straggler host, and "
            "overload shedding"
        ),
    )
    gains = [
        f"SFS goodput gain over CFS under {sc}: {goodput_gain(result, sc):.2f}x"
        for sc in result.runs
    ]
    return table + "\n" + "\n".join(gains)
