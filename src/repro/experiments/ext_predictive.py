"""Extension: size-based scheduling vs SFS vs the SRTF oracle (§XI).

SFS avoids per-function duration prediction by design; the size-based
scheduling literature (Harchol-Balter et al., web servers) embraces it.
This experiment puts both on the same chassis:

* ``sfs``        — stock SFS (FIFO queue, adaptive global slice);
* ``predictive`` — :class:`repro.core.predictive.PredictiveSFS`
                   (shortest-predicted-first, per-function slices from
                   an EWMA of history);
* ``srtf``       — the clairvoyant oracle (upper bound);
* ``cfs``        — the kernel baseline.

Shape: prediction closes much of the SFS-to-SRTF gap on mean/p90 (the
heavy mid-range), at a small cost around the median (mispredicted cold
functions jump the queue); both user-space schedulers crush CFS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import format_cdf_probes
from repro.core.config import SFSConfig
from repro.core.predictive import PredictiveSFS
from repro.core.sfs import SFS
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.machine.fluid import FluidMachine
from repro.metrics.collector import RunResult, build_records
from repro.sim.engine import Simulator
from repro.sim.task import SchedPolicy


@dataclass(frozen=True)
class Config:
    n_requests: int = 20_000
    n_cores: int = 12
    load: float = 1.0
    notify_latency: int = 200

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    runs: Dict[str, RunResult]
    predictor_apps: int
    config: Config


def _run_layer(workload, config: Config, layer_cls) -> Tuple[RunResult, int]:
    """Drive a custom user-space scheduler class over the fluid machine."""
    sim = Simulator()
    m = FluidMachine(sim, machine(config.n_cores))
    layer = layer_cls(m, SFSConfig())
    pairs = []

    def dispatch(spec):
        task = spec.make_task(policy=SchedPolicy.CFS)
        pairs.append((spec, task))
        m.spawn(task)
        sim.schedule(config.notify_latency, layer.submit, task, spec.arrival)

    for spec in workload:
        sim.schedule_at(spec.arrival, dispatch, spec)
    sim.run()
    result = RunResult(
        scheduler=layer_cls.__name__.lower(),
        engine="fluid",
        records=build_records(pairs),
        sim_time=sim.now,
        busy_time=m.busy_time,
        n_cores=m.n_cores,
        sfs_stats=layer.stats,
    )
    known = layer.predictor.known_apps() if hasattr(layer, "predictor") else 0
    return result, known


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed
    )
    base = RunConfig(engine="fluid", machine=machine(config.n_cores))
    runs: Dict[str, RunResult] = {}
    runs["cfs"] = run_workload(wl, base)
    runs["srtf"] = run_workload(wl, base.with_scheduler("srtf"))
    runs["sfs"], _ = _run_layer(wl, config, SFS)
    runs["predictive"], known = _run_layer(wl, config, PredictiveSFS)
    return Result(runs=runs, predictor_apps=known, config=config)


def gap_closed(result: Result) -> float:
    """Fraction of the SFS-to-SRTF mean-turnaround gap prediction closes."""
    sfs = result.runs["sfs"].turnarounds.mean()
    pred = result.runs["predictive"].turnarounds.mean()
    srtf = result.runs["srtf"].turnarounds.mean()
    gap = sfs - srtf
    if gap <= 0:
        return 1.0
    return float((sfs - pred) / gap)


def render(result: Result) -> str:
    series = {name: r.turnarounds for name, r in result.runs.items()}
    table = format_cdf_probes(
        series,
        title=(
            "ext-predictive: size hints vs SFS vs the oracle "
            f"(load {result.config.load:.0%}, "
            f"{result.predictor_apps} functions learned)"
        ),
    )
    return (
        table
        + f"\nfraction of the SFS->SRTF mean gap closed by prediction: "
        + f"{gap_closed(result):.1%}"
    )
