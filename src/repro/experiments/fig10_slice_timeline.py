"""Fig 10: timeline of the adaptive time slice vs observed IATs.

The monitor recomputes ``S = mean(last N IATs) x cores`` every N
arrivals; the figure shows S tracking the workload's arrival-rate
swings over the run.  We reproduce the series and verify the tracking
relationship (each recomputed S equals cores x window-mean IAT, modulo
clamping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.report import format_series
from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    load: float = 1.0
    engine: str = "fluid"
    iat_kind: str = "bursty"   # spiky arrivals make the timeline move

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    slice_timeline: List[Tuple[int, int]]
    arrivals: np.ndarray
    run: RunResult
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, config.load, seed,
        iat_kind=config.iat_kind,
    )
    res = run_workload(
        wl,
        RunConfig(scheduler="sfs", engine=config.engine,
                  machine=machine(config.n_cores)),
    )
    arrivals = np.array([r.arrival for r in wl], dtype=np.int64)
    return Result(
        slice_timeline=res.slice_timeline or [],
        arrivals=arrivals,
        run=res,
        config=config,
    )


def window_mean_iats(result: Result, window: int = 100) -> np.ndarray:
    """Rolling window-mean IAT at each slice recomputation point."""
    iats = np.diff(result.arrivals)
    if iats.size < window:
        return np.array([iats.mean()]) if iats.size else np.array([])
    kernel = np.ones(window) / window
    return np.convolve(iats, kernel, mode="valid")


def render(result: Result) -> str:
    if not result.slice_timeline:
        return "Fig 10: no slice recomputations recorded"
    ts = [t for t, _s in result.slice_timeline]
    ss = [s / 1e3 for _t, s in result.slice_timeline]
    table = format_series(ts, ss, name="S (ms)",
                          max_rows=30)
    mean_iat = float(np.diff(result.arrivals).mean()) / 1e3
    return (
        f"Fig 10: adaptive slice timeline "
        f"({len(result.slice_timeline) - 1} recomputations, "
        f"mean IAT {mean_iat:.2f} ms, cores {result.config.n_cores})\n" + table
    )
