"""Extension: pricing the 'unfair overcharges' claim (§I, §III).

The paper motivates SFS economically — "the 'pay-per-use' promise is
delivered and unfair overcharges are reduced" — but never puts a dollar
figure on it.  This experiment does: using the paper's own quoted AWS
Lambda prices, it bills every request's observed turnaround and
compares against the zero-interference bill, per scheduler and load.

Expected shape: under CFS at high load users pay several times the fair
price (waiting time is billed as compute); SFS returns the bill for the
short majority to near-fair; the SRTF oracle bounds what is possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.common import (
    SHORT_CPU_BOUND_US,
    azure_sampled_workload,
    machine,
)
from repro.experiments.runner import RunConfig, run_many
from repro.metrics.billing import BillingModel, overcharge_report
from repro.metrics.collector import RunResult


@dataclass(frozen=True)
class Config:
    n_requests: int = 20_000
    n_cores: int = 12
    loads: Tuple[float, ...] = (0.5, 0.8, 1.0)
    engine: str = "fluid"
    schedulers: Tuple[str, ...] = ("cfs", "sfs", "srtf")

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000, loads=(0.8, 1.0))


@dataclass
class Result:
    runs: Dict[float, Dict[str, RunResult]]
    model: BillingModel
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    base = RunConfig(engine=config.engine, machine=machine(config.n_cores))
    runs = {}
    for load in config.loads:
        wl = azure_sampled_workload(config.n_requests, config.n_cores, load, seed)
        runs[load] = run_many(wl, base, config.schedulers)
    return Result(runs=runs, model=BillingModel(), config=config)


def overcharge_ratio(result: Result, load: float, sched: str) -> float:
    return result.model.overcharge_ratio(result.runs[load][sched].records)


def render(result: Result) -> str:
    rows = []
    for load, by in result.runs.items():
        rep = overcharge_report(by, result.model)
        for name, stats in rep.items():
            rows.append(
                (
                    f"{load:.0%}",
                    name,
                    f"${stats['ideal']:.4f}",
                    f"${stats['invoice']:.4f}",
                    f"${stats['overcharge']:.4f}",
                    f"{stats['overcharge_ratio']:.1%}",
                )
            )
    table = format_table(
        ["load", "sched", "fair bill", "actual bill", "overcharge", "ratio"],
        rows,
        title=(
            "ext-billing: pricing the paper's overcharge claim "
            "(AWS Lambda rates from SI; "
            f"{result.config.n_requests} invocations, "
            f"{result.model.memory_gb * 1024:.0f} MB functions)"
        ),
    )
    # the fairness claim is about the short majority: break them out
    rows2 = []
    for load, by in result.runs.items():
        for name, r in by.items():
            shorts = [
                rec for rec in r.records if rec.cpu_demand < SHORT_CPU_BOUND_US
            ]
            rows2.append(
                (
                    f"{load:.0%}",
                    name,
                    f"{result.model.overcharge_ratio(shorts):.1%}",
                )
            )
    table2 = format_table(
        ["load", "sched", "short-function overcharge"],
        rows2,
        title="overcharge ratio for the short majority (~84% of requests)",
    )
    hi = max(result.config.loads)
    saved = (
        result.model.overcharge(result.runs[hi]["cfs"].records)
        - result.model.overcharge(result.runs[hi]["sfs"].records)
    )
    return table + "\n\n" + table2 + (
        f"\nSFS returns ${saved:.4f} of CFS overcharges to users at "
        f"{hi:.0%} load on this sample alone"
    )
