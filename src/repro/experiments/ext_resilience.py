"""Extension: SLO under chaos — the resilience scorecard (§VIII-A).

The paper's future-work question is whether SFS's short-job protection
matters *at cluster scale, under real failures*.  This grid answers it
with the ``repro.resilient`` serving tier: health-checked failover,
hedged requests and retry-storm defense from
:mod:`repro.faas.resilience`, driven by three chaos scenarios:

* **domain_outage** — the cluster is split into two fault domains
  (racks) and one whole domain fails for a quarter of the run: the
  correlated-failure mode a per-host window cannot express.  Failover
  re-dispatches the stranded work; hedging covers the detection gap.
* **flaky_host** — host 0 flaps through seeded fail/recover windows
  (:func:`repro.faults.plan.flaky_host_windows`): the gray-failure mode
  where detection latency is paid over and over.
* **retry_storm** — an aggressive crash rate whose naive retries would
  amplify into a storm; the global retry-budget token bucket and
  per-host admission control shed the amplification instead.

Every scenario runs under ``cfs`` and ``sfs`` at {4, 16, 64} hosts with
identical seeds and plans (paired runs).  The scorecard reports SLO
attainment (failures count as misses, :mod:`repro.metrics.slo`),
goodput, and the resilience counters (failovers, hedges, hedge wins,
host-lost, throttled retries).

The grid is *shardable*: each (scenario, scheduler, hosts) cell is an
independent cluster run exposed through ``shards`` / ``run_shard`` /
``render_shards`` to the :mod:`repro.pool` supervisor
(``repro experiment ext-resilience --out DIR --workers N``); cell
artifacts are canonical JSON and the merged rendering is reduced in
grid order, so a parallel sweep's output is byte-identical to the
serial one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import azure_sampled_workload, machine
from repro.faas.cluster import ClusterConfig, run_cluster
from repro.faas.openlambda import OpenLambdaConfig
from repro.faas.resilience import HedgePolicy, ResilienceConfig, RetryBudget
from repro.faults import AdmissionControl, FaultPlan, RetryPolicy
from repro.faults.plan import flaky_host_windows
from repro.metrics.collector import RunResult
from repro.metrics.faults import fault_summary
from repro.metrics.slo import SLO

SCHEDULERS = ("cfs", "sfs")
SCENARIOS = ("domain_outage", "flaky_host", "retry_storm")

#: the scorecard's bound (matching chaos): p95 within 5x isolated.
RESILIENCE_SLO = SLO(0.95, 5.0, "p95 within 5x")


@dataclass(frozen=True)
class Config:
    n_requests: int = 12_000
    host_counts: Tuple[int, ...] = (4, 16, 64)
    cores_per_host: int = 8
    load: float = 1.0
    #: detection latency: dispatcher liveness-poll period (us), the
    #: same order as SFS's own 4 ms message poller
    health_interval: int = 4_000
    max_failovers: int = 4
    #: hedged requests fire after this per-request base delay (us)
    hedge_delay: int = 50_000
    #: flaky_host scenario: outage windows on host 0
    flaky_windows: int = 3
    #: retry_storm scenario: crash rate, budget and admission watermark
    storm_crash_prob: float = 0.25
    budget_rate_per_sec: float = 25.0
    budget_burst: int = 10
    max_outstanding: int = 64
    #: shared failure handling
    max_attempts: int = 3
    timeout: int = 30_000_000  # 30 s, OpenLambda-ish default

    def __post_init__(self) -> None:
        # JSON round-trips tuples as lists (the pool shard payloads)
        object.__setattr__(self, "host_counts", tuple(self.host_counts))

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=2_000, host_counts=(4,))


@dataclass
class Result:
    #: scenario -> scheduler -> n_hosts -> run
    runs: Dict[str, Dict[str, Dict[int, RunResult]]]
    config: Config


def _domains(n_hosts: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Two racks: the first half of the hosts and the rest."""
    half = max(1, n_hosts // 2)
    return (tuple(range(half)), tuple(range(half, n_hosts)))


def _scenario(config: Config, seed: int, scenario: str, n_hosts: int,
              horizon_us: int):
    """(fault plan, admission, resilience) for one scenario at a size."""
    hedge = HedgePolicy(delay=config.hedge_delay, seed=seed)
    if scenario == "domain_outage":
        first, rest = _domains(n_hosts)
        plan = FaultPlan(
            seed=seed,
            fault_domains=(first, rest) if rest else (first,),
            domain_failures=((0, horizon_us // 4, horizon_us // 2),),
        )
        res = ResilienceConfig(
            health_interval=config.health_interval,
            max_failovers=config.max_failovers, hedge=hedge,
        )
        return plan, None, res
    if scenario == "flaky_host":
        plan = FaultPlan(
            seed=seed,
            host_failures=flaky_host_windows(
                seed, 0, horizon_us, n_windows=config.flaky_windows,
                down_us=max(1, horizon_us // 10)),
        )
        res = ResilienceConfig(
            health_interval=config.health_interval,
            max_failovers=config.max_failovers, hedge=hedge,
        )
        return plan, None, res
    if scenario == "retry_storm":
        plan = FaultPlan(seed=seed, crash_prob=config.storm_crash_prob)
        res = ResilienceConfig(
            health_interval=config.health_interval,
            max_failovers=config.max_failovers,
            retry_budget=RetryBudget(
                rate_per_sec=config.budget_rate_per_sec,
                burst=config.budget_burst),
        )
        return plan, AdmissionControl(config.max_outstanding), res
    raise ValueError(f"unknown scenario {scenario!r}")


def run_cell(config: Config, seed: int, scenario: str, scheduler: str,
             n_hosts: int) -> RunResult:
    """One grid cell: a full fault-tolerant cluster run.

    Regenerates the (deterministic) workload from the seed, so a cell
    computed in a pool worker is identical to the same cell computed
    inline — process history never leaks into the result.
    """
    total_cores = n_hosts * config.cores_per_host
    wl = azure_sampled_workload(config.n_requests, total_cores,
                                config.load, seed)
    horizon = max(spec.arrival for spec in wl) + 1
    plan, admission, res = _scenario(config, seed, scenario, n_hosts,
                                     horizon)
    host = OpenLambdaConfig(
        machine=machine(config.cores_per_host),
        scheduler=scheduler,
        engine="fluid",
        seed=seed,
        faults=plan,
        retry=RetryPolicy(max_attempts=config.max_attempts, seed=seed),
        admission=admission,
        timeout=config.timeout,
    )
    return run_cluster(
        wl,
        ClusterConfig(n_hosts=n_hosts, host=host,
                      placement="least_loaded", resilience=res),
    )


def run(config: Config, seed: int = 0) -> Result:
    runs: Dict[str, Dict[str, Dict[int, RunResult]]] = {}
    for scenario in SCENARIOS:
        by_sched: Dict[str, Dict[int, RunResult]] = {}
        for scheduler in SCHEDULERS:
            by_sched[scheduler] = {
                n: run_cell(config, seed, scenario, scheduler, n)
                for n in config.host_counts
            }
        runs[scenario] = by_sched
    return Result(runs=runs, config=config)


# ----------------------------------------------------------------------
# cell summaries: the one representation both the serial render and the
# repro.pool shard artifacts are built from
# ----------------------------------------------------------------------
def cell_summary(scenario: str, scheduler: str, n_hosts: int,
                 r: RunResult) -> Dict[str, Any]:
    """JSON-safe digest of one grid cell (plain floats and ints
    round-trip exactly through JSON, so a persisted cell renders
    identically)."""
    s = fault_summary(r)
    stats = r.meta.get("fault_stats", {})
    return {
        "scenario": scenario,
        "scheduler": scheduler,
        "n_hosts": int(n_hosts),
        "slo_attainment": float(RESILIENCE_SLO.attainment(r.records)),
        "goodput_rps": float(s.goodput_rps),
        "goodput_fraction": float(s.goodput_fraction),
        "abandonment_rate": float(s.abandonment_rate),
        "host_lost": int(stats.get("host_lost", 0)),
        "failovers": int(stats.get("failovers", 0)),
        "hedges": int(stats.get("hedges", 0)),
        "hedge_wins": int(stats.get("hedge_wins", 0)),
        "retry_throttled": int(stats.get("retry_throttled", 0)),
        "shed": int(stats.get("shed", 0)),
        "events_executed": int(r.meta.get("events_executed", 0)),
    }


def _render_cells(cells: Sequence[Dict[str, Any]], config: Config) -> str:
    """The SLO-under-chaos scorecard from grid-ordered cell digests."""
    rows = [
        (
            c["scenario"],
            c["scheduler"],
            str(c["n_hosts"]),
            f"{c['slo_attainment']:.1%}",
            f"{c['goodput_fraction']:.1%}",
            str(c["failovers"]),
            str(c["hedges"]),
            str(c["hedge_wins"]),
            str(c["host_lost"]),
            str(c["retry_throttled"]),
        )
        for c in cells
    ]
    table = format_table(
        ["scenario", "sched", "hosts", f"SLO ({RESILIENCE_SLO.name})",
         "good %", "failovers", "hedges", "hedge wins", "host lost",
         "throttled"],
        rows,
        title=(
            "resilience scorecard: SLO under domain outages, a flaky "
            "host, and a retry storm (failover + hedging + retry budget)"
        ),
    )
    att: Dict[Tuple[str, int], Dict[str, float]] = {}
    for c in cells:
        att.setdefault((c["scenario"], c["n_hosts"]), {})[c["scheduler"]] \
            = c["slo_attainment"]
    lines = []
    for (sc, n), by_sched in att.items():
        if "cfs" in by_sched and "sfs" in by_sched:
            delta = by_sched["sfs"] - by_sched["cfs"]
            lines.append(
                f"SFS SLO attainment delta over CFS under {sc} at "
                f"{n} hosts: {delta:+.1%}")
    return table + "\n" + "\n".join(lines)


def render(result: Result) -> str:
    cells = [
        cell_summary(scenario, scheduler, n, r)
        for scenario, by_sched in result.runs.items()
        for scheduler, by_n in by_sched.items()
        for n, r in by_n.items()
    ]
    return _render_cells(cells, result.config)


# ----------------------------------------------------------------------
# repro.pool shard protocol (cell-granular parallel sweeps)
# ----------------------------------------------------------------------
def shards(config: Config, seed: int) -> List[Tuple[str, Dict[str, Any]]]:
    """``(shard_id, payload)`` for every grid cell, in grid order."""
    return [
        (f"{scenario}.{scheduler}.h{n}",
         {"scenario": scenario, "scheduler": scheduler, "n_hosts": n,
          "seed": seed, "config": asdict(config)})
        for scenario in SCENARIOS
        for scheduler in SCHEDULERS
        for n in config.host_counts
    ]


def run_shard(payload: Dict[str, Any]) -> str:
    """Execute one cell in (possibly) a pool worker; returns the cell
    artifact: one line of canonical JSON."""
    config = Config(**payload["config"])
    r = run_cell(config, payload["seed"], payload["scenario"],
                 payload["scheduler"], payload["n_hosts"])
    cell = cell_summary(payload["scenario"], payload["scheduler"],
                        payload["n_hosts"], r)
    return json.dumps(cell, sort_keys=True, separators=(",", ":")) + "\n"


def render_shards(texts: Sequence[str], config: Config) -> str:
    """Merged rendering from grid-ordered cell artifacts — byte-equal
    to :func:`render` on an equivalent serial :class:`Result`."""
    return _render_cells([json.loads(t) for t in texts], config)


def emit_explorers(out_dir, config: Config, seed: int = 0,
                   scenarios: Optional[Sequence[str]] = None):
    """Per-point interactive explorers for the resilience grid.

    Replays the smallest cluster size of each scenario with tracing on
    (both schedulers) and writes ``<scenario>-cfs.html`` /
    ``<scenario>-sfs.html`` plus the aligned ``<scenario>-diff.html``;
    the explorer's fault overlay then shows health marks, failover
    re-dispatches, hedge launches/wins and throttle decisions.  Returns
    the written paths.
    """
    from pathlib import Path

    from repro.explore import RunBundle, write_explorer
    from repro.trace import TraceRecorder

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    n_hosts = min(config.host_counts)
    total_cores = n_hosts * config.cores_per_host
    paths = []
    for scenario in SCENARIOS:
        if scenarios is not None and scenario not in scenarios:
            continue
        wl = azure_sampled_workload(config.n_requests, total_cores,
                                    config.load, seed)
        horizon = max(spec.arrival for spec in wl) + 1
        plan, admission, res = _scenario(config, seed, scenario, n_hosts,
                                         horizon)
        bundles = {}
        for scheduler in SCHEDULERS:
            trace = TraceRecorder()
            host = OpenLambdaConfig(
                machine=machine(config.cores_per_host),
                scheduler=scheduler, engine="fluid", seed=seed,
                faults=plan,
                retry=RetryPolicy(max_attempts=config.max_attempts,
                                  seed=seed),
                admission=admission, timeout=config.timeout,
            )
            r = run_cluster(
                wl,
                ClusterConfig(n_hosts=n_hosts, host=host,
                              placement="least_loaded", resilience=res),
                trace=trace,
            )
            bundle = RunBundle.capture(r, trace,
                                       title=f"{scenario} — {scheduler}")
            bundles[scheduler] = bundle
            path = out / f"{scenario}-{scheduler}.html"
            write_explorer(path, [bundle], title=f"{scenario} — {scheduler}")
            paths.append(path)
        a, b = (bundles[s] for s in SCHEDULERS)
        path = out / f"{scenario}-diff.html"
        write_explorer(path, [a, b],
                       title=f"{scenario} — {a.label} vs {b.label}")
        paths.append(path)
    return paths
