"""Extension: the paper's proposed FaaS SLO, made measurable (§I).

The paper sketches "X% of function invocations must be finished within
a bounded ratio with respect to the duration under ideal isolation" as
a candidate SLO for short-job-dominant FaaS.  This experiment evaluates
that SLO ladder for CFS, SFS and the SRTF oracle across load levels:
which stretch bound each scheduler can actually promise at each
quantile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import (
    azure_sampled_workload,
    machine,
    summarise_sweep,
)
from repro.experiments.runner import RunConfig, run_many
from repro.metrics.collector import RunResult
from repro.metrics.slo import DEFAULT_SLOS, max_stretch_bound


@dataclass(frozen=True)
class Config:
    n_requests: int = 20_000
    n_cores: int = 12
    loads: Tuple[float, ...] = (0.8, 1.0)
    engine: str = "fluid"
    schedulers: Tuple[str, ...] = ("cfs", "sfs", "srtf")

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000)


@dataclass
class Result:
    runs: Dict[float, Dict[str, RunResult]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    base = RunConfig(engine=config.engine, machine=machine(config.n_cores))
    runs = {}
    for load in config.loads:
        wl = azure_sampled_workload(config.n_requests, config.n_cores, load, seed)
        runs[load] = run_many(wl, base, config.schedulers)
    return Result(runs=runs, config=config)


def attainment_rows(result: Result):
    rows = []
    for slo in DEFAULT_SLOS:
        for load_s, name, att, met in summarise_sweep(
            result.runs,
            lambda r, slo=slo: (slo.attainment(r.records),
                                slo.satisfied(r.records)),
        ):
            rows.append((load_s, slo.name, name, att, met))
    return rows


def render(result: Result) -> str:
    rows = [
        (load, slo_name, sched, f"{att:.3f}", "yes" if met else "NO")
        for load, slo_name, sched, att, met in attainment_rows(result)
    ]
    t1 = format_table(
        ["load", "SLO", "sched", "attainment", "met"],
        rows,
        title="ext-slo: attainment of the paper's proposed stretch SLOs",
    )
    rows2 = summarise_sweep(
        result.runs,
        lambda r: (f"{max_stretch_bound(r.records, 0.95):.1f}x",
                   f"{max_stretch_bound(r.records, 0.99):.1f}x"),
    )
    t2 = format_table(
        ["load", "sched", "p95 stretch", "p99 stretch"],
        rows2,
        title="tightest promisable bound per quantile",
    )
    return t1 + "\n\n" + t2
