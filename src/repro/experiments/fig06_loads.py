"""Fig 6: standalone SFS vs CFS execution-duration CDFs across loads.

Expected shape: SFS ~= CFS at 50 % load, ahead at medium loads, and far
ahead for the short majority at 100 % load, while maintaining an almost
identical distribution for ~83 % of requests at *every* load level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from repro.metrics.stats import percentile

from repro.analysis.report import format_cdf_probes, format_table
from repro.experiments import loadsweep
from repro.experiments.common import SHORT_CPU_BOUND_US

Config = loadsweep.Config
Result = loadsweep.Result
run = loadsweep.run


def render(result: Result) -> str:
    parts = []
    for load, by_sched in result.runs.items():
        series = {name: r.turnarounds for name, r in by_sched.items()}
        parts.append(
            format_cdf_probes(
                series, title=f"Fig 6: execution duration (ms), load {load:.0%}"
            )
        )
    # the "83 % of requests keep near-identical performance" observation
    rows = []
    for load, by_sched in result.runs.items():
        sfs = by_sched["sfs"]
        short = sfs.array("cpu_demand") < SHORT_CPU_BOUND_US
        t_short = sfs.turnarounds[short]
        rows.append(
            (
                f"{load:.0%}",
                f"{short.mean():.3f}",
                percentile(t_short, 50) / 1000.0,
                percentile(t_short, 90) / 1000.0,
            )
        )
    parts.append(
        format_table(
            ["load", "short fraction", "SFS short p50 (ms)", "SFS short p90 (ms)"],
            rows,
            title="short-function stability across loads (SFS)",
        )
    )
    return "\n\n".join(parts)
