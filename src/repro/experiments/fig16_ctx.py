"""Fig 16: ratio of CFS context switches to SFS context switches.

Per-request paired ratio on the OpenLambda workload.  Paper anchors:
more than 99 % of requests context-switch more under CFS than SFS, and
~85 % of requests switch at least 10x more.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from repro.metrics.stats import percentile

from repro.analysis.report import format_table
from repro.experiments import openlambda_sweep

Config = openlambda_sweep.Config
Result = openlambda_sweep.Result
run = openlambda_sweep.run


def ctx_ratio(result: Result, load: float) -> np.ndarray:
    """Per-request (CFS switches + 1) / (SFS switches + 1).

    The +1 smoothing counts the final exit reschedule, present for
    every process, and keeps ratios finite for requests that SFS runs
    without a single preemption.
    """
    by = result.runs[load]
    cfs = by["cfs"].array("ctx_involuntary")
    sfs = by["sfs"].array("ctx_involuntary")
    return (cfs + 1.0) / (sfs + 1.0)


def render(result: Result) -> str:
    rows = []
    for load in result.runs:
        r = ctx_ratio(result, load)
        rows.append(
            (
                f"{load:.0%}",
                f"{float((r > 1).mean()):.3f}",
                f"{float((r >= 10).mean()):.3f}",
                f"{float(np.median(r)):.1f}",
                f"{percentile(r, 90):.1f}",
            )
        )
    return format_table(
        ["load", "P(ratio>1)", "P(ratio>=10)", "median", "p90"],
        rows,
        title=(
            "Fig 16: CFS/SFS context-switch ratio "
            "(paper: >99% of requests >1x, ~85% >=10x)"
        ),
    )
