"""Fig 15: OpenLambda percentile breakdowns and p99 speedups.

Paper anchors: OpenLambda+SFS holds a p99 of ~4.75 s across loads;
relative to OpenLambda+CFS that is a 1.65x / 4.04x / 7.93x p99 speedup
at 80 % / 90 % / 100 % load.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.analysis.report import format_table
from repro.experiments import openlambda_sweep

Config = openlambda_sweep.Config
Result = openlambda_sweep.Result
run = openlambda_sweep.run

QS = (50.0, 90.0, 99.0)

#: paper's p99 CFS/SFS speedups per load
PAPER_P99_SPEEDUP = {0.8: 1.65, 0.9: 4.04, 1.0: 7.93}


def p99_speedup(result: Result, load: float) -> float:
    by = result.runs[load]
    cfs = np.percentile(by["cfs"].turnarounds, 99)
    sfs = np.percentile(by["sfs"].turnarounds, 99)
    return float(cfs / sfs)


def render(result: Result) -> str:
    rows = []
    for load, by_sched in result.runs.items():
        for name, r in by_sched.items():
            t = r.turnarounds / 1e6
            rows.append(
                (f"{load:.0%}", f"OL+{name}")
                + tuple(f"{float(np.percentile(t, q)):.3f}" for q in QS)
            )
    table = format_table(
        ["load", "system"] + [f"p{q:g} (s)" for q in QS],
        rows,
        title="Fig 15: OpenLambda percentile breakdown",
    )
    lines = []
    for load in result.runs:
        paper = PAPER_P99_SPEEDUP.get(round(load, 2), None)
        paper_s = f" (paper {paper}x)" if paper else ""
        lines.append(f"p99 speedup SFS over CFS at {load:.0%}: "
                     f"{p99_speedup(result, load):.2f}x{paper_s}")
    return table + "\n" + "\n".join(lines)
