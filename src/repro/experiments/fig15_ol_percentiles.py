"""Fig 15: OpenLambda percentile breakdowns and p99 speedups.

Paper anchors: OpenLambda+SFS holds a p99 of ~4.75 s across loads;
relative to OpenLambda+CFS that is a 1.65x / 4.04x / 7.93x p99 speedup
at 80 % / 90 % / 100 % load.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments import openlambda_sweep
from repro.experiments.common import (
    duration_percentiles,
    percentile_ratio,
    summarise_sweep,
)

Config = openlambda_sweep.Config
Result = openlambda_sweep.Result
run = openlambda_sweep.run

QS = (50.0, 90.0, 99.0)

#: paper's p99 CFS/SFS speedups per load
PAPER_P99_SPEEDUP = {0.8: 1.65, 0.9: 4.04, 1.0: 7.93}


def p99_speedup(result: Result, load: float) -> float:
    return percentile_ratio(result.runs, load, 99, num="cfs", den="sfs")


def render(result: Result) -> str:
    rows = summarise_sweep(
        result.runs,
        lambda r: tuple(f"{v:.3f}" for v in duration_percentiles(r, QS)),
        label=lambda name: f"OL+{name}",
    )
    table = format_table(
        ["load", "system"] + [f"p{q:g} (s)" for q in QS],
        rows,
        title="Fig 15: OpenLambda percentile breakdown",
    )
    lines = []
    for load in result.runs:
        paper = PAPER_P99_SPEEDUP.get(round(load, 2), None)
        paper_s = f" (paper {paper}x)" if paper else ""
        lines.append(f"p99 speedup SFS over CFS at {load:.0%}: "
                     f"{p99_speedup(result, load):.2f}x{paper_s}")
    return table + "\n" + "\n".join(lines)
