"""Shared pieces for the experiment modules.

Every experiment has a *paper-scale* configuration (the sizes the paper
ran: 12-72 cores, 10k-50k requests) and a *scaled* one that finishes in
seconds for the benchmark suite.  Shape conclusions (who wins, rough
factors) hold at both scales; EXPERIMENTS.md records the scaled numbers
actually measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.constants import CTX_SWITCH_COST_US as _CTX_SWITCH_COST_US
from repro.constants import SHORT_CPU_BOUND_US  # noqa: F401  (re-export)
from repro.machine.base import MachineParams
from repro.metrics.stats import percentile, percentiles
from repro.workload.faasbench import FaaSBench, FaaSBenchConfig
from repro.workload.spec import Workload

#: CPU time lost per context switch in the experiment machines (us):
#: direct kernel cost (~3-5 us) plus cache/TLB refill for Docker-hosted
#: Python function processes with large working sets (0.1-1.5 ms; cf. Li et al.,
#: "Quantifying the cost of context switch", ExpCS'07).  This loss is
#: what makes heavily-slicing CFS shed capacity at saturation relative
#: to run-to-completion FILTER — the mechanism behind the paper's tail
#: crossover (Fig 15).  Ablated in ``repro.experiments.ablations``.
CTX_SWITCH_COST = _CTX_SWITCH_COST_US


def azure_sampled_workload(
    n_requests: int,
    n_cores: int,
    load: float,
    seed: int,
    iat_kind: str = "poisson",
    io_fraction: float = 0.0,
    app_mix: Tuple[Tuple[str, float], ...] = (("fib", 1.0),),
    n_spikes: int = 5,
    spike_factor: float = 20.0,
    spike_len: int = 120,
) -> Workload:
    """The Azure-sampled FaaSBench workload used throughout §VIII/§IX."""
    cfg = FaaSBenchConfig(
        n_requests=n_requests,
        n_cores=n_cores,
        target_load=load,
        iat_kind=iat_kind,
        io_fraction=io_fraction,
        app_mix=app_mix,
        n_spikes=n_spikes,
        spike_factor=spike_factor,
        spike_len=spike_len,
    )
    return FaaSBench(cfg, seed=seed).generate()


def machine(n_cores: int, ctx_switch_cost: int = CTX_SWITCH_COST) -> MachineParams:
    return MachineParams(n_cores=n_cores, ctx_switch_cost=ctx_switch_cost)


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs shared by most figures."""

    n_requests: int
    n_cores: int
    engine: str = "fluid"

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's standalone setup: c5a.4xlarge-ish, Azure Day-1
        sample size (downscaled trace of ~50k requests)."""
        return cls(n_requests=49_712, n_cores=12, engine="fluid")

    @classmethod
    def bench(cls) -> "Scale":
        """Seconds-scale sizing for pytest-benchmark."""
        return cls(n_requests=4_000, n_cores=12, engine="fluid")

    @classmethod
    def test(cls) -> "Scale":
        """Sub-second sizing for the integration tests."""
        return cls(n_requests=800, n_cores=8, engine="fluid")


# ----------------------------------------------------------------------
# shared sweep summarisation (Figs 8/15, ext-slo, ...)
# ----------------------------------------------------------------------
def summarise_sweep(runs, summarise, label=None, key_fmt=None):
    """Flatten a ``{key: {scheduler: RunResult}}`` sweep into table rows.

    Every percentile-breakdown experiment iterates the same nested
    sweep; this keeps the iteration (and the key/scheduler labelling)
    in one place.  ``summarise`` maps one :class:`RunResult` to a tuple
    of cells; ``label`` optionally rewrites the scheduler name (e.g.
    ``"OL+cfs"``); ``key_fmt`` formats the outer key — the default
    renders a float load as a percentage, chaos passes ``str`` for its
    scenario names.
    """
    if key_fmt is None:
        key_fmt = lambda load: f"{load:.0%}"  # noqa: E731
    rows = []
    for key, by_sched in runs.items():
        for name, r in by_sched.items():
            shown = label(name) if label is not None else name
            rows.append((key_fmt(key), shown) + tuple(summarise(r)))
    return rows


def duration_percentiles(result, qs, scale=1e6):
    """Execution-duration percentiles of one run, scaled (default: s).

    Uses :func:`repro.metrics.stats.percentiles` — the single linear-
    interpolation definition every figure shares.
    """
    ps = percentiles(result.turnarounds, qs)
    return tuple(ps[q] / scale for q in qs)


def emit_point_explorers(
    out_dir,
    workload: Workload,
    base,
    schedulers: Tuple[str, ...] = ("cfs", "sfs"),
    label: str = "point",
    metrics=None,
):
    """Render explorer pages for one sweep/chaos point.

    Replays ``workload`` under each scheduler with tracing on, writes
    one self-contained explorer per scheduler into ``out_dir`` (named
    ``{label}-{scheduler}.html``) plus, when exactly two schedulers are
    given, the aligned A/B diff (``{label}-diff.html``).  File names are
    deterministic so resumable sweeps overwrite in place.  Returns the
    written paths.
    """
    from pathlib import Path

    from repro.experiments.runner import run_many_bundled
    from repro.explore import write_explorer

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    bundled = run_many_bundled(workload, base, tuple(schedulers))
    paths = []
    for sched, (_res, bundle) in bundled.items():
        path = out / f"{label}-{sched}.html"
        write_explorer(path, [bundle], title=f"{label} — {bundle.label}",
                       metrics=metrics)
        paths.append(path)
    if len(schedulers) == 2:
        a, b = (bundled[s][1] for s in schedulers)
        path = out / f"{label}-diff.html"
        write_explorer(path, [a, b],
                       title=f"{label} — {a.label} vs {b.label}",
                       metrics=metrics)
        paths.append(path)
    return paths


def percentile_ratio(runs, load, q, num="sfs", den="cfs"):
    """``num``'s q-th duration percentile over ``den``'s at one load.

    Fig 8's tail *price* (SFS p99.9 over CFS) and Fig 15's p99
    *speedup* (CFS over SFS) are the same computation with the roles
    swapped.
    """
    by_sched = runs[load]
    return float(percentile(by_sched[num].turnarounds, q)
                 / percentile(by_sched[den].turnarounds, q))
