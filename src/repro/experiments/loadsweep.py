"""Standalone SFS-vs-CFS load sweep powering Figs 6, 7 and 8.

One Azure-sampled (Table I durations, Poisson IATs) workload per load
level, replayed under CFS and SFS on the same machine.  Figs 6-8 are
different views of this single sweep:

* Fig 6 — duration CDF per load;
* Fig 7 — RTE CDF per load (SFS: >= 0.95 for 93 %/88 % of requests at
  65 %/80 % load; CFS: 55 %/35 %);
* Fig 8 — percentile breakdowns (SFS's p50 stays ~0.1 s at every load;
  its p99.9 at 80 % load is ~47 % above CFS's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_many
from repro.metrics.collector import RunResult

DEFAULT_LOADS = (0.5, 0.65, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    loads: Tuple[float, ...] = DEFAULT_LOADS
    engine: str = "fluid"
    schedulers: Tuple[str, ...] = ("cfs", "sfs")

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000, n_cores=12, loads=(0.5, 0.65, 0.8, 1.0))


@dataclass
class Result:
    #: load -> scheduler -> RunResult
    runs: Dict[float, Dict[str, RunResult]]
    config: Config


def run(config: Config, seed: int = 0) -> Result:
    runs: Dict[float, Dict[str, RunResult]] = {}
    base = RunConfig(engine=config.engine, machine=machine(config.n_cores))
    for load in config.loads:
        wl = azure_sampled_workload(
            config.n_requests, config.n_cores, load, seed=seed
        )
        runs[load] = run_many(wl, base, config.schedulers)
    return Result(runs=runs, config=config)
