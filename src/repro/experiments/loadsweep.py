"""Standalone SFS-vs-CFS load sweep powering Figs 6, 7 and 8.

One Azure-sampled (Table I durations, Poisson IATs) workload per load
level, replayed under CFS and SFS on the same machine.  Figs 6-8 are
different views of this single sweep:

* Fig 6 — duration CDF per load;
* Fig 7 — RTE CDF per load (SFS: >= 0.95 for 93 %/88 % of requests at
  65 %/80 % load; CFS: 55 %/35 %);
* Fig 8 — percentile breakdowns (SFS's p50 stays ~0.1 s at every load;
  its p99.9 at 80 % load is ~47 % above CFS's).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

from repro.experiments.common import azure_sampled_workload, machine
from repro.experiments.runner import RunConfig, run_workload
from repro.metrics.collector import RunResult

DEFAULT_LOADS = (0.5, 0.65, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class Config:
    n_requests: int = 49_712
    n_cores: int = 12
    loads: Tuple[float, ...] = DEFAULT_LOADS
    engine: str = "fluid"
    schedulers: Tuple[str, ...] = ("cfs", "sfs")

    @classmethod
    def scaled(cls) -> "Config":
        return cls(n_requests=4_000, n_cores=12, loads=(0.5, 0.65, 0.8, 1.0))


@dataclass
class Result:
    #: load -> scheduler -> RunResult
    runs: Dict[float, Dict[str, RunResult]]
    config: Config


def run_cell(config: Config, seed: int, load: float,
             scheduler: str) -> RunResult:
    """One sweep cell: one load level under one scheduler.

    The workload is regenerated from the seed, so the cell is a pure
    function of ``(config, seed, load, scheduler)`` — computable in a
    pool worker with the same bytes as the serial loop."""
    wl = azure_sampled_workload(
        config.n_requests, config.n_cores, load, seed=seed
    )
    base = RunConfig(engine=config.engine, machine=machine(config.n_cores))
    return run_workload(wl, base.with_scheduler(scheduler))


def _coerce(config: Dict[str, Any]) -> Config:
    """Rebuild a Config from a (possibly JSON-round-tripped) dict."""
    return Config(**{
        **config,
        "loads": tuple(config["loads"]),
        "schedulers": tuple(config["schedulers"]),
    })


def _pool_cell(payload: Dict[str, Any]) -> RunResult:
    """Module-level pool task: one (load, scheduler) cell."""
    return run_cell(_coerce(payload["config"]), payload["seed"],
                    payload["load"], payload["scheduler"])


def cells(config: Config, seed: int):
    """``(cell_id, payload)`` for every sweep cell, in sweep order."""
    return [
        (f"load{load:g}.{sched}",
         {"config": asdict(config), "seed": seed, "load": load,
          "scheduler": sched})
        for load in config.loads
        for sched in config.schedulers
    ]


def run(config: Config, seed: int = 0, workers: int = 0) -> Result:
    runs: Dict[float, Dict[str, RunResult]] = {}
    if workers > 0:
        from repro.pool import PoolConfig, PoolError, run_pool

        items = cells(config, seed)
        report = run_pool(items, _pool_cell, PoolConfig(workers=workers))
        if not report.complete:
            bad = ", ".join(o.item_id for o in report.quarantined)
            raise PoolError(f"sweep cells quarantined: {bad}")
        it = iter(report.results)
        for load in config.loads:
            runs[load] = {sched: next(it) for sched in config.schedulers}
        return Result(runs=runs, config=config)
    for load in config.loads:
        runs[load] = {
            sched: run_cell(config, seed, load, sched)
            for sched in config.schedulers
        }
    return Result(runs=runs, config=config)
