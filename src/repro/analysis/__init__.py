"""Rendering and experiment-suite orchestration."""

from repro.analysis.report import format_cdf_probes, format_series, format_table

__all__ = ["format_table", "format_cdf_probes", "format_series"]
