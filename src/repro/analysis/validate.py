"""Self-validation battery: is this installation simulating correctly?

Runs a suite of cross-checks a downstream user can invoke after
installing (``python -m repro validate`` or
``python -m repro.analysis.validate``):

1. **conservation** — every engine serves exactly the CPU demanded;
2. **lower bound** — no turnaround beats the zero-interference bound;
3. **engine agreement** — fluid vs discrete CFS within tolerance, FIFO
   exact;
4. **oracle ordering** — IDEAL <= SRTF <= CFS on mean turnaround;
5. **SFS contract** — at most ``n_workers`` FILTER tasks at once, every
   submission accounted for in the outcome counters;
6. **trace calibration** — the synthetic Azure trace hits the paper's
   Fig 1 anchors;
7. **determinism** — identical seeds give bit-identical results.

Each check returns a :class:`CheckResult`; the battery passes only if
all do.  The same functions back parts of the pytest suite, so the
shipped tests and the user-facing validator cannot drift apart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.experiments.runner import RunConfig, run_workload
from repro.machine.base import MachineParams
from repro.workload.azure import FIG1_ANCHORS, AzureTraceSynthesizer
from repro.workload.faasbench import FaaSBench, FaaSBenchConfig


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str
    seconds: float


def _workload(n=400, cores=8, load=0.9, seed=7, **kw):
    cfg = FaaSBenchConfig(n_requests=n, n_cores=cores, target_load=load, **kw)
    return FaaSBench(cfg, seed=seed).generate()


def _run(wl, scheduler, engine="fluid", cores=8):
    return run_workload(
        wl,
        RunConfig(scheduler=scheduler, engine=engine,
                  machine=MachineParams(n_cores=cores)),
    )


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------
def check_conservation() -> CheckResult:
    t0 = time.time()
    wl = _workload(io_fraction=0.3)
    failures = []
    for sched in ("cfs", "fifo", "sfs", "srtf", "ideal"):
        res = _run(wl, sched)
        served = res.array("cpu_time").sum()
        demanded = res.array("cpu_demand").sum()
        if served != demanded:
            failures.append(f"{sched}: served {served} != demanded {demanded}")
    return CheckResult(
        "conservation", not failures,
        "; ".join(failures) or "all engines serve exactly the demand",
        time.time() - t0,
    )


def check_lower_bound() -> CheckResult:
    t0 = time.time()
    wl = _workload(load=1.0)
    failures = []
    for sched in ("cfs", "sfs", "srtf"):
        res = _run(wl, sched)
        ideal = res.array("cpu_demand") + res.array("io_demand")
        bad = int((res.turnarounds < ideal - 1).sum())
        if bad:
            failures.append(f"{sched}: {bad} requests beat isolation")
    return CheckResult(
        "lower-bound", not failures,
        "; ".join(failures) or "no turnaround beats the isolated duration",
        time.time() - t0,
    )


def check_engine_agreement() -> CheckResult:
    t0 = time.time()
    wl = _workload(load=0.9, seed=21)
    fluid = _run(wl, "cfs", engine="fluid")
    disc = _run(wl, "cfs", engine="discrete")
    rel = abs(fluid.turnarounds.mean() - disc.turnarounds.mean()) / max(
        disc.turnarounds.mean(), 1
    )
    fifo_f = _run(wl, "fifo", engine="fluid")
    fifo_d = _run(wl, "fifo", engine="discrete")
    fifo_exact = bool(np.array_equal(fifo_f.turnarounds, fifo_d.turnarounds))
    ok = rel < 0.10 and fifo_exact
    return CheckResult(
        "engine-agreement", ok,
        f"CFS mean disagreement {rel:.1%} (<10% required); "
        f"FIFO exact: {fifo_exact}",
        time.time() - t0,
    )


def check_oracle_ordering() -> CheckResult:
    t0 = time.time()
    wl = _workload(load=1.0, seed=3)
    means = {s: _run(wl, s).turnarounds.mean() for s in ("ideal", "srtf", "cfs")}
    ok = means["ideal"] <= means["srtf"] + 1 and means["srtf"] <= means["cfs"]
    return CheckResult(
        "oracle-ordering", ok,
        "IDEAL <= SRTF <= CFS on mean turnaround: "
        + ", ".join(f"{k}={v/1e3:.1f}ms" for k, v in means.items()),
        time.time() - t0,
    )


def check_sfs_contract() -> CheckResult:
    t0 = time.time()
    wl = _workload(load=1.0, seed=5)
    res = _run(wl, "sfs")
    s = res.sfs_stats
    try:
        s.check_invariants()
        ok = True
    except AssertionError:
        ok = False
    return CheckResult(
        "sfs-contract", ok,
        f"submitted={s.submitted} promoted={s.promoted} "
        f"(in-slice {s.completed_in_filter}, demoted {s.demoted_slice}, "
        f"io {s.demoted_io}), bypassed={s.bypassed_overload}",
        time.time() - t0,
    )


def check_trace_calibration() -> CheckResult:
    t0 = time.time()
    syn = AzureTraceSynthesizer(n_apps=20_000, seed=1)
    d = syn.sample_avg_durations(20_000)
    deltas = {
        bound: abs(float((d < bound).mean()) - target)
        for bound, target in FIG1_ANCHORS
    }
    ok = all(delta < 0.05 for delta in deltas.values())
    return CheckResult(
        "trace-calibration", ok,
        ", ".join(f"<{b/1e6:g}s off by {v:.3f}" for b, v in deltas.items()),
        time.time() - t0,
    )


def check_determinism() -> CheckResult:
    t0 = time.time()
    wl = _workload(load=1.0, seed=11)
    a = _run(wl, "sfs")
    b = _run(wl, "sfs")
    ok = bool(
        np.array_equal(a.turnarounds, b.turnarounds)
        and np.array_equal(a.rtes, b.rtes)
    )
    return CheckResult(
        "determinism", ok,
        "identical seeds give bit-identical results" if ok else "runs diverged",
        time.time() - t0,
    )


ALL_CHECKS: Dict[str, Callable[[], CheckResult]] = {
    "conservation": check_conservation,
    "lower-bound": check_lower_bound,
    "engine-agreement": check_engine_agreement,
    "oracle-ordering": check_oracle_ordering,
    "sfs-contract": check_sfs_contract,
    "trace-calibration": check_trace_calibration,
    "determinism": check_determinism,
}


def run_battery(names: Optional[List[str]] = None) -> List[CheckResult]:
    """Run the selected (default: all) checks."""
    selected = names or list(ALL_CHECKS)
    unknown = [n for n in selected if n not in ALL_CHECKS]
    if unknown:
        raise ValueError(f"unknown checks: {unknown}")
    return [ALL_CHECKS[n]() for n in selected]


def render(results: List[CheckResult]) -> str:
    from repro.analysis.report import format_table

    rows = [
        (r.name, "PASS" if r.passed else "FAIL", f"{r.seconds:.1f}s", r.detail)
        for r in results
    ]
    verdict = "all checks passed" if all(r.passed for r in results) else (
        "FAILURES: " + ", ".join(r.name for r in results if not r.passed)
    )
    return format_table(["check", "status", "time", "detail"], rows,
                        title="repro self-validation") + f"\n{verdict}"


def main(argv=None) -> int:  # pragma: no cover - thin wrapper
    results = run_battery()
    print(render(results))
    return 0 if all(r.passed for r in results) else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
