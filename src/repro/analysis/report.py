"""ASCII rendering of experiment results.

The original paper communicates through CDFs and percentile bars; with
no plotting stack available offline, every experiment renders the same
information as aligned text tables (value at fixed CDF probe points,
percentile breakdowns, timeline strips).  These strings are what lands
in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np
from repro.metrics.stats import percentile

from repro.sim.units import to_ms


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        cells = [
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_cdf_probes(
    series: Dict[str, np.ndarray],
    probes: Sequence[float] = (10, 25, 50, 75, 90, 99, 99.9),
    unit: str = "ms",
    title: str = "",
) -> str:
    """One row per series, one column per percentile probe.

    This is the textual equivalent of overlaid CDF curves: reading down
    a column compares schedulers at the same population fraction.
    """
    scale = 1000.0 if unit == "ms" else 1.0
    headers = ["series"] + [f"p{p:g}" for p in probes] + ["mean"]
    rows = []
    for name, values in series.items():
        a = np.asarray(values, dtype=float) / scale
        rows.append([name] + [percentile(a, p) for p in probes]
                    + [float(a.mean())])
    t = title or f"values in {unit} at CDF probe points"
    return format_table(headers, rows, title=t)


def format_series(
    times_us: Sequence[int],
    values: Sequence[float],
    name: str = "value",
    time_unit: str = "s",
    max_rows: int = 40,
) -> str:
    """A (downsampled) timeline as a two-column table."""
    ts = np.asarray(times_us, dtype=float)
    vs = np.asarray(values, dtype=float)
    if ts.size > max_rows:
        idx = np.linspace(0, ts.size - 1, max_rows).astype(int)
        ts, vs = ts[idx], vs[idx]
    div = 1e6 if time_unit == "s" else 1e3
    rows = [(round(t / div, 3), v) for t, v in zip(ts, vs)]
    return format_table([f"t ({time_unit})", name], rows)


def ms(us_value: float) -> float:
    """Microseconds -> milliseconds (for table cells)."""
    return round(to_ms(us_value), 3)
