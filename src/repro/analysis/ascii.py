"""Pure-text plots: CDF curves and histograms without a plotting stack.

The original figures are CDF plots; with matplotlib unavailable offline
these helpers draw the same curves as Unicode block charts so reports
and terminals can still *see* the distributions, not just probe tables.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_BARS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A horizontal bar of ``fraction * width`` character cells."""
    fraction = min(max(fraction, 0.0), 1.0)
    cells = fraction * width
    full = int(cells)
    frac = cells - full
    partial = _BARS[int(frac * (len(_BARS) - 1))] if full < width else ""
    return ("█" * full + partial).ljust(width)


def histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    label: str = "value",
    log: bool = False,
) -> str:
    """A horizontal-bar histogram.

    ``log=True`` bins on a log10 axis — the natural scale for FaaS
    durations spanning orders of magnitude.
    """
    a = np.asarray(values, dtype=float)
    if a.size == 0:
        raise ValueError("empty sample")
    if log:
        a = a[a > 0]
        edges = np.logspace(np.log10(a.min()), np.log10(a.max()), bins + 1)
    else:
        edges = np.linspace(a.min(), a.max(), bins + 1)
    counts, edges = np.histogram(a, bins=edges)
    peak = max(1, counts.max())
    lines = [f"{label} histogram (n={a.size})"]
    for i, c in enumerate(counts):
        lo, hi = edges[i], edges[i + 1]
        lines.append(
            f"{lo:>12.4g} - {hi:<12.4g} |{_bar(c / peak, width)}| {c}"
        )
    return "\n".join(lines)


def cdf_plot(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_x: bool = True,
) -> str:
    """Overlayed CDF curves on a character grid (one symbol per series).

    This is the textual equivalent of the paper's CDF figures: x =
    value (log scale by default), y = cumulative fraction.
    """
    if not series:
        raise ValueError("no series")
    symbols = "*+ox#@%&"
    arrays = {k: np.sort(np.asarray(v, dtype=float)) for k, v in series.items()}
    lo = min(float(a[a > 0].min()) if log_x else float(a.min()) for a in arrays.values())
    hi = max(float(a.max()) for a in arrays.values())
    if log_x:
        xgrid = np.logspace(np.log10(max(lo, 1e-12)), np.log10(max(hi, lo * 10)),
                            width)
    else:
        xgrid = np.linspace(lo, hi, width)

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, a) in enumerate(arrays.items()):
        sym = symbols[idx % len(symbols)]
        y = np.searchsorted(a, xgrid, side="right") / a.size
        for col in range(width):
            row = height - 1 - int(y[col] * (height - 1))
            grid[row][col] = sym

    lines = []
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(
        "      "
        + f"{xgrid[0]:.3g}".ljust(width // 2)
        + f"{xgrid[-1]:.3g}".rjust(width // 2)
    )
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={name}" for i, name in enumerate(arrays)
    )
    lines.append("      " + legend)
    return "\n".join(lines)
