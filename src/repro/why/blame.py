"""Blame aggregation, the ``repro.why/1`` document, and flamegraphs.

Builds on :mod:`repro.why.timeline`: every microsecond of a request's
end-to-end latency is in exactly one segment, so *blame* — time spent
queued, cold-starting, retrying or descheduled rather than running or
doing I/O — is a simple sum, and aggregating it across requests is
exact integer arithmetic (no sampling, no double counting).

Output rules:

* the ``repro.why/1`` JSON is **byte-deterministic**: keyed by
  ``req_id`` only (raw tids are process-global counters and differ
  between runs), serialised with sorted keys and compact separators;
* the flamegraph is a self-contained HTML page — pure-CSS nested divs,
  no script, no external URLs — so it renders offline and diffs
  cleanly.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.why.timeline import BLAME_KINDS, RequestTimeline

#: schema tag stamped on every why document.
WHY_SCHEMA = "repro.why/1"


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def blame_totals(timelines: Mapping[int, RequestTimeline]) -> dict:
    """Aggregate blamed time by kind, by ``kind/reason`` and by actor."""
    by_kind: Dict[str, int] = {}
    by_reason: Dict[str, int] = {}
    by_actor: Dict[str, int] = {}
    hedged: Dict[str, int] = {}
    total = 0
    e2e = 0
    for tl in timelines.values():
        e2e += tl.end_to_end
        if tl.hedge:
            hedged[tl.hedge] = hedged.get(tl.hedge, 0) + 1
        for seg in tl.segments:
            if seg.kind not in BLAME_KINDS:
                continue
            total += seg.dur
            by_kind[seg.kind] = by_kind.get(seg.kind, 0) + seg.dur
            key = f"{seg.kind}/{seg.reason or '-'}"
            by_reason[key] = by_reason.get(key, 0) + seg.dur
            if seg.actor:
                by_actor[seg.actor] = by_actor.get(seg.actor, 0) + seg.dur
    doc = {
        "blamed_us": total,
        "end_to_end_us": e2e,
        "requests": len(timelines),
        "by_kind": dict(sorted(by_kind.items())),
        "by_reason": dict(sorted(by_reason.items())),
        "by_actor": dict(sorted(by_actor.items())),
    }
    if hedged:  # key only appears in hedged runs (byte-compat)
        doc["hedged"] = dict(sorted(hedged.items()))
    return doc


def blame_flame(timelines: Mapping[int, RequestTimeline]) -> dict:
    """Deschedule-reason flame tree: root -> kind -> reason -> app.

    Node values are exact integer microseconds; every parent's value is
    the sum of its children (the root is total blamed time), so the
    rendering can size frames proportionally without normalisation.
    """
    tree: Dict[str, Dict[str, Dict[str, int]]] = {}
    for tl in timelines.values():
        for seg in tl.segments:
            if seg.kind not in BLAME_KINDS:
                continue
            reasons = tree.setdefault(seg.kind, {})
            apps = reasons.setdefault(seg.reason or "-", {})
            apps[tl.app] = apps.get(tl.app, 0) + seg.dur

    def _node(name: str, children: List[dict], value: int) -> dict:
        d = {"name": name, "value": value}
        if children:
            d["children"] = children
        return d

    kids = []
    for kind in sorted(tree):
        rkids = []
        for reason in sorted(tree[kind]):
            akids = [
                _node(app, [], us)
                for app, us in sorted(tree[kind][reason].items())
            ]
            rkids.append(_node(reason, akids,
                               sum(c["value"] for c in akids)))
        kids.append(_node(kind, rkids, sum(c["value"] for c in rkids)))
    return _node("blame", kids, sum(c["value"] for c in kids))


# ----------------------------------------------------------------------
# the repro.why/1 document
# ----------------------------------------------------------------------
def build_why_doc(
    timelines: Mapping[int, RequestTimeline],
    top_blamed: int = 10,
) -> dict:
    """Assemble the full ``repro.why/1`` document.

    ``top_blamed`` caps how many per-request drill-downs (full segment
    lists) are embedded; aggregates always cover every request.  Pass
    ``top_blamed <= 0`` to embed all of them.
    """
    order = sorted(
        timelines.values(),
        key=lambda tl: (-tl.blamed_us, tl.req_id),
    )
    keep = order if top_blamed <= 0 else order[:top_blamed]
    requests = {}
    for tl in keep:
        entry = {
            "name": tl.name,
            "app": tl.app,
            "status": tl.status,
            "attempts": tl.attempts,
            "arrival": tl.arrival,
            "finish": tl.finish,
            "end_to_end_us": tl.end_to_end,
            "blamed_us": tl.blamed_us,
            "exact": tl.exact,
            "segments": [s.to_dict() for s in tl.segments],
        }
        if tl.hedge:  # key only appears for hedged requests
            entry["hedge"] = tl.hedge
        requests[str(tl.req_id)] = entry
    return {
        "schema": WHY_SCHEMA,
        "totals": blame_totals(timelines),
        "flame": blame_flame(timelines),
        "top_blamed": [tl.req_id for tl in order[:max(top_blamed, 0) or
                                                 len(order)]],
        "requests": requests,
    }


def why_json(doc: dict) -> str:
    """Canonical byte-deterministic serialisation (sorted, compact)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


# ----------------------------------------------------------------------
# flamegraph rendering (pure CSS, self-contained)
# ----------------------------------------------------------------------
#: frame fill per top-level blame kind (anything else gets the default)
FLAME_COLORS = {
    "queue": "#d08770", "coldstart": "#b48ead",
    "retry": "#bf616a", "wait": "#ebcb8b",
}
FLAME_DEFAULT_COLOR = "#81a1c1"

_FLAME_CSS = """\
body{background:#14161b;color:#d6d9e0;font:13px/1.45 system-ui,sans-serif;
margin:0;padding:24px}
h1{font-size:16px;margin:0 0 4px}
.sub{color:#8a8f9c;margin:0 0 16px}
.flame{border:1px solid #2a2e38;border-radius:6px;overflow:hidden}
.frame{box-sizing:border-box;overflow:hidden;white-space:nowrap;
text-overflow:ellipsis;padding:3px 6px;border-right:1px solid #14161b;
border-top:1px solid #14161b;color:#14161b;font-weight:600;float:left}
.row{overflow:hidden;clear:both}
.frame span{font-weight:400;opacity:.75}
"""


def _fmt_us(us: int) -> str:
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.1f}ms"
    return f"{us}us"


def flame_rows(flame: dict) -> List[List[Tuple[float, float, str, int, str]]]:
    """Icicle layout for a flame tree: one list per depth of
    ``(left%, width%, name, value_us, palette_key)`` tuples, where
    ``palette_key`` is the top-level blame kind the frame descends from
    (``""`` for the root).  Shared by the standalone page and the
    explorer's embedded panel so both render identically.
    """
    root_val = max(flame.get("value", 0), 1)
    rows: List[List[Tuple[float, float, str, int, str]]] = []

    def _place(node: dict, depth: int, left: float, palette_key: str) -> None:
        while len(rows) <= depth:
            rows.append([])
        width = 100.0 * node.get("value", 0) / root_val
        key = palette_key if depth else ""
        rows[depth].append((left, width, node["name"],
                            node.get("value", 0), key))
        cursor = left
        for child in node.get("children", ()):
            ck = child["name"] if depth == 0 else palette_key
            _place(child, depth + 1, cursor, ck)
            cursor += 100.0 * child.get("value", 0) / root_val

    _place(flame, 0, 0.0, "")
    return rows


def render_flamegraph(flame: dict, title: str = "blame flamegraph") -> str:
    """Render a flame tree as one self-contained HTML page.

    Layout is the classic icicle: each depth is a row, each node a div
    whose width is its exact share of the root — plain floats and
    percentage widths, no script, so the page is byte-deterministic and
    renders with every asset inline (offline-safe by construction).
    """
    rows = flame_rows(flame)
    parts = [
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">",
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_FLAME_CSS}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f"<p class=\"sub\">total blamed: {_fmt_us(flame.get('value', 0))}"
        " &mdash; width is exact share of blame; "
        "root &rarr; kind &rarr; reason &rarr; app</p>",
        "<div class=\"flame\">",
    ]
    for row in rows:
        parts.append("<div class=\"row\">")
        cursor = 0.0
        for left, width, name, value, key in sorted(row):
            pad = left - cursor
            if pad > 1e-9:
                parts.append(
                    f"<div class=\"frame\" style=\"width:{pad:.4f}%;"
                    "background:transparent;border:none\">&nbsp;</div>")
            color = FLAME_COLORS.get(key, FLAME_DEFAULT_COLOR)
            label = (f"{_html.escape(name)} "
                     f"<span>{_fmt_us(value)}</span>")
            parts.append(
                f"<div class=\"frame\" style=\"width:{width:.4f}%;"
                f"background:{color}\" title=\"{_html.escape(name)}: "
                f"{value}us\">{label}</div>")
            cursor = left + width
        parts.append("</div>")
    parts.append("</div></body></html>")
    return "".join(parts) + "\n"


def blame_diff(doc_a: dict, doc_b: dict) -> List[dict]:
    """Align two why documents request-by-request for a policy diff.

    Returns rows for every ``req_id`` embedded in *either* document
    (``blamed_us`` of ``None`` marks a side that didn't embed it),
    sorted by the larger absolute blame first — the "same request,
    both policies" comparison surface.
    """
    ra: Dict[str, dict] = doc_a.get("requests", {})
    rb: Dict[str, dict] = doc_b.get("requests", {})
    rows = []
    for rid in sorted(set(ra) | set(rb), key=lambda s: int(s)):
        a, b = ra.get(rid), rb.get(rid)
        rows.append({
            "req_id": int(rid),
            "name": (a or b).get("name", ""),
            "a_blamed_us": None if a is None else a["blamed_us"],
            "b_blamed_us": None if b is None else b["blamed_us"],
            "delta_us": (b["blamed_us"] - a["blamed_us"])
            if a is not None and b is not None else None,
        })
    rows.sort(key=lambda r: (-max(r["a_blamed_us"] or 0,
                                  r["b_blamed_us"] or 0), r["req_id"]))
    return rows
