"""The scheduler-decision audit stream.

Where the trace answers *what happened to task 517*, the audit stream
answers *who decided that*: every scheduler decision — a runqueue pick,
a wakeup or RT preemption, a slice/quantum expiry, RT bandwidth
throttling, an SFS FILTER promotion or demotion, a fault kill — is one
compact :class:`DecisionRecord` naming the actor that made it, the task
it chose, and the task it displaced.

The stream follows the exact zero-cost-when-off contract of
:mod:`repro.trace.recorder` and the obs registry: the default is the
shared :data:`NULL_AUDIT` whose ``enabled`` is False and whose
``record`` is a no-op; instrumented components cache the log *and* its
enabled flag at construction, so the disabled path is one attribute
load and one predicted branch per decision site
(``benchmarks/bench_why_overhead.py`` guards this).

Install the log on the :class:`repro.sim.engine.Simulator` before
machines are built — ``Simulator(audit=AuditLog())`` — exactly like a
trace recorder.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

# ----------------------------------------------------------------------
# decision vocabulary
# ----------------------------------------------------------------------
#: a runqueue chose the next task to run
OP_PICK = "pick"
#: a wakeup / RT dispatch displaced the running task
OP_PREEMPT = "preempt"
#: fair-class slice expiry rotated the running task out
OP_SLICE = "slice"
#: SCHED_RR quantum expiry rotated the running task out
OP_QUANTUM = "quantum"
#: RT group bandwidth exhausted; the RT task was throttled off-CPU
OP_THROTTLE = "throttle"
#: sched_setscheduler moved a running task between classes
OP_RECLASS = "reclass"
#: the fault layer killed the task
OP_KILL = "kill"
#: SFS FILTER granted a run-to-completion slice (promotion to RT)
OP_PROMOTE = "promote"
#: SFS FILTER took the slice back (budget exhausted or I/O detected)
OP_DEMOTE = "demote"
#: SFS overload detector left the task in CFS (Fig 4 step 4.4)
OP_BYPASS = "bypass"

#: every op, in display order
AUDIT_OPS = (
    OP_PICK, OP_PREEMPT, OP_SLICE, OP_QUANTUM, OP_THROTTLE,
    OP_RECLASS, OP_KILL, OP_PROMOTE, OP_DEMOTE, OP_BYPASS,
)


class DecisionRecord(NamedTuple):
    """One scheduler decision.

    ``chosen`` is the task the decision favoured (the picked / promoted
    / preempting task), ``displaced`` the task it cost (the preempted /
    demoted / throttled one); either may be -1 when the slot does not
    apply.  ``reason`` carries the same reason code the matching
    ``task.deschedule`` trace event carries, so the two streams join.
    ``arg`` is op-specific detail (granted slice for ``promote``,
    remaining budget for ``demote``, ...).
    """

    ts: int
    op: str
    actor: str
    chosen: int = -1
    displaced: int = -1
    reason: str = ""
    arg: object = None


class NullAudit:
    """Does nothing, as cheaply as possible (the default everywhere)."""

    __slots__ = ()

    enabled: bool = False

    def record(self, ts: int, op: str, actor: str, chosen: int = -1,
               displaced: int = -1, reason: str = "",
               arg: object = None) -> None:
        """No-op; real logs append a :class:`DecisionRecord`."""

    def __len__(self) -> int:
        return 0


#: shared do-nothing singleton — safe because it is stateless
NULL_AUDIT = NullAudit()


class AuditLog(NullAudit):
    """In-memory decision log (install via ``Simulator(audit=...)``)."""

    __slots__ = ("records",)

    enabled = True

    def __init__(self) -> None:
        self.records: List[DecisionRecord] = []

    def record(self, ts: int, op: str, actor: str, chosen: int = -1,
               displaced: int = -1, reason: str = "",
               arg: object = None) -> None:
        self.records.append(
            DecisionRecord(ts, op, actor, chosen, displaced, reason, arg))

    # -- analysis helpers ----------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.op] = counts.get(rec.op, 0) + 1
        return counts

    def by_op(self, op: str) -> List[DecisionRecord]:
        return [r for r in self.records if r.op == op]

    def by_displaced(self) -> Dict[Tuple[int, int], DecisionRecord]:
        """Index by ``(displaced tid, ts)`` — how timeline reconstruction
        joins a wait segment to the decision that opened it.  Last
        record wins on the (rare) same-instant collision, matching the
        causal order of same-timestamp events."""
        return {(r.displaced, r.ts): r for r in self.records
                if r.displaced >= 0}


class RunqueueAudit:
    """Per-runqueue decision hook, mirroring ``RunqueueObs``.

    Runqueues are sim-agnostic data structures; the machine attaches
    one of these (carrying the sim for timestamps and the actor name)
    when auditing is enabled, exactly as it attaches the metrics hook.
    """

    __slots__ = ("log", "sim", "actor")

    def __init__(self, log: NullAudit, sim, actor: str) -> None:
        self.log = log
        self.sim = sim
        self.actor = actor

    def on_pick(self, tid: int) -> None:
        self.log.record(self.sim.now, OP_PICK, self.actor, chosen=tid)
