"""repro.why — per-request critical-path attribution.

Three pieces, each usable alone:

* :mod:`repro.why.audit` — the scheduler-decision audit stream: every
  pick / preempt / throttle / demote that a runqueue, an engine, or
  the SFS FILTER makes, as a compact :class:`DecisionRecord`, behind
  the same zero-overhead Null pattern as tracing and metrics.
* :mod:`repro.why.timeline` — per-request causal timelines: the exact
  partition of each request's ``[arrival, finish]`` window into
  queue / retry / wait / run / block segments, each tagged with the
  decision (and decision-maker) that caused it.  The partition sums
  *exactly* to the recorded end-to-end latency — enforced by the
  ``why-exact-sum`` fuzz oracle.
* :mod:`repro.why.blame` — critical-path blame aggregation across
  requests, the ``repro.why/1`` JSON document, and the offline
  deschedule-reason flamegraph.
"""

from repro.why.audit import (
    AuditLog,
    DecisionRecord,
    NULL_AUDIT,
    NullAudit,
    RunqueueAudit,
)
from repro.why.blame import (
    WHY_SCHEMA,
    blame_diff,
    blame_flame,
    blame_totals,
    build_why_doc,
    render_flamegraph,
    why_json,
)
from repro.why.timeline import RequestTimeline, Segment, build_timelines

__all__ = [
    "AuditLog",
    "DecisionRecord",
    "NULL_AUDIT",
    "NullAudit",
    "RequestTimeline",
    "RunqueueAudit",
    "Segment",
    "WHY_SCHEMA",
    "blame_diff",
    "blame_flame",
    "blame_totals",
    "build_timelines",
    "build_why_doc",
    "render_flamegraph",
    "why_json",
]
