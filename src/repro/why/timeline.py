"""Per-request causal timelines.

:func:`build_timelines` reconstructs, for every request in a run, an
exact partition of its end-to-end latency ``[arrival, finish]`` into
typed segments — ``queue`` / ``coldstart`` / ``retry`` / ``run`` /
``block`` / ``wait`` — by replaying the trace stream
(:mod:`repro.trace.events`).  The partition is *exact by construction
checking*, not by clamping: segment boundaries come only from recorded
event timestamps, so ``sum(durations) == end_to_end`` is a genuine
reconstruction invariant (and the ``why-exact-sum`` fuzz oracle treats
any mismatch as a bug in either the engines' event emission or this
decomposition).

Each ``wait`` segment is tagged with the deschedule reason that opened
it (the ``why`` payload of ``task.deschedule``) and — when a
scheduler-decision audit stream (:mod:`repro.why.audit`) was recorded —
with the *decision-maker* that caused it (``cfs:2``, ``rt``,
``sfs-worker:0``, ``kernel``, ``faults``), joining audit records to
trace events on ``(tid, ts)``.

Raw tids are process-global and **not** deterministic across runs, so
nothing here leaks them into output: timelines are keyed by ``req_id``
and segments carry only times, kinds, reasons, cores and actor names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.trace import events as tev

#: segment kinds, in canonical display order
SEGMENT_KINDS = ("queue", "coldstart", "retry", "run", "wait", "block")

#: kinds that count toward *blame* — time the request was not making
#: forward progress on CPU or in I/O.
BLAME_KINDS = ("queue", "coldstart", "retry", "wait")


class Segment(NamedTuple):
    """One slice of a request's end-to-end latency."""

    t0: int          #: virtual start time (us)
    dur: int         #: duration (us); always > 0 in built timelines
    kind: str        #: one of :data:`SEGMENT_KINDS`
    reason: str = ""  #: deschedule reason / gap cause ("" when n/a)
    core: int = -1   #: core for ``run`` segments (-1 = fluid CFS pool)
    actor: str = ""  #: audited decision-maker that opened the segment

    @property
    def end(self) -> int:
        return self.t0 + self.dur

    def to_dict(self) -> dict:
        d = {"t0": self.t0, "dur": self.dur, "kind": self.kind}
        if self.reason:
            d["reason"] = self.reason
        if self.kind == "run":
            d["core"] = self.core
        if self.actor:
            d["actor"] = self.actor
        return d


@dataclass(frozen=True)
class RequestTimeline:
    """Exact decomposition of one request's end-to-end latency."""

    req_id: int
    name: str
    app: str
    status: str
    attempts: int
    arrival: int
    finish: int
    segments: Tuple[Segment, ...]
    #: hedge-race outcome: "" (not hedged), "primary-won",
    #: "backup-won", or "no-win" (both chains died)
    hedge: str = ""

    @property
    def end_to_end(self) -> int:
        return self.finish - self.arrival

    @property
    def total(self) -> int:
        return sum(s.dur for s in self.segments)

    @property
    def exact(self) -> bool:
        """Do the segments partition ``[arrival, finish]`` exactly?

        True iff durations sum to the end-to-end latency *and* the
        segments are contiguous and in order — the invariant the
        ``why-exact-sum`` fuzz oracle enforces.
        """
        cursor = self.arrival
        for seg in self.segments:
            if seg.t0 != cursor or seg.dur <= 0:
                return False
            cursor = seg.end
        return cursor == self.finish

    @property
    def blamed_us(self) -> int:
        """Total time attributed to scheduling/queueing/retry, not work."""
        return sum(s.dur for s in self.segments if s.kind in BLAME_KINDS)


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
_TASK_KINDS = (
    tev.TASK_SPAWN, tev.TASK_RUN, tev.TASK_DESCHEDULE, tev.TASK_BLOCK,
    tev.TASK_WAKE, tev.TASK_FINISH,
)


def _gap_segments(
    t0: int,
    t1: int,
    first: bool,
    fail_reason: str,
    coldstarts: Sequence[int],
) -> List[Segment]:
    """Decompose an off-OS gap ``[t0, t1]`` (before a spawn, or after
    the last attempt up to the recorded finish).

    The gap is split at every cold-start failure inside it: the piece
    *ending* at a ``fault.coldstart`` event is the failed provisioning
    attempt (kind ``coldstart``); the final piece is either the initial
    ``queue`` wait (first attempt, nothing failed before it) or a
    ``retry`` tagged with why the previous attempt failed.
    """
    out: List[Segment] = []
    cursor = t0
    seen_cold = False
    for c in coldstarts:
        if c <= cursor or c > t1:
            continue
        out.append(Segment(cursor, c - cursor, "coldstart", "provision"))
        cursor = c
        seen_cold = True
    if cursor < t1:
        if first and not seen_cold:
            out.append(Segment(cursor, t1 - cursor, "queue", "dispatch"))
        else:
            reason = "coldstart" if seen_cold else (fail_reason or "backoff")
            out.append(Segment(cursor, t1 - cursor, "retry", reason))
    return out


def build_timelines(
    records: Sequence,
    trace,
    audit=None,
) -> Dict[int, RequestTimeline]:
    """Reconstruct one :class:`RequestTimeline` per request record.

    ``records`` are :class:`repro.metrics.collector.RequestRecord`;
    ``trace`` is a :class:`repro.trace.recorder.TraceRecorder` (or any
    object with an ``events`` list) captured from the *same* run;
    ``audit`` is an optional :class:`repro.why.audit.AuditLog` used to
    tag wait segments with the decision-maker that opened them.
    """
    events = getattr(trace, "events", None)
    if events is None:
        events = list(trace)

    spawns: Dict[int, List[Tuple[int, int]]] = {}  # req -> [(ts, tid)]
    by_tid: Dict[int, List] = {}
    coldstarts: Dict[int, List[int]] = {}          # req -> [ts, ...]
    crashed: Dict[int, int] = {}                   # tid -> ts
    timed_out: Dict[int, int] = {}                 # tid -> ts
    hedge_launch: Dict[int, int] = {}              # req -> launch ts
    hedge_win: Dict[int, Tuple[int, str]] = {}     # req -> (tid, who)
    cancelled = set()                              # hedge-loser tids
    for e in events:
        k = e.kind
        if k == tev.TASK_SPAWN:
            spawns.setdefault(e.args[1], []).append((e.ts, e.tid))
            by_tid.setdefault(e.tid, []).append(e)
        elif k in _TASK_KINDS:
            by_tid.setdefault(e.tid, []).append(e)
        elif k == tev.FAULT_COLDSTART:
            coldstarts.setdefault(e.args[0], []).append(e.ts)
        elif k == tev.FAULT_CRASH:
            crashed[e.tid] = e.ts
        elif k == tev.FAULT_TIMEOUT:
            timed_out[e.tid] = e.ts
        elif k == tev.HEDGE_LAUNCH:
            hedge_launch[e.args[0]] = e.ts
        elif k == tev.HEDGE_WIN:
            hedge_win[e.args[0]] = (e.tid, e.args[1])
        elif k == tev.HEDGE_CANCEL:
            cancelled.add(e.tid)

    displaced = audit.by_displaced() if audit is not None else {}

    out: Dict[int, RequestTimeline] = {}
    for rec in records:
        segs: List[Segment] = []
        cursor = rec.arrival
        cold = coldstarts.get(rec.req_id, ())
        attempts = [a for a in spawns.get(rec.req_id, [])
                    if a[1] not in cancelled]
        hedge = ""
        if rec.req_id in hedge_win:
            # a hedge race was decided: the winning chain *is* the
            # request's latency story — walk only it, and charge the
            # pre-spawn gap of a backup win to a retry/"hedge" segment
            # from the launch instant onward.
            win_tid, who = hedge_win[rec.req_id]
            hedge = f"{who}-won"
            attempts = [a for a in attempts if a[1] == win_tid]
            if who == "backup" and attempts:
                launch = hedge_launch.get(rec.req_id, -1)
                spawn_ts = attempts[0][0]
                if cursor < launch < spawn_ts:
                    segs.append(Segment(cursor, launch - cursor,
                                        "queue", "dispatch"))
                    segs.append(Segment(launch, spawn_ts - launch,
                                        "retry", "hedge"))
                    cursor = spawn_ts
        elif rec.req_id in hedge_launch:
            hedge = "no-win"  # both chains died; fall through sequential
        fail_reason = ""
        first = True
        for spawn_ts, tid in attempts:
            if spawn_ts < cursor:
                # overlapping chain of an undecided hedge race: the
                # other chain already carried the cursor past this
                # spawn, so its story is not on the critical path
                continue
            segs.extend(_gap_segments(cursor, spawn_ts, first,
                                      fail_reason, cold))
            first = False
            cursor, fail_reason = _walk_attempt(
                by_tid.get(tid, ()), spawn_ts, tid, crashed, timed_out,
                displaced, segs)
        if cursor < rec.finish:
            # tail after the last attempt: backoff that exhausted, a
            # shed decision, or cold-start retries that never spawned.
            if rec.status == "shed":
                segs.append(Segment(cursor, rec.finish - cursor,
                                    "queue", "shed"))
            else:
                tail = _gap_segments(cursor, rec.finish, not attempts,
                                     fail_reason or "exhausted", cold)
                segs.extend(tail)
            cursor = rec.finish
        out[rec.req_id] = RequestTimeline(
            req_id=rec.req_id, name=rec.name, app=rec.app,
            status=rec.status, attempts=rec.attempts,
            arrival=rec.arrival, finish=rec.finish,
            segments=tuple(segs),
            hedge=hedge,
        )
    return out


def _walk_attempt(
    events,
    spawn_ts: int,
    tid: int,
    crashed: Dict[int, int],
    timed_out: Dict[int, int],
    displaced: Dict[Tuple[int, int], object],
    segs: List[Segment],
) -> Tuple[int, str]:
    """Partition one attempt's on-OS lifetime into segments.

    Walks the tid's task events as a state machine: each event closes
    the current segment at its timestamp and (except ``task.finish``)
    opens the next one.  ``task.migrate`` / ``task.policy`` are neutral
    — they change labels, not occupancy — and never appear here (only
    lifecycle kinds are indexed).  Returns ``(end_ts, fail_reason)``
    where ``fail_reason`` is non-empty when the attempt died to a
    fault.
    """
    cursor = spawn_ts
    kind, reason, core, actor = "wait", "runqueue", -1, ""
    end = spawn_ts
    for e in events:
        k = e.kind
        if k == tev.TASK_SPAWN:
            continue
        if e.ts > cursor:
            segs.append(Segment(cursor, e.ts - cursor, kind, reason,
                                core, actor))
            cursor = e.ts
        if k == tev.TASK_RUN:
            kind, reason, core, actor = "run", "", e.core, ""
        elif k == tev.TASK_DESCHEDULE:
            why = e.args[0] if e.args else ""
            rec = displaced.get((tid, e.ts))
            kind, reason, core = "wait", why, -1
            actor = rec.actor if rec is not None else ""
        elif k == tev.TASK_BLOCK:
            kind, reason, core, actor = "block", "io", -1, ""
        elif k == tev.TASK_WAKE:
            kind, reason, core, actor = "wait", "wake", -1, ""
        elif k == tev.TASK_FINISH:
            end = e.ts
            break
    else:
        end = cursor
    fail = ""
    if tid in crashed:
        fail = "crash"
    elif tid in timed_out:
        fail = "timeout"
    return end, fail
