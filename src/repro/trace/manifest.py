"""Run provenance.

A :class:`RunManifest` pins down everything needed to reproduce or
audit one scheduler×workload execution: the full configuration (machine
parameters, SFS tunables, engine, notify latency), the workload's
generator metadata and seed, the package version and interpreter, the
simulated span, and the wall-clock cost of producing it.  One manifest
is attached to every :class:`repro.metrics.collector.RunResult` and
embedded in every exported trace artifact, so a trace file found on
disk is self-describing.

Wall-clock fields (``created_at``, ``wall_time_s``) are provenance, not
simulation state: they never enter the event stream, which stays
bit-identical for a given seed.
"""

from __future__ import annotations

import dataclasses
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: bumped when the manifest or event-stream layout changes shape.
SCHEMA = "repro.trace/1"


def _jsonify(value: Any) -> Any:
    """Recursively coerce config values into JSON-safe primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one run (all fields JSON-safe)."""

    schema: str
    version: str                      # repro package version
    created_at: str                   # ISO-8601 UTC wall clock
    scheduler: str
    engine: str
    n_cores: int
    n_requests: int
    seed: Optional[int]               # workload generator seed, if known
    workload: Dict[str, Any]          # generator metadata (repro.workload)
    config: Dict[str, Any]            # full RunConfig, jsonified
    sim_time_us: int
    events_executed: int
    wall_time_s: float
    python: str = field(default_factory=platform.python_version)
    platform: str = field(default_factory=platform.platform)
    trace_enabled: bool = False
    trace_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def build(
        cls,
        *,
        run_config: Any,
        workload: Any,
        sim: Any,
        n_cores: int,
        wall_time_s: float,
        trace: Any = None,
    ) -> "RunManifest":
        """Assemble a manifest from the live objects of one run."""
        from repro import __version__  # deferred: repro imports this module

        meta = dict(getattr(workload, "meta", {}) or {})
        seed = meta.get("seed")
        return cls(
            schema=SCHEMA,
            version=__version__,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            scheduler=run_config.scheduler,
            engine=run_config.engine,
            n_cores=n_cores,
            n_requests=len(workload),
            seed=seed if isinstance(seed, int) else None,
            workload=_jsonify(meta),
            config=_jsonify(run_config),
            sim_time_us=sim.now,
            events_executed=sim.events_executed,
            wall_time_s=round(wall_time_s, 6),
            trace_enabled=bool(trace is not None and trace.enabled),
            trace_events=len(trace) if trace is not None else 0,
        )
