"""Periodic gauge sampling.

Discrete events answer *what happened*; gauges answer *how deep were
the queues while it happened* — the paper's queueing-delay story
(Fig 12) is invisible without them.  The sampler is one self-
rescheduling simulator event that asks the machine (and the SFS layer,
when present) to emit their ``gauge.*`` snapshots every
``gauge_interval`` microseconds.

Since repro.obs, samples are routed through a
:class:`repro.obs.hooks.GaugeSink` fanout: the metric registry gets a
:class:`~repro.obs.instruments.Gauge` update per kind, and the trace
recorder — when enabled — receives exactly the event stream it recorded
before the registry existed (the trace track is now a thin adapter over
the sink).  The sampler runs when *either* consumer is enabled; with
only the null recorder and null registry installed it remains a no-op.

Termination: the simulator runs until its heap drains, so a timer that
always rearmed itself would keep the run alive forever.  The sampler
rearms only while *other* live events remain, which makes it exactly as
long-lived as the run it observes.
"""

from __future__ import annotations

from typing import Iterable, Optional


def attach_gauge_sampler(sim, machine: Optional[object] = None,
                         sfs: Optional[object] = None,
                         extra: Iterable[object] = ()) -> None:
    """Sample machine (and SFS) gauges periodically.

    ``extra`` lists additional sources exposing ``sample_gauges(sink,
    now)`` (e.g. an OpenLambda platform for keep-alive occupancy);
    ``machine`` may be None when only extras are sampled (a cluster
    samples per-host platform gauges, not one host's machine-wide
    ones).  A no-op when both the recorder and the metric registry are
    the null defaults.  The interval comes from the trace recorder when
    tracing is on (so a traced run samples identically whether or not
    metrics ride along), otherwise from the registry.
    """
    trace = sim.trace
    metrics = sim.metrics
    if not trace.enabled and not metrics.enabled:
        return
    from repro.obs.hooks import GaugeSink  # leaf import; avoids a cycle

    sink = GaugeSink(metrics, trace)
    interval = trace.gauge_interval if trace.enabled else metrics.gauge_interval
    sources = []
    if machine is not None:
        sources.append(machine)
    if sfs is not None:
        sources.append(sfs)
    sources.extend(extra)

    def sample() -> None:
        now = sim.now
        for src in sources:
            src.sample_gauges(sink, now)
        # rearm only while the run is still live; gate on pending_work
        # so another daemon timer (the cluster health poller) cannot
        # keep the sampler alive after the real work drained
        if sim.pending_work > 0:
            sim.schedule(interval, sample, daemon=True)

    sim.schedule(interval, sample, daemon=True)
