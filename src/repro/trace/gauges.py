"""Periodic gauge sampling.

Discrete events answer *what happened*; gauges answer *how deep were
the queues while it happened* — the paper's queueing-delay story
(Fig 12) is invisible without them.  The sampler is one self-
rescheduling simulator event that asks the machine (and the SFS layer,
when present) to emit their ``gauge.*`` snapshots every
``trace.gauge_interval`` microseconds.

Termination: the simulator runs until its heap drains, so a timer that
always rearmed itself would keep the run alive forever.  The sampler
rearms only while *other* live events remain, which makes it exactly as
long-lived as the run it observes.
"""

from __future__ import annotations

from typing import Optional


def attach_gauge_sampler(sim, machine, sfs: Optional[object] = None) -> None:
    """Sample machine (and SFS) gauges on ``sim.trace``'s interval.

    A no-op when the simulator's recorder is the NullRecorder.
    """
    trace = sim.trace
    if not trace.enabled:
        return
    interval = trace.gauge_interval

    def sample() -> None:
        now = sim.now
        machine.sample_gauges(trace, now)
        if sfs is not None:
            sfs.sample_gauges(trace, now)
        if sim.pending > 0:  # rearm only while the run is still live
            sim.schedule(interval, sample)

    sim.schedule(interval, sample)
