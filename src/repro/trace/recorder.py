"""Trace recorders.

The whole stack is instrumented against one two-method protocol:

* ``enabled`` — class-level flag the hot paths branch on;
* ``emit(ts, kind, tid, core, args)`` — append one event.

:class:`NullRecorder` is the default everywhere and makes tracing free
when off: instrumented call sites read one attribute and skip the
``emit`` call entirely (``if tr.enabled: tr.emit(...)``), so a disabled
run pays a pointer load and a predictable branch per site — nothing
else.  :class:`TraceRecorder` appends :class:`TraceEvent` tuples to an
in-memory list; exporters (:mod:`repro.trace.export`) turn that list
into Chrome trace-event JSON or JSONL after the run.

Recorders are installed on the :class:`repro.sim.engine.Simulator`
(``Simulator(trace=...)``) **before** machines and schedulers are
constructed — they cache the reference once at init time.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.trace.events import TraceEvent


class NullRecorder:
    """Do-nothing recorder; the zero-overhead default."""

    __slots__ = ()

    enabled: bool = False
    #: gauge sampling period (us) honoured when a sampler is attached.
    gauge_interval: int = 10_000

    def emit(self, ts: int, kind: str, tid: int = -1, core: int = -1,
             args: Tuple = ()) -> None:  # pragma: no cover - never hot
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullRecorder>"


#: shared singleton — every uninstrumented run points here.
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """In-memory structured event recorder.

    ``gauge_interval`` (integer microseconds) sets how often the gauge
    sampler (:mod:`repro.trace.gauges`) snapshots queue depths while a
    run is live.
    """

    __slots__ = ("events", "gauge_interval")

    enabled = True

    def __init__(self, gauge_interval: int = 10_000):
        if gauge_interval <= 0:
            raise ValueError("gauge_interval must be positive")
        self.events: List[TraceEvent] = []
        self.gauge_interval = gauge_interval

    def emit(self, ts: int, kind: str, tid: int = -1, core: int = -1,
             args: Tuple = ()) -> None:
        self.events.append(TraceEvent(ts, kind, tid, core, args))

    # ------------------------------------------------------------------
    # post-run inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def kind_counts(self) -> Dict[str, int]:
        """Event count per kind (the reconciliation surface for stats)."""
        return dict(Counter(e.kind for e in self.events))

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_tid(self, tid: int) -> List[TraceEvent]:
        return [e for e in self.events if e.tid == tid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecorder {len(self.events)} events>"
