"""Trace exporters: Chrome trace-event JSON and JSONL.

Two renderings of the same event stream:

* :func:`to_chrome` — the Chrome trace-event format (the JSON object
  form), loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Track layout:

  - process **machine** — one thread per core; on-CPU intervals are
    complete (``"X"``) slices named after the running function, with
    the deschedule reason in ``args``;
  - process **sfs** — one thread per FILTER worker carrying the
    promote→demote/finish occupancy slices, plus a ``queue`` thread of
    instant decision events (bypass, watch, skip) and counters for the
    global queue, watch list and adaptive slice S;
  - process **requests** — one async span per request from OS dispatch
    to exit (complete for every finished request), annotated with
    block/wake/policy-change instants;
  - process **cfs pool** — async spans for time spent in the fluid
    engine's processor-sharing pool (the fluid analogue of per-core
    residency);
  - process **faults** — instant events for the fault-injection and
    failure-handling lifecycle (crashes, cold-start failures, timeouts,
    host down/up, retry backoff/exhaustion, admission sheds).

* :func:`to_jsonl_lines` — one self-describing JSON object per line
  (manifest first), for programmatic analysis with ``jq``/pandas.

Both embed the :class:`repro.trace.manifest.RunManifest`.
:func:`write_trace` dispatches on the file extension (``.jsonl`` =
JSONL, anything else = Chrome JSON).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

from repro.trace import events as ev
from repro.trace.manifest import RunManifest
from repro.trace.recorder import TraceRecorder

# Chrome trace "process" ids, one per track group.
PID_MACHINE = 1
PID_SFS = 2
PID_REQUESTS = 3
PID_POOL = 4
PID_FAULTS = 5
#: thread id of the SFS decision-instant row (after any worker row).
SFS_QUEUE_TID = 10_000

_COUNTER_GAUGES: Dict[str, tuple] = {
    # kind -> (pid, counter name, series name)
    ev.GAUGE_RUNNABLE: (PID_MACHINE, "runnable", "tasks"),
    ev.GAUGE_IDLE_CORES: (PID_MACHINE, "idle_cores", "cores"),
    ev.GAUGE_RT_QUEUE: (PID_MACHINE, "rt_queue", "tasks"),
    ev.GAUGE_POOL: (PID_MACHINE, "cfs_pool", "tasks"),
    ev.GAUGE_RT_RUNNING: (PID_MACHINE, "rt_running", "cores"),
    ev.GAUGE_GLOBAL_QUEUE: (PID_SFS, "global_queue", "requests"),
    ev.GAUGE_WATCH_LIST: (PID_SFS, "watch_list", "tasks"),
    ev.GAUGE_BUSY_WORKERS: (PID_SFS, "busy_workers", "workers"),
    ev.SFS_SLICE: (PID_SFS, "slice_S", "us"),
}

_REQUEST_INSTANTS = (ev.TASK_BLOCK, ev.TASK_WAKE, ev.TASK_POLICY,
                     ev.TASK_MIGRATE)

_SFS_INSTANTS = (ev.SFS_SUBMIT, ev.SFS_RESUBMIT, ev.SFS_OVERLOAD,
                 ev.SFS_SKIP_FINISHED, ev.SFS_WATCH_AT_POP, ev.SFS_WATCH,
                 ev.SFS_WATCH_FINISH)

_FAULT_INSTANTS = (ev.FAULT_CRASH, ev.FAULT_COLDSTART, ev.FAULT_TIMEOUT,
                   ev.FAULT_HOST_DOWN, ev.FAULT_HOST_UP, ev.RETRY_BACKOFF,
                   ev.RETRY_EXHAUSTED, ev.SHED_REQUEST)


def _named_args(e: ev.TraceEvent) -> dict:
    names = ev.EVENT_FIELDS.get(e.kind)
    if names is not None and len(names) == len(e.args):
        return dict(zip(names, e.args))
    return {"args": list(e.args)} if e.args else {}


def to_chrome(recorder: TraceRecorder,
              manifest: Optional[RunManifest] = None) -> dict:
    """Render the event stream as a Chrome trace-event JSON object."""
    stream = recorder.events
    max_ts = stream[-1].ts if stream else 0
    n_cores = manifest.n_cores if manifest is not None else 1 + max(
        (e.core for e in stream), default=0
    )

    out: List[dict] = []
    names: Dict[int, str] = {}          # tid -> display name
    open_core: Dict[int, tuple] = {}    # core  -> (tid, start_ts)
    open_worker: Dict[int, tuple] = {}  # worker -> (tid, start_ts)
    workers_seen: set = set()

    def task_name(tid: int) -> str:
        return names.get(tid) or f"task {tid}"

    def close_core(core: int, end_ts: int, reason: str) -> None:
        opened = open_core.pop(core, None)
        if opened is None:
            return
        tid, start = opened
        out.append({
            "name": task_name(tid), "cat": "run", "ph": "X",
            "ts": start, "dur": end_ts - start,
            "pid": PID_MACHINE, "tid": core,
            "args": {"tid": tid, "reason": reason},
        })

    def close_worker(worker: int, end_ts: int, outcome: str) -> None:
        opened = open_worker.pop(worker, None)
        if opened is None:
            return
        tid, start = opened
        out.append({
            "name": task_name(tid), "cat": "filter", "ph": "X",
            "ts": start, "dur": end_ts - start,
            "pid": PID_SFS, "tid": worker,
            "args": {"tid": tid, "outcome": outcome},
        })

    for e in stream:
        k = e.kind
        if k == ev.TASK_RUN:
            if e.core >= 0:
                open_core[e.core] = (e.tid, e.ts)
            else:  # fluid CFS pool residency: overlapping -> async span
                out.append({
                    "name": task_name(e.tid), "cat": "pool", "ph": "b",
                    "id": e.tid, "ts": e.ts, "pid": PID_POOL, "tid": 0,
                })
        elif k == ev.TASK_DESCHEDULE:
            reason = e.args[0] if e.args else ""
            if e.core >= 0:
                close_core(e.core, e.ts, reason)
            else:
                out.append({
                    "name": task_name(e.tid), "cat": "pool", "ph": "e",
                    "id": e.tid, "ts": e.ts, "pid": PID_POOL, "tid": 0,
                    "args": {"reason": reason},
                })
        elif k == ev.TASK_SPAWN:
            name = (e.args[0] if e.args else "") or f"req {e.args[1] if len(e.args) > 1 else e.tid}"
            names[e.tid] = name
            out.append({
                "name": name, "cat": "request", "ph": "b", "id": e.tid,
                "ts": e.ts, "pid": PID_REQUESTS, "tid": 0,
                "args": _named_args(e),
            })
        elif k == ev.TASK_FINISH:
            out.append({
                "name": task_name(e.tid), "cat": "request", "ph": "e",
                "id": e.tid, "ts": e.ts, "pid": PID_REQUESTS, "tid": 0,
            })
        elif k in _REQUEST_INSTANTS:
            out.append({
                "name": k.split(".", 1)[1], "cat": "request", "ph": "n",
                "id": e.tid, "ts": e.ts, "pid": PID_REQUESTS, "tid": 0,
                "args": _named_args(e),
            })
        elif k == ev.SFS_PROMOTE:
            workers_seen.add(e.core)
            open_worker[e.core] = (e.tid, e.ts)
        elif k in ev.WORKER_SPAN_CLOSERS:
            close_worker(e.core, e.ts, k.split(".", 1)[1])
        elif k in _SFS_INSTANTS:
            out.append({
                "name": k.split(".", 1)[1], "cat": "sfs", "ph": "i",
                "s": "t", "ts": e.ts, "pid": PID_SFS, "tid": SFS_QUEUE_TID,
                "args": {"tid": e.tid, **_named_args(e)},
            })
        elif k in _FAULT_INSTANTS:
            cat, name = k.split(".", 1)  # "fault" | "retry" | "shed"
            args = {"tid": e.tid, **_named_args(e)}
            if k in (ev.FAULT_HOST_DOWN, ev.FAULT_HOST_UP):
                args = {"host": e.core}
            out.append({
                "name": name, "cat": cat, "ph": "i", "s": "p",
                "ts": e.ts, "pid": PID_FAULTS, "tid": 0, "args": args,
            })
        elif k in _COUNTER_GAUGES:
            pid, cname, series = _COUNTER_GAUGES[k]
            out.append({
                "name": cname, "ph": "C", "ts": e.ts, "pid": pid, "tid": 0,
                "args": {series: e.args[0] if e.args else 0},
            })
        elif k == ev.GAUGE_RUNQUEUE:
            out.append({
                "name": f"runqueue.core{e.core}", "ph": "C", "ts": e.ts,
                "pid": PID_MACHINE, "tid": 0,
                "args": {"tasks": e.args[0] if e.args else 0},
            })

    # a drained run leaves nothing open; close defensively regardless
    for core in sorted(open_core):
        close_core(core, max_ts, "truncated")
    for worker in sorted(open_worker):
        close_worker(worker, max_ts, "truncated")

    meta: List[dict] = []

    def _meta(pid: int, name: str, tid: Optional[int] = None,
              what: str = "process_name") -> None:
        record = {"name": what, "ph": "M", "pid": pid,
                  "args": {"name": name}}
        if tid is not None:
            record["tid"] = tid
        meta.append(record)

    _meta(PID_MACHINE, "machine")
    for core in range(n_cores):
        _meta(PID_MACHINE, f"core {core}", tid=core, what="thread_name")
    _meta(PID_SFS, "sfs")
    for worker in sorted(workers_seen):
        _meta(PID_SFS, f"worker {worker}", tid=worker, what="thread_name")
    _meta(PID_SFS, "queue", tid=SFS_QUEUE_TID, what="thread_name")
    _meta(PID_REQUESTS, "requests")
    _meta(PID_POOL, "cfs pool")
    _meta(PID_FAULTS, "faults")

    doc = {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "metadata": {},
    }
    if manifest is not None:
        doc["metadata"]["runManifest"] = manifest.to_dict()
    return doc


def to_jsonl_lines(recorder: TraceRecorder,
                   manifest: Optional[RunManifest] = None) -> Iterator[str]:
    """Yield one compact JSON object per line, manifest first."""
    if manifest is not None:
        yield json.dumps({"type": "manifest", **manifest.to_dict()},
                         separators=(",", ":"))
    for e in recorder.events:
        yield json.dumps({"type": "event", **e.to_dict()},
                         separators=(",", ":"))


def write_trace(path: str, recorder: TraceRecorder,
                manifest: Optional[RunManifest] = None,
                fmt: Optional[str] = None) -> str:
    """Write the trace to ``path``; format from ``fmt`` or the extension.

    ``fmt`` may be ``"chrome"`` or ``"jsonl"``; when None, ``*.jsonl``
    selects JSONL and anything else the Chrome trace-event format.
    Returns ``path``.
    """
    if fmt is None:
        fmt = "jsonl" if str(path).endswith(".jsonl") else "chrome"
    if fmt not in ("chrome", "jsonl"):
        raise ValueError(f"unknown trace format {fmt!r}")
    with open(path, "w", encoding="utf-8") as fh:
        if fmt == "jsonl":
            for line in to_jsonl_lines(recorder, manifest):
                fh.write(line + "\n")
        else:
            json.dump(to_chrome(recorder, manifest), fh)
            fh.write("\n")
    return str(path)
