"""Trace event taxonomy.

Every event is one immutable :class:`TraceEvent` tuple: virtual
timestamp, dotted kind, the task and core it concerns (``-1`` when not
applicable) and a small kind-specific payload of JSON-safe scalars.
The flat-tuple shape keeps recording allocation-cheap (one tuple per
event, no dicts on the hot path) while :data:`EVENT_FIELDS` gives every
payload slot a name so exporters can render self-describing records.

Kinds are grouped into three namespaces:

``task.*``
    OS-level lifecycle, emitted by the machine engines: on/off-CPU
    intervals, blocks, wakes, policy changes, migrations, exit.
``sfs.*``
    User-space scheduler decisions, emitted by :mod:`repro.core`:
    queue entries and their single outcome (promote / bypass / watch /
    skip), FILTER demotions, slice recomputations.
``fault.*`` / ``retry.*`` / ``shed.*``
    Fault-injection and failure-handling lifecycle, emitted by
    :mod:`repro.faults`: crashes, cold-start failures, timeouts, host
    state changes, retry scheduling, admission-control rejections.
``gauge.*``
    Periodically sampled state: runqueue depths, queue lengths,
    watch-list size, pool occupancy.

The stream is append-only and time-ordered (events are recorded as the
simulation executes, and virtual time never flows backwards), so
exporters are single pass.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple


class TraceEvent(NamedTuple):
    """One recorded occurrence at virtual time ``ts`` (microseconds)."""

    ts: int
    kind: str
    tid: int = -1
    core: int = -1
    args: Tuple = ()

    def to_dict(self) -> dict:
        """Self-describing mapping (JSONL exporter / analysis)."""
        d = {"ts": self.ts, "kind": self.kind}
        if self.tid >= 0:
            d["tid"] = self.tid
        if self.core >= 0:
            d["core"] = self.core
        names = EVENT_FIELDS.get(self.kind)
        if names is not None and len(names) == len(self.args):
            d.update(zip(names, self.args))
        elif self.args:
            d["args"] = list(self.args)
        return d


# --- task lifecycle (machine engines) ---------------------------------
TASK_SPAWN = "task.spawn"            # dispatched into the OS
TASK_RUN = "task.run"                # went on-CPU (core >= 0) / entered
#                                      the fluid CFS pool (core == -1)
TASK_DESCHEDULE = "task.deschedule"  # left the CPU / pool; args: why
TASK_BLOCK = "task.block"            # entered an I/O burst
TASK_WAKE = "task.wake"              # I/O done, runnable again
TASK_FINISH = "task.finish"          # process exited
TASK_POLICY = "task.policy"          # sched_setscheduler took effect
TASK_MIGRATE = "task.migrate"        # resumed on a different core

#: why a task left the CPU (``task.deschedule`` payload)
DESCHED_BURST_END = "burst_end"      # CPU burst completed (finish or block next)
DESCHED_SLICE = "slice"              # CFS slice expired
DESCHED_QUANTUM = "quantum"          # SCHED_RR quantum expired
DESCHED_PREEMPT = "preempt"          # preempted by a higher-priority task
DESCHED_RECLASS = "reclass"          # sched_setscheduler moved it off
DESCHED_THROTTLE = "throttle"        # RT group bandwidth exhausted
DESCHED_KILL = "killed"              # SIGKILL (fault injection)

# --- fault injection and failure handling (repro.faults) ---------------
FAULT_CRASH = "fault.crash"          # sandbox crashed mid-execution
FAULT_COLDSTART = "fault.coldstart"  # container provisioning failed
FAULT_TIMEOUT = "fault.timeout"      # request deadline expired
FAULT_HOST_DOWN = "fault.host_down"  # host failed (core = host index)
FAULT_HOST_UP = "fault.host_up"      # host recovered (core = host index)
RETRY_BACKOFF = "retry.backoff"      # attempt failed; retry scheduled
RETRY_EXHAUSTED = "retry.exhausted"  # attempts capped out; abandoned
RETRY_THROTTLED = "retry.throttled"  # retry denied by the global budget
SHED_REQUEST = "shed.request"        # admission control rejected it

# --- cluster resilience (repro.faas.resilience) -------------------------
HEALTH_DOWN = "health.down"          # dispatcher marked host unhealthy
HEALTH_UP = "health.up"              # dispatcher marked host healthy
FAILOVER_REDISPATCH = "failover.redispatch"  # stranded attempt re-placed
HEDGE_LAUNCH = "hedge.launch"        # backup attempt dispatched
HEDGE_WIN = "hedge.win"              # hedge race decided
HEDGE_CANCEL = "hedge.cancel"        # losing attempt killed (tid = loser)

# --- SFS decisions (repro.core) ---------------------------------------
SFS_SUBMIT = "sfs.submit"            # fresh request entered the global queue
SFS_RESUBMIT = "sfs.resubmit"        # post-I/O wake re-enqueued
SFS_PROMOTE = "sfs.promote"          # FILTER-scheduled (core = worker index)
SFS_FILTER_FINISH = "sfs.filter_finish"  # finished inside its slice (4.1)
SFS_DEMOTE_SLICE = "sfs.demote_slice"    # slice expired -> CFS (4.2)
SFS_DEMOTE_IO = "sfs.demote_io"          # block detected -> CFS (4.3)
SFS_OVERLOAD = "sfs.overload"        # overload bypass: stayed in CFS (4.4)
SFS_SKIP_FINISHED = "sfs.skip_finished"  # finished in CFS before a worker got it
SFS_WATCH_AT_POP = "sfs.watch_at_pop"    # found blocked at dequeue
SFS_WATCH = "sfs.watch"              # added to the blocked watch list
SFS_WATCH_FINISH = "sfs.watch_finish"    # finished in CFS while watched
SFS_SLICE = "sfs.slice"              # SliceMonitor recomputed S

# --- periodic gauges ---------------------------------------------------
GAUGE_RUNNABLE = "gauge.runnable"        # ready-but-not-running, machine-wide
GAUGE_IDLE_CORES = "gauge.idle_cores"
GAUGE_RUNQUEUE = "gauge.runqueue"        # per-core CFS depth (core = index)
GAUGE_RT_QUEUE = "gauge.rt_queue"        # global RT runqueue length
GAUGE_POOL = "gauge.pool"                # fluid CFS pool occupancy
GAUGE_RT_RUNNING = "gauge.rt_running"    # fluid dedicated-core count
GAUGE_GLOBAL_QUEUE = "gauge.global_queue"  # SFS global queue length
GAUGE_WATCH_LIST = "gauge.watch_list"      # SFS watch-list size
GAUGE_BUSY_WORKERS = "gauge.busy_workers"  # occupied FILTER workers
GAUGE_KEEPALIVE = "gauge.keepalive"        # warm containers cached
GAUGE_OUTSTANDING = "gauge.outstanding"    # invocations in flight
GAUGE_UNHEALTHY = "gauge.unhealthy_hosts"  # hosts the dispatcher avoids
GAUGE_RETRY_TOKENS = "gauge.retry_tokens"  # retry-budget bucket level

#: payload slot names per kind (tuples zip positionally with ``args``).
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    TASK_SPAWN: ("name", "req_id"),
    TASK_RUN: (),
    TASK_DESCHEDULE: ("reason",),
    TASK_BLOCK: (),
    TASK_WAKE: (),
    TASK_FINISH: (),
    TASK_POLICY: ("policy", "rt_priority"),
    TASK_MIGRATE: ("from_core",),
    SFS_SUBMIT: (),
    SFS_RESUBMIT: (),
    SFS_PROMOTE: ("slice", "delay"),
    SFS_FILTER_FINISH: (),
    SFS_DEMOTE_SLICE: (),
    SFS_DEMOTE_IO: ("slice_left",),
    SFS_OVERLOAD: ("delay", "slice"),
    SFS_SKIP_FINISHED: ("delay",),
    SFS_WATCH_AT_POP: ("delay",),
    SFS_WATCH: (),
    SFS_WATCH_FINISH: (),
    SFS_SLICE: ("slice",),
    FAULT_CRASH: ("attempt",),
    FAULT_COLDSTART: ("req_id", "attempt"),
    FAULT_TIMEOUT: ("deadline",),
    FAULT_HOST_DOWN: (),
    FAULT_HOST_UP: (),
    RETRY_BACKOFF: ("req_id", "attempt", "delay"),
    RETRY_EXHAUSTED: ("req_id", "attempts"),
    RETRY_THROTTLED: ("req_id", "attempt"),
    SHED_REQUEST: ("req_id", "depth"),
    HEALTH_DOWN: (),
    HEALTH_UP: (),
    FAILOVER_REDISPATCH: ("req_id", "from_host", "to_host"),
    HEDGE_LAUNCH: ("req_id", "primary_host", "backup_host"),
    HEDGE_WIN: ("req_id", "winner"),
    HEDGE_CANCEL: ("req_id",),
    GAUGE_RUNNABLE: ("value",),
    GAUGE_IDLE_CORES: ("value",),
    GAUGE_RUNQUEUE: ("value",),
    GAUGE_RT_QUEUE: ("value",),
    GAUGE_POOL: ("value",),
    GAUGE_RT_RUNNING: ("value",),
    GAUGE_GLOBAL_QUEUE: ("value",),
    GAUGE_WATCH_LIST: ("value",),
    GAUGE_BUSY_WORKERS: ("value",),
    GAUGE_KEEPALIVE: ("value",),
    GAUGE_OUTSTANDING: ("value",),
    GAUGE_UNHEALTHY: ("value",),
    GAUGE_RETRY_TOKENS: ("value",),
}

#: kinds that open / close the per-core on-CPU span pairing.
CORE_SPAN_OPEN = TASK_RUN
CORE_SPAN_CLOSE = TASK_DESCHEDULE

#: kinds that close an open FILTER-worker span (core = worker index).
WORKER_SPAN_CLOSERS = (SFS_FILTER_FINISH, SFS_DEMOTE_SLICE, SFS_DEMOTE_IO)
