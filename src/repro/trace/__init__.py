"""Structured event tracing and run provenance (``repro.trace``).

Record what the simulator, the machine engines and the SFS layer *did*
— typed, timestamped, replayable — and render it for humans (Perfetto /
``chrome://tracing``) or tools (JSONL)::

    from repro import RunConfig, TraceRecorder, run_workload
    from repro.trace import write_trace

    rec = TraceRecorder()
    res = run_workload(workload, RunConfig(scheduler="sfs"), trace=rec)
    write_trace("out.json", rec, res.manifest)   # open in ui.perfetto.dev

Tracing is off by default and free when off: every instrumented call
site guards on ``recorder.enabled`` (a class attribute of the shared
:data:`~repro.trace.recorder.NULL_RECORDER`), so no event objects are
built.  See ``docs/observability.md`` for the event taxonomy.
"""

from repro.trace.events import EVENT_FIELDS, TraceEvent
from repro.trace.export import to_chrome, to_jsonl_lines, write_trace
from repro.trace.gauges import attach_gauge_sampler
from repro.trace.manifest import RunManifest
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "TraceEvent",
    "EVENT_FIELDS",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "RunManifest",
    "attach_gauge_sampler",
    "to_chrome",
    "to_jsonl_lines",
    "write_trace",
]
