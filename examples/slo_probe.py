#!/usr/bin/env python3
"""SLO probe: the paper's proposed FaaS SLO, evaluated live.

§I of the paper proposes: "X% of function invocations must be finished
within a soft/hard-bounded ratio with respect to the duration that this
function would observe if running in an ideally isolated environment."

This example measures that SLO for CFS, SFS and the SRTF oracle on the
same workload and draws the stretch distributions as text CDFs.

Run:  python examples/slo_probe.py
"""

from repro import FaaSBench, FaaSBenchConfig, MachineParams, RunConfig, run_workload
from repro.analysis.ascii import cdf_plot
from repro.analysis.report import format_table
from repro.metrics.slo import DEFAULT_SLOS, max_stretch_bound, stretch

N_CORES = 12


def main() -> None:
    workload = FaaSBench(
        FaaSBenchConfig(n_requests=4_000, n_cores=N_CORES, target_load=1.0),
        seed=21,
    ).generate()
    machine = MachineParams(n_cores=N_CORES, ctx_switch_cost=500)
    runs = {
        s: run_workload(workload, RunConfig(scheduler=s, machine=machine))
        for s in ("cfs", "sfs", "srtf")
    }

    rows = []
    for slo in DEFAULT_SLOS:
        for name, r in runs.items():
            att = slo.attainment(r.records)
            rows.append((slo.name, name, f"{att:.3f}",
                         "yes" if att >= slo.quantile else "NO"))
    print(format_table(["SLO", "sched", "attainment", "met"], rows,
                       title="SLO attainment at 100% load"))

    rows2 = [
        (name, f"{max_stretch_bound(r.records, 0.95):.1f}x",
         f"{max_stretch_bound(r.records, 0.99):.1f}x")
        for name, r in runs.items()
    ]
    print()
    print(format_table(["sched", "p95 stretch", "p99 stretch"], rows2,
                       title="tightest promisable bound"))

    print("\nstretch CDF (x: turnaround / isolated duration, log scale)")
    print(cdf_plot({name: stretch(r.records) for name, r in runs.items()}))


if __name__ == "__main__":
    main()
