#!/usr/bin/env python3
"""Quickstart: SFS vs CFS on an Azure-like serverless workload.

Generates a FaaSBench workload (Table I durations, Poisson arrivals at
100 % offered load on 12 cores), replays it under plain Linux CFS and
under SFS, and prints the paper's headline comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FaaSBench, FaaSBenchConfig, MachineParams, RunConfig, run_workload
from repro.analysis.report import format_cdf_probes
from repro.metrics.stats import improvement_summary

N_CORES = 12


def main() -> None:
    # 1. generate a workload: 5000 invocations, Table I duration mix,
    #    Poisson IATs scaled so the machine sees 100 % offered CPU load
    workload = FaaSBench(
        FaaSBenchConfig(n_requests=5_000, n_cores=N_CORES, target_load=1.0),
        seed=42,
    ).generate()
    print(
        f"workload: {len(workload)} requests, "
        f"offered load {workload.offered_load(N_CORES):.2f} on {N_CORES} cores"
    )

    # 2. replay the *same* workload under both schedulers
    machine = MachineParams(n_cores=N_CORES, ctx_switch_cost=500)
    cfs = run_workload(workload, RunConfig(scheduler="cfs", machine=machine))
    sfs = run_workload(workload, RunConfig(scheduler="sfs", machine=machine))

    # 3. compare
    print()
    print(
        format_cdf_probes(
            {"cfs": cfs.turnarounds, "sfs": sfs.turnarounds},
            title="execution duration (ms) at CDF probe points",
        )
    )

    s = improvement_summary(cfs.turnarounds, sfs.turnarounds)
    print()
    print(f"functions improved by SFS : {s['fraction_improved']:.1%}  (paper: 83%)")
    print(f"mean speedup among them   : {s['mean_speedup_improved']:.1f}x")
    print(f"mean slowdown of the rest : {s['mean_slowdown_rest']:.2f}x  (paper: 1.29x)")
    print()
    print(
        f"median RTE:  cfs {np.median(cfs.rtes):.3f}   sfs {np.median(sfs.rtes):.3f}"
        "   (1.0 = ran with zero interference)"
    )
    print(
        f"SFS stats: {sfs.sfs_stats.promoted} promoted, "
        f"{sfs.sfs_stats.completed_in_filter} finished inside their slice, "
        f"{sfs.sfs_stats.demoted_slice} demoted to CFS"
    )


if __name__ == "__main__":
    main()
