#!/usr/bin/env python3
"""Billing audit: what scheduling costs FaaS users in dollars.

The paper's economic argument (§I, §III): duration-based billing turns
runqueue waiting into money — "this covertly leads to overcharges to
the users".  This example bills a simulated day of traffic at the
paper's quoted AWS Lambda rates under CFS, SFS and the SRTF oracle, and
shows where the overcharge concentrates.

Run:  python examples/billing_audit.py
"""

import numpy as np

from repro import FaaSBench, FaaSBenchConfig, MachineParams, RunConfig, run_workload
from repro.analysis.ascii import histogram
from repro.analysis.report import format_table
from repro.metrics.billing import BillingModel, overcharge_report

N_CORES = 12


def main() -> None:
    workload = FaaSBench(
        FaaSBenchConfig(n_requests=5_000, n_cores=N_CORES, target_load=1.0),
        seed=33,
    ).generate()
    machine = MachineParams(n_cores=N_CORES, ctx_switch_cost=500)
    runs = {
        s: run_workload(workload, RunConfig(scheduler=s, machine=machine))
        for s in ("cfs", "sfs", "srtf")
    }

    model = BillingModel(memory_gb=0.5)  # 512 MB functions
    report = overcharge_report(runs, model)
    rows = [
        (
            name,
            f"${stats['ideal']:.4f}",
            f"${stats['invoice']:.4f}",
            f"${stats['overcharge']:.4f}",
            f"{stats['overcharge_ratio']:.1%}",
        )
        for name, stats in report.items()
    ]
    print(
        format_table(
            ["sched", "fair bill", "actual bill", "overcharge", "ratio"],
            rows,
            title=(
                f"billing {len(workload)} invocations of 512 MB functions "
                "at the paper's AWS rates (100% load)"
            ),
        )
    )

    # where does the CFS overcharge come from?  mostly short functions
    # paying for waiting time
    per_req = model.per_request_overcharge(runs["cfs"].records)
    print()
    print(histogram(per_req * 1e6, bins=10, label="CFS overcharge (micro-$)",
                    log=False))

    scale = 1_000_000 / len(workload)
    saved = (report["cfs"]["overcharge"] - report["sfs"]["overcharge"]) * scale
    print(
        f"\nextrapolated to a million invocations, SFS returns "
        f"~${saved:.2f} of overcharges versus CFS on this workload"
    )


if __name__ == "__main__":
    main()
