#!/usr/bin/env python3
"""End-to-end OpenLambda deployment with and without the SFS port.

Builds the §IX workload (fib = CPU-heavy, md = I/O-heavy, sa = mixed),
pushes it through the full platform pipeline — HTTP gateway →
OpenLambda worker → sandbox server → warm Docker container → OS — and
compares OpenLambda+CFS against OpenLambda+SFS at three load levels.

Run:  python examples/openlambda_e2e.py
"""

import numpy as np

from repro import MachineParams, OpenLambdaConfig, run_openlambda
from repro.analysis.report import format_table
from repro.workload.faasbench import OPENLAMBDA_MIX, FaaSBench, FaaSBenchConfig

N_CORES = 24  # the paper uses 72 of an m5.metal's 96 vCPUs


def make_workload(load: float, n: int = 6_000):
    return FaaSBench(
        FaaSBenchConfig(
            n_requests=n,
            n_cores=N_CORES,
            target_load=load,
            app_mix=OPENLAMBDA_MIX,
            iat_kind="bursty",  # SIX replays the bursty Azure IATs
        ),
        seed=11,
    ).generate()


def main() -> None:
    base = OpenLambdaConfig(
        machine=MachineParams(n_cores=N_CORES, ctx_switch_cost=500),
        seed=3,
    )
    rows = []
    for load in (0.8, 0.9, 1.0):
        wl = make_workload(load)
        cfs = run_openlambda(wl, base.with_scheduler("cfs"))
        sfs = run_openlambda(wl, base.with_scheduler("sfs"))
        tc, ts = cfs.turnarounds, sfs.turnarounds
        rows.append(
            (
                f"{load:.0%}",
                f"{np.median(tc)/1e3:.0f} / {np.median(ts)/1e3:.0f}",
                f"{np.percentile(tc, 99)/1e6:.2f} / {np.percentile(ts, 99)/1e6:.2f}",
                f"{(tc / np.maximum(ts, 1)).mean():.2f}x",
                f"{np.percentile(tc, 99)/np.percentile(ts, 99):.2f}x",
            )
        )
        print(
            f"load {load:.0%}: OL+SFS promoted {sfs.sfs_stats.promoted}, "
            f"bypassed {sfs.sfs_stats.bypassed_overload} under transient overload, "
            f"resubmitted {sfs.sfs_stats.resubmitted} after I/O"
        )

    print()
    print(
        format_table(
            [
                "load",
                "p50 ms (CFS/SFS)",
                "p99 s (CFS/SFS)",
                "mean CFS/SFS",
                "p99 speedup",
            ],
            rows,
            title="OpenLambda end to end (paper Fig 13/15: CFS degrades with "
            "load, SFS holds; p99 speedups 1.65x/4.04x/7.93x)",
        )
    )


if __name__ == "__main__":
    main()
