#!/usr/bin/env python3
"""Azure-trace replay: the paper's motivation study in miniature.

Synthesises an Azure-Functions-like trace (calibrated to the dataset
statistics the paper quotes), extracts Day-1-style IATs from the 100
busiest applications, and replays the resulting workload under all
five §IV schedulers — FIFO, RR, CFS, the SRTF oracle and the IDEAL
infinite-resource baseline — reproducing Fig 2's ordering.

Run:  python examples/azure_replay.py
"""

import numpy as np

from repro import FaaSBench, FaaSBenchConfig, MachineParams, RunConfig, run_workload
from repro.analysis.report import format_cdf_probes, format_table
from repro.metrics.stats import fraction_below, slowdown_percentiles
from repro.workload.azure import FIG1_ANCHORS, AzureTraceSynthesizer

N_CORES = 12


def main() -> None:
    # --- Fig 1: the trace itself ---------------------------------------
    synth = AzureTraceSynthesizer(n_apps=20_000, seed=7)
    durations = synth.sample_avg_durations(20_000)
    print("synthetic Azure trace vs the paper's anchors:")
    for bound, target in FIG1_ANCHORS:
        measured = float((durations < bound).mean())
        print(f"  P(avg duration < {bound/1e6:g}s) = {measured:.3f}  (paper {target})")

    # --- extract IATs the way SVII does and build the workload ----------
    iats = AzureTraceSynthesizer(n_apps=2_000, seed=8).day1_iats(4_000)
    # rescale the replayed IATs to offer ~100 % load on our machine
    workload = FaaSBench(
        FaaSBenchConfig(
            n_requests=3_000,
            n_cores=N_CORES,
            target_load=1.0,
            iat_kind="replay",
            replay_iats=tuple(int(x) for x in iats[:1000]),
        ),
        seed=9,
    ).generate()
    # replay mode keeps the trace's IAT *pattern* but rescales it to
    # the target load, exactly as SVIII-A describes
    print(f"\nreplayed workload offered load: {workload.offered_load(N_CORES):.2f}")

    # --- Fig 2: all five schedulers -------------------------------------
    machine = MachineParams(n_cores=N_CORES, ctx_switch_cost=500)
    runs = {}
    for sched in ("fifo", "rr", "cfs", "srtf", "ideal"):
        runs[sched] = run_workload(
            workload, RunConfig(scheduler=sched, engine="discrete", machine=machine)
        )

    print()
    print(
        format_cdf_probes(
            {name: r.turnarounds for name, r in runs.items()},
            title="execution duration (ms): Fig 2a ordering",
        )
    )

    rows = [
        (name, f"{fraction_below(r.rtes, 0.2):.3f}", f"{np.median(r.rtes):.3f}")
        for name, r in runs.items()
    ]
    print()
    print(format_table(["sched", "P(RTE<0.2)", "median RTE"], rows,
                       title="run-time effectiveness: Fig 2b"))

    sd = slowdown_percentiles(runs["cfs"].turnarounds, runs["srtf"].turnarounds)
    print(
        f"\nCFS slowdown vs the SRTF oracle: p40 {sd[40]:.1f}x, p70 {sd[70]:.1f}x"
        "  (paper at 100% load: 16x / 24x)"
    )


if __name__ == "__main__":
    main()
