#!/usr/bin/env python3
"""Scheduler lab: poke at the simulation substrate directly.

Shows the lower-level API a downstream user gets beneath the experiment
harness: build a machine, spawn hand-crafted tasks, drive scheduling
policy changes from "user space" (exactly the calls SFS itself makes),
and watch kernel-visible state evolve — including a minimal re-creation
of the FILTER idea in ~20 lines.

Run:  python examples/custom_scheduler_lab.py
"""

from repro import DiscreteMachine, MachineParams, Simulator
from repro.sim.task import Burst, BurstKind, SchedPolicy, Task
from repro.sim.units import MS, to_ms


def report(label, tasks):
    print(f"\n{label}")
    for t in tasks:
        print(
            f"  {t.name:10s} turnaround {to_ms(t.turnaround):8.1f} ms "
            f"(demand {to_ms(t.cpu_demand):6.1f} ms, "
            f"{t.ctx_involuntary} preemptions, final class {t.policy.name})"
        )


def make_tasks():
    longs = [
        Task(bursts=[Burst(BurstKind.CPU, 800 * MS)], name=f"long-{i}")
        for i in range(2)
    ]
    shorts = [
        Task(bursts=[Burst(BurstKind.CPU, 20 * MS)], name=f"short-{i}")
        for i in range(4)
    ]
    return longs, shorts


def run_plain_cfs():
    sim = Simulator()
    machine = DiscreteMachine(sim, MachineParams(n_cores=1))
    longs, shorts = make_tasks()
    for t in longs:
        machine.spawn(t)
    for i, t in enumerate(shorts):
        sim.schedule_at((50 + 10 * i) * MS, machine.spawn, t)
    sim.run()
    report("plain CFS (1 core): shorts wait out whole scheduling cycles",
           longs + shorts)


def run_mini_filter():
    """A 20-line FILTER: promote each arrival to SCHED_FIFO for one
    100 ms slice, then demote — the heart of SFS, hand-rolled against
    the raw machine API."""
    sim = Simulator()
    machine = DiscreteMachine(sim, MachineParams(n_cores=1))
    SLICE = 100 * MS

    def admit(task):
        machine.spawn(task)
        machine.set_policy(task, SchedPolicy.FIFO)  # schedtool -f

        def expire():
            if not task.finished:
                machine.set_policy(task, SchedPolicy.CFS)  # demote

        sim.schedule(SLICE, expire)

    longs, shorts = make_tasks()
    for t in longs:
        admit(t)
    for i, t in enumerate(shorts):
        sim.schedule_at((50 + 10 * i) * MS, admit, t)
    sim.run()
    report("mini-FILTER (same workload): shorts run to completion at RT "
           "priority, longs absorb the wait", longs + shorts)


def main() -> None:
    run_plain_cfs()
    run_mini_filter()
    print(
        "\nThe full SFS adds what this toy omits: a global queue with "
        "c workers, the adaptive slice S = mean(IAT) x cores, I/O "
        "detection by /proc polling, and overload bypass — see "
        "repro.core.sfs."
    )


if __name__ == "__main__":
    main()
