"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` on setuptools<70 requires wheel
for PEP-660 editable installs; this legacy path does not.
"""
from setuptools import setup

setup()
