"""Table I bench: FaaSBench duration-bin masses vs the paper."""

from conftest import run_once
from repro.experiments import table1_bins as mod


def test_table1_bins(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    for _label, paper_p, emp_p, _ns, _ms in res.rows:
        assert abs(emp_p - paper_p) < 0.02
    print()
    print(mod.render(res))
