"""Sensitivity bench: window N and overload factor O sweeps."""

from conftest import run_once
from repro.experiments import sensitivity as mod


def test_sensitivity(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    print()
    print(mod.render(res))
