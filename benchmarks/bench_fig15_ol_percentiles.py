"""Fig 15 bench: OpenLambda p99 speedups."""

from conftest import run_once
from repro.experiments import fig15_ol_percentiles as mod


def test_fig15_ol_percentiles(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    s = {load: round(mod.p99_speedup(res, load), 2) for load in res.runs}
    benchmark.extra_info["p99_speedup"] = s
    print()
    print(mod.render(res))
