"""Fig 14 bench: OpenLambda RTE CDFs."""

from conftest import run_once
from repro.experiments import fig14_ol_rte as mod


def test_fig14_ol_rte(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    print()
    print(mod.render(res))
