"""Fig 2 bench: FIFO/RR/CFS vs SRTF/IDEAL on the discrete engine."""

from conftest import run_once
from repro.experiments import fig02_motivation as mod
from repro.metrics.stats import slowdown_percentiles


def test_fig02_motivation(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    by = res.runs[1.0]
    means = {name: float(r.turnarounds.mean()) for name, r in by.items()}
    assert means["srtf"] < means["cfs"] < means["fifo"]
    sd = slowdown_percentiles(by["cfs"].turnarounds, by["srtf"].turnarounds)
    benchmark.extra_info["cfs_vs_srtf_p40_p70"] = {k: round(v, 1) for k, v in sd.items()}
    print()
    print(mod.render(res))
