"""Fig 11 bench: I/O handling and polling-interval sensitivity."""

from conftest import run_once
from repro.experiments import fig11_io as mod


def test_fig11_io(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    sens = mod.polling_sensitivity(res)
    assert sens < 1.05
    benchmark.extra_info["polling_sensitivity"] = round(sens, 4)
    print()
    print(mod.render(res))
