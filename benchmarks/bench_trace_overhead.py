"""Tracing overhead guard.

The design promise of ``repro.trace`` is *zero overhead when disabled*:
every instrumented call site is one attribute load plus one predictable
branch on ``NullRecorder.enabled``.  These benchmarks pin that promise
down with the same 400-task/4-core workload ``bench_micro_engines``
uses, three ways per engine:

* ``default``  — no recorder passed (the shared ``NULL_RECORDER``);
* ``enabled``  — a live :class:`repro.trace.TraceRecorder`, to show
  what recording actually costs when you opt in.

The null-vs-enabled ratio is recorded in ``benchmark.extra_info`` so
the JSON artifact documents the cost of opting in, and the disabled
path asserts the stream stayed empty (nothing recorded by accident).
"""

import time

import numpy as np

from repro.machine.base import MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine
from repro.sim.engine import Simulator
from repro.sim.task import Burst, BurstKind, Task
from repro.sim.units import MS
from repro.trace import NULL_RECORDER, TraceRecorder


def _workload_tasks(n=400, seed=1):
    rng = np.random.default_rng(seed)
    out = []
    at = 0
    for _ in range(n):
        at += int(rng.exponential(8 * MS))
        dur = int(rng.uniform(5 * MS, 60 * MS))
        out.append((at, dur))
    return out


def _drive(machine_cls, recorder=None):
    specs = _workload_tasks()

    def run():
        sim = Simulator(trace=recorder)
        m = machine_cls(sim, MachineParams(n_cores=4))
        tasks = []
        for at, dur in specs:
            task = Task(bursts=[Burst(BurstKind.CPU, dur)])
            tasks.append(task)
            sim.schedule_at(at, m.spawn, task)
        sim.run()
        assert all(t.finished for t in tasks)
        return sim.events_executed

    return run


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_engine(benchmark, machine_cls):
    null_run = _drive(machine_cls)  # default: shared NULL_RECORDER

    enabled = TraceRecorder()
    enabled_run = _drive(machine_cls, recorder=enabled)

    null_s = _best_of(null_run)
    enabled_s = _best_of(enabled_run)
    assert len(enabled) > 0  # the live recorder actually recorded
    assert len(NULL_RECORDER) == 0  # and the null one never does

    benchmark.extra_info["null_best_s"] = round(null_s, 6)
    benchmark.extra_info["enabled_best_s"] = round(enabled_s, 6)
    benchmark.extra_info["enabled_over_null_ratio"] = round(
        enabled_s / null_s, 3
    )
    benchmark(null_run)


def test_trace_overhead_discrete(benchmark):
    _bench_engine(benchmark, DiscreteMachine)


def test_trace_overhead_fluid(benchmark):
    _bench_engine(benchmark, FluidMachine)
