"""Ablation bench: queue design, engine agreement, switch-cost sweep."""

from conftest import run_once
from repro.experiments import ablations as mod


def test_ablations(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    penalties = mod.cfs_penalty_by_cost(res)
    benchmark.extra_info["cfs_penalty_by_ctx_cost"] = {
        str(k): round(v, 2) for k, v in penalties.items()
    }
    print()
    print(mod.render(res))
