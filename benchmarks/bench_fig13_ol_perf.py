"""Fig 13 bench: OpenLambda end-to-end duration CDFs."""

from conftest import run_once
from repro.experiments import fig13_ol_perf as mod


def test_fig13_ol_perf(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    r = {load: round(mod.mean_slowdown_cfs(res, load), 2) for load in res.runs}
    assert all(v > 1.0 for v in r.values())
    benchmark.extra_info["mean_cfs_over_sfs"] = r
    print()
    print(mod.render(res))
