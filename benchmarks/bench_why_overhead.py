"""Scheduler-decision audit overhead guard (repro.why).

The audit stream makes the same promise tracing and metrics make: *zero
overhead when disabled*.  Every emission site is guarded by a cached
``self._audit_on`` boolean (or a ``self.audit is not None`` check on the
runqueues), so a run with the shared ``NULL_AUDIT`` pays one attribute
load and one predictable branch per decision point — nothing else.

Same 400-task/4-core workload as ``bench_trace_overhead``, two ways per
engine:

* ``default`` — no audit log passed (the shared ``NULL_AUDIT``);
* ``enabled`` — a live :class:`repro.why.AuditLog`, showing what
  recording every pick/preempt/slice/throttle decision actually costs.

The null-vs-enabled ratio lands in ``benchmark.extra_info`` and the
disabled path asserts the null log stayed empty.
"""

import time

import numpy as np

from repro.machine.base import MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine
from repro.sim.engine import Simulator
from repro.sim.task import Burst, BurstKind, Task
from repro.sim.units import MS
from repro.why import NULL_AUDIT, AuditLog


def _workload_tasks(n=400, seed=1):
    rng = np.random.default_rng(seed)
    out = []
    at = 0
    for _ in range(n):
        at += int(rng.exponential(8 * MS))
        dur = int(rng.uniform(5 * MS, 60 * MS))
        out.append((at, dur))
    return out


def _drive(machine_cls, audit=None):
    specs = _workload_tasks()

    def run():
        sim = Simulator(audit=audit)
        m = machine_cls(sim, MachineParams(n_cores=4))
        tasks = []
        for at, dur in specs:
            task = Task(bursts=[Burst(BurstKind.CPU, dur)])
            tasks.append(task)
            sim.schedule_at(at, m.spawn, task)
        sim.run()
        assert all(t.finished for t in tasks)
        return sim.events_executed

    return run


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_engine(benchmark, machine_cls):
    null_run = _drive(machine_cls)  # default: shared NULL_AUDIT

    enabled = AuditLog()
    enabled_run = _drive(machine_cls, audit=enabled)

    null_s = _best_of(null_run)
    enabled_s = _best_of(enabled_run)
    assert len(enabled) > 0  # the live log actually recorded decisions
    assert len(NULL_AUDIT) == 0  # and the null one never does

    benchmark.extra_info["null_best_s"] = round(null_s, 6)
    benchmark.extra_info["enabled_best_s"] = round(enabled_s, 6)
    benchmark.extra_info["enabled_over_null_ratio"] = round(
        enabled_s / null_s, 3
    )
    benchmark(null_run)


def test_why_audit_overhead_discrete(benchmark):
    _bench_engine(benchmark, DiscreteMachine)


def test_why_audit_overhead_fluid(benchmark):
    _bench_engine(benchmark, FluidMachine)
