"""Fig 1 bench: regenerate the Azure duration CDF and check anchors."""

from conftest import run_once
from repro.experiments import fig01_azure_cdf as mod


def test_fig01_azure_cdf(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    for bound, measured, target in res.anchors:
        assert abs(measured - target) < 0.05
    benchmark.extra_info["anchors"] = {
        f"<{b/1e6:g}s": round(m, 4) for b, m, _t in res.anchors
    }
    print()
    print(mod.render(res))
