"""Fig 9 bench: adaptive vs static time slices."""

from conftest import run_once
from repro.experiments import fig09_timeslice as mod


def test_fig09_timeslice(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    means = mod.mean_turnaround(res)
    assert min(means, key=means.get) == "adaptive"
    benchmark.extra_info["mean_ms"] = {k: round(v / 1e3) for k, v in means.items()}
    print()
    print(mod.render(res))
