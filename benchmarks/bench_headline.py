"""Headline-claims bench: 83% improved / 1.29x penalty / 16x-24x."""

from conftest import run_once
from repro.experiments import headline as mod


def test_headline(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    imp = res.improvement
    assert 0.7 < imp["fraction_improved"] < 0.97
    benchmark.extra_info["fraction_improved"] = round(imp["fraction_improved"], 3)
    benchmark.extra_info["mean_speedup_improved"] = round(imp["mean_speedup_improved"], 1)
    benchmark.extra_info["mean_slowdown_rest"] = round(imp["mean_slowdown_rest"], 2)
    print()
    print(mod.render(res))
