"""Table II bench: SFS user-space CPU overhead."""

from conftest import run_once
from repro.experiments import table2_overhead as mod


def test_table2_overhead(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    s4 = res.summaries[4]
    benchmark.extra_info["poll_share_at_4ms"] = round(s4.poll_fraction, 3)
    benchmark.extra_info["cores_used_at_4ms"] = round(s4.average, 2)
    print()
    print(mod.render(res))
