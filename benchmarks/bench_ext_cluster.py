"""Extension bench: global placement across SFS hosts."""

from conftest import run_once
from repro.experiments import ext_cluster as mod


def test_ext_cluster(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    benchmark.extra_info["long_gain"] = {
        p: round(mod.long_tail_gain(res, p), 2)
        for p in res.runs if p != "round_robin"
    }
    print()
    print(mod.render(res))
