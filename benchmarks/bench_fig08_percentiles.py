"""Fig 8 bench: percentile breakdowns across loads."""

from conftest import run_once
from repro.experiments import fig08_percentiles as mod


def test_fig08_percentiles(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    benchmark.extra_info["p999_sfs_over_cfs_at_80pct"] = round(mod.tail_ratio(res, 0.8), 2)
    print()
    print(mod.render(res))
