"""Extension bench: dollar overcharges per scheduler."""

from conftest import run_once
from repro.experiments import ext_billing as mod


def test_ext_billing(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    hi = max(res.config.loads)
    benchmark.extra_info["overcharge_ratio"] = {
        s: round(mod.overcharge_ratio(res, hi, s), 3) for s in ("cfs", "sfs", "srtf")
    }
    print()
    print(mod.render(res))
