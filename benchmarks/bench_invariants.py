"""Invariant-checker overhead guard.

``repro.invariants`` promises *zero overhead when off*: an unchecked
run carries only a cached ``self._inv_on`` boolean at each hook site,
and the NullChecker singleton is never called.  These benchmarks pin
that promise with the same workload three ways:

* ``nominal``  — no invariants argument at all (env off: the default
  path every figure runs on);
* ``off``      — invariants explicitly disabled, to show the request
  plumbing itself is free;
* ``checked``  — the full checker active, to document what opting in
  costs (sampled deep audits keep this a small constant factor).

All three must produce bit-identical records — the checker is
read-only by construction, and this benchmark is where that contract
is re-verified on every run.  The ratios land in
``benchmark.extra_info`` so the JSON artifact tracks drift.
"""

import time

from repro.experiments.runner import RunConfig, run_workload
from repro.machine.base import MachineParams
from repro.workload.faasbench import FaaSBench, FaaSBenchConfig


def _workload(n=800, seed=1):
    cfg = FaaSBenchConfig(n_requests=n, n_cores=8, target_load=0.8)
    return FaaSBench(cfg, seed=seed).generate()


def _drive(wl, **kw):
    cfg = RunConfig(scheduler="cfs", engine="fluid",
                    machine=MachineParams(n_cores=8), **kw)

    def run():
        res = run_workload(wl, cfg)
        assert len(res.records) == len(wl)
        return res

    return run


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_invariant_check_overhead(benchmark, monkeypatch):
    monkeypatch.delenv("REPRO_INVARIANTS", raising=False)
    wl = _workload()
    nominal_run = _drive(wl)
    off_run = _drive(wl, invariants=False)
    checked_run = _drive(wl, invariants=True)

    # the checker is read-only: all three paths must agree bit for bit
    nominal_res = nominal_run()
    assert off_run().records == nominal_res.records
    checked_res = checked_run()
    assert checked_res.records == nominal_res.records
    assert sum(checked_res.meta["invariant_checks"].values()) > 0

    nominal_s = _best_of(nominal_run)
    off_s = _best_of(off_run)
    checked_s = _best_of(checked_run)

    benchmark.extra_info["nominal_best_s"] = round(nominal_s, 6)
    benchmark.extra_info["off_best_s"] = round(off_s, 6)
    benchmark.extra_info["checked_best_s"] = round(checked_s, 6)
    benchmark.extra_info["off_over_nominal_ratio"] = round(
        off_s / nominal_s, 3
    )
    benchmark.extra_info["checked_over_nominal_ratio"] = round(
        checked_s / nominal_s, 3
    )

    # explicit-off must be indistinguishable from nominal (noise margin)
    assert off_s / nominal_s < 1.10, (
        f"disabled invariants cost {off_s / nominal_s:.2f}x"
    )

    benchmark(nominal_run)
