"""Extension bench: size-based PredictiveSFS vs SFS vs the oracle."""

from conftest import run_once
from repro.experiments import ext_predictive as mod


def test_ext_predictive(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    benchmark.extra_info["gap_closed"] = round(mod.gap_closed(res), 3)
    print()
    print(mod.render(res))
