"""Metrics overhead guard.

Same promise, same methodology as ``bench_trace_overhead``: the default
:data:`repro.obs.NULL_REGISTRY` must cost nothing but one cached
attribute load and a predictable branch per instrumented site, and the
null registry must never accumulate an instrument by accident.  The
400-task/4-core workload from ``bench_micro_engines`` is driven three
ways per engine:

* ``default``  — no registry passed (the shared ``NULL_REGISTRY``);
* ``enabled``  — a live :class:`repro.obs.MetricsRegistry`;
* ``profiled`` — metrics plus the wall-clock self-profiler, the most
  expensive opt-in.

Best-of-5 wall times and the enabled/null and profiled/null ratios land
in ``benchmark.extra_info``, so the benchmark JSON artifact documents
what opting in costs on this host — and the perf snapshot from ``repro
bench`` (BENCH_*.json) tracks the null path itself across PRs, which is
where a creeping always-on overhead would show up as an events/sec
regression.
"""

import time

import numpy as np

from repro.machine.base import MachineParams
from repro.machine.discrete import DiscreteMachine
from repro.machine.fluid import FluidMachine
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.task import Burst, BurstKind, Task
from repro.sim.units import MS


def _workload_tasks(n=400, seed=1):
    rng = np.random.default_rng(seed)
    out = []
    at = 0
    for _ in range(n):
        at += int(rng.exponential(8 * MS))
        dur = int(rng.uniform(5 * MS, 60 * MS))
        out.append((at, dur))
    return out


def _drive(machine_cls, registry_factory=None):
    specs = _workload_tasks()

    def run():
        registry = registry_factory() if registry_factory else None
        sim = Simulator(metrics=registry)
        m = machine_cls(sim, MachineParams(n_cores=4))
        tasks = []
        for at, dur in specs:
            task = Task(bursts=[Burst(BurstKind.CPU, dur)])
            tasks.append(task)
            sim.schedule_at(at, m.spawn, task)
        sim.run()
        assert all(t.finished for t in tasks)
        return sim.events_executed

    return run


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_engine(benchmark, machine_cls):
    null_run = _drive(machine_cls)  # default: shared NULL_REGISTRY
    enabled_run = _drive(machine_cls, registry_factory=MetricsRegistry)
    profiled_run = _drive(
        machine_cls, registry_factory=lambda: MetricsRegistry(profile=True)
    )

    null_s = _best_of(null_run)
    enabled_s = _best_of(enabled_run)
    profiled_s = _best_of(profiled_run)
    assert len(NULL_REGISTRY) == 0  # nothing registered by accident

    benchmark.extra_info["null_best_s"] = round(null_s, 6)
    benchmark.extra_info["enabled_best_s"] = round(enabled_s, 6)
    benchmark.extra_info["profiled_best_s"] = round(profiled_s, 6)
    benchmark.extra_info["enabled_over_null_ratio"] = round(
        enabled_s / null_s, 3
    )
    benchmark.extra_info["profiled_over_null_ratio"] = round(
        profiled_s / null_s, 3
    )
    benchmark(null_run)


def test_obs_overhead_discrete(benchmark):
    _bench_engine(benchmark, DiscreteMachine)


def test_obs_overhead_fluid(benchmark):
    _bench_engine(benchmark, FluidMachine)


def test_enabled_registry_actually_measures():
    """Guard the guard: the enabled path registers instruments (so the
    ratio above measures real work, not a silently-null registry)."""
    reg = MetricsRegistry()
    sim = Simulator(metrics=reg)
    m = FluidMachine(sim, MachineParams(n_cores=4))
    task = Task(bursts=[Burst(BurstKind.CPU, 5 * MS)])
    sim.schedule_at(0, m.spawn, task)
    sim.run()
    assert task.finished
    assert reg.get("repro_tasks_spawned_total").value == 1
    assert reg.get("repro_tasks_finished_total").value == 1
