"""Fig 12 bench: transient-overload handling."""

from conftest import run_once
from repro.experiments import fig12_overload as mod


def test_fig12_overload(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    peak_h = mod.peak_queue_delay(res, "sfs")
    peak_n = mod.peak_queue_delay(res, "sfs-no-hybrid")
    assert peak_h < peak_n
    benchmark.extra_info["peak_delay_ms"] = {
        "hybrid": round(peak_h / 1e3), "no_hybrid": round(peak_n / 1e3)
    }
    print()
    print(mod.render(res))
