"""Fig 7 bench: RTE CDFs for the load sweep."""

from conftest import run_once
from repro.experiments import fig07_rte as mod


def test_fig07_rte(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    rows = {(l, n): v for l, n, v, _a, _b in mod.rte_table(res)}
    assert rows[("80%", "sfs")] > rows[("80%", "cfs")]
    benchmark.extra_info["rte_ge_095"] = {f"{k[0]}-{k[1]}": round(v, 3) for k, v in rows.items()}
    print()
    print(mod.render(res))
