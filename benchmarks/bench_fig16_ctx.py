"""Fig 16 bench: context-switch ratio CDF."""

import numpy as np

from conftest import run_once
from repro.experiments import fig16_ctx as mod


def test_fig16_ctx(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    r = mod.ctx_ratio(res, 1.0)
    assert (r > 1).mean() > 0.5
    benchmark.extra_info["frac_ratio_gt1_at_100pct"] = round(float((r > 1).mean()), 3)
    print()
    print(mod.render(res))
