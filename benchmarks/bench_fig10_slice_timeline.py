"""Fig 10 bench: the adaptive-slice timeline."""

from conftest import run_once
from repro.experiments import fig10_slice_timeline as mod


def test_fig10_slice_timeline(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    assert len(res.slice_timeline) > 5
    benchmark.extra_info["recomputations"] = len(res.slice_timeline) - 1
    print()
    print(mod.render(res))
