"""Fig 6 bench: SFS vs CFS duration CDFs across load levels."""

import numpy as np

from conftest import run_once
from repro.experiments import fig06_loads as mod


def test_fig06_loads(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    hi = res.runs[1.0]
    assert np.median(hi["sfs"].turnarounds) < np.median(hi["cfs"].turnarounds)
    benchmark.extra_info["p50_ms_at_100pct"] = {
        s: round(float(np.median(r.turnarounds)) / 1e3, 1) for s, r in hi.items()
    }
    print()
    print(mod.render(res))
