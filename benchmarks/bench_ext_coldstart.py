"""Extension bench: keep-alive TTL vs cold starts vs the SFS benefit."""

from conftest import run_once
from repro.experiments import ext_coldstart as mod


def test_ext_coldstart(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    benchmark.extra_info["cold_rates"] = {
        ("prewarmed" if t is None else f"{t/1e6:g}s"): round(mod.cold_rate(res, t), 3)
        for t in mod.Config.scaled().keep_alive_ttls
    }
    print()
    print(mod.render(res))
