"""Extension bench: the paper's proposed stretch SLO."""

from conftest import run_once
from repro.experiments import ext_slo as mod


def test_ext_slo(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    print()
    print(mod.render(res))
