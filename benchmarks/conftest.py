"""Benchmark-suite helpers.

Each paper artifact gets one benchmark that executes its experiment at
the scaled (seconds-level) configuration exactly once per run —
`rounds=1` because a whole scheduling experiment is the unit of work,
not a micro-op.  The reproduced headline numbers are attached to the
benchmark record via ``extra_info`` so `pytest benchmarks/
--benchmark-only` doubles as a reproduction report.
"""

from __future__ import annotations


def run_once(benchmark, fn, **extra):
    """Benchmark ``fn`` with a single round and attach extras."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    for key, value in extra.items():
        benchmark.extra_info[key] = value
    return result
