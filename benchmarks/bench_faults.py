"""Fault-subsystem overhead guard.

``repro.faults`` promises *zero overhead when off*: a run built without
any fault configuration never constructs a governor, and every check in
the dispatch pipeline short-circuits on a single ``is None`` attribute
load.  These benchmarks pin that promise with the same workload three
ways:

* ``nominal``  — no fault configuration at all (the pre-fault path);
* ``null``     — the governor wired in but configured to do nothing
  (NULL_PLAN + a retry policy): the hot path pays the boundary checks
  and deadline arming machinery, nothing ever fails;
* ``faulted``  — crashes + retries actually firing, to show what
  injection costs when you opt in.

The nominal-vs-null and null-vs-faulted ratios land in
``benchmark.extra_info`` so the JSON artifact documents both the
cost of *enabling* the subsystem and the cost of *using* it.
"""

import time

from repro.experiments.runner import RunConfig, run_workload
from repro.faults import NULL_PLAN, FaultPlan, RetryPolicy
from repro.machine.base import MachineParams
from repro.workload.faasbench import FaaSBench, FaaSBenchConfig


def _workload(n=800, seed=1):
    cfg = FaaSBenchConfig(n_requests=n, n_cores=8, target_load=0.8)
    return FaaSBench(cfg, seed=seed).generate()


def _drive(wl, **fault_kw):
    cfg = RunConfig(scheduler="cfs", engine="fluid",
                    machine=MachineParams(n_cores=8), **fault_kw)

    def run():
        res = run_workload(wl, cfg)
        assert len(res.records) == len(wl)
        return res

    return run


def _best_of(fn, rounds=5):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fault_check_overhead(benchmark):
    wl = _workload()
    nominal_run = _drive(wl)
    null_run = _drive(wl, faults=NULL_PLAN, retry=RetryPolicy())
    faulted_run = _drive(
        wl,
        faults=FaultPlan(seed=3, crash_prob=0.1),
        retry=RetryPolicy(max_attempts=3),
    )

    # a null-configured governor must not change the simulation at all
    assert null_run().records == nominal_run().records
    stats = faulted_run().meta["fault_stats"]
    assert stats["crashes"] > 0 and stats["retries"] > 0

    nominal_s = _best_of(nominal_run)
    null_s = _best_of(null_run)
    faulted_s = _best_of(faulted_run)

    benchmark.extra_info["nominal_best_s"] = round(nominal_s, 6)
    benchmark.extra_info["null_best_s"] = round(null_s, 6)
    benchmark.extra_info["faulted_best_s"] = round(faulted_s, 6)
    benchmark.extra_info["null_over_nominal_ratio"] = round(
        null_s / nominal_s, 3
    )
    benchmark.extra_info["faulted_over_nominal_ratio"] = round(
        faulted_s / nominal_s, 3
    )
    benchmark(nominal_run)
