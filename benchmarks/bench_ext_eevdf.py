"""Extension bench: SFS over CFS vs over EEVDF (fair-class agnostic)."""

from conftest import run_once
from repro.experiments import ext_eevdf as mod


def test_ext_eevdf(benchmark):
    res = run_once(benchmark, lambda: mod.run(mod.Config.scaled(), seed=0))
    benchmark.extra_info["sfs_speedup"] = {
        fair: round(mod.sfs_speedup(res, fair), 2) for fair in res.runs
    }
    print()
    print(mod.render(res))
